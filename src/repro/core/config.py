"""Pipeline configuration (the parameter vector x of Problem 2).

A :class:`PipelineConfig` fixes every choice the greedy optimizer makes:
feature-selection method and feature count ``k`` (Task 2), base model
family and architecture (Task 3), loss function (Task 4), hyperparameter
budget (Task 5), and fusion technique (Task 6) — plus the timeline window
width ``x``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.core.fusion import FUSION_METHODS
from repro.core.models import MODEL_FAMILIES
from repro.errors import ConfigurationError
from repro.features.selection import FEATURE_SELECTION_METHODS
from repro.ml.gbm import GbmParams
from repro.ml.losses import LOSS_NAMES

ARCHITECTURES = ("flat", "stacked")


@dataclass(frozen=True)
class PipelineConfig:
    """All tunable parameters of the DoMD modeling pipeline.

    The defaults are the paper's *pre-optimization* defaults (l2 loss,
    no fusion, flat architecture); :func:`paper_final_config` returns the
    configuration the paper ultimately selects.
    """

    selection_method: str = "pearson"
    k: int = 60
    model_family: str = "gbm"
    architecture: str = "flat"
    loss: str = "l2"
    huber_delta: float = 18.0
    n_trials: int = 0  # 0 = defaults, no AutoHPT
    fusion: str = "none"
    window_pct: float = 10.0
    gbm: GbmParams = field(default_factory=lambda: GbmParams(n_estimators=120))
    linear_alpha: float = 1.0
    linear_l1_ratio: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.selection_method not in FEATURE_SELECTION_METHODS:
            raise ConfigurationError(
                f"selection_method must be one of {FEATURE_SELECTION_METHODS}"
            )
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")
        if self.model_family not in MODEL_FAMILIES:
            raise ConfigurationError(f"model_family must be one of {MODEL_FAMILIES}")
        if self.architecture not in ARCHITECTURES:
            raise ConfigurationError(f"architecture must be one of {ARCHITECTURES}")
        if self.loss not in LOSS_NAMES:
            raise ConfigurationError(f"loss must be one of {LOSS_NAMES}")
        if self.fusion not in FUSION_METHODS:
            raise ConfigurationError(f"fusion must be one of {FUSION_METHODS}")
        if not 0 < self.window_pct <= 100:
            raise ConfigurationError(f"window_pct must be in (0, 100], got {self.window_pct}")
        if self.n_trials < 0:
            raise ConfigurationError(f"n_trials must be >= 0, got {self.n_trials}")

    def evolve(self, **overrides: Any) -> "PipelineConfig":
        """Copy with some fields replaced."""
        return replace(self, **overrides)

    def describe(self) -> dict[str, Any]:
        """Flat description (used in reports and benchmark headers)."""
        return {
            "selection_method": self.selection_method,
            "k": self.k,
            "model_family": self.model_family,
            "architecture": self.architecture,
            "loss": self.loss,
            "huber_delta": self.huber_delta,
            "n_trials": self.n_trials,
            "fusion": self.fusion,
            "window_pct": self.window_pct,
        }


def paper_final_config(**overrides: Any) -> PipelineConfig:
    """The configuration selected by the paper's greedy optimization.

    Pearson correlation with k = 60, XGBoost-style GBM, non-stacked
    architecture, pseudo-Huber loss with delta = 18, 30 AutoHPT trials,
    average fusion, 10% windows.
    """
    config = PipelineConfig(
        selection_method="pearson",
        k=60,
        model_family="gbm",
        architecture="flat",
        loss="pseudo_huber",
        huber_delta=18.0,
        n_trials=30,
        fusion="average",
        window_pct=10.0,
    )
    return config.evolve(**overrides) if overrides else config
