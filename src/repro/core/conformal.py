"""Split-conformal prediction intervals for DoMD estimates.

A point estimate ("~75 days late") is less actionable for a planner than
a calibrated range ("between 40 and 120 days with 90% coverage") — at
$250k per delay-day the difference prices real options.  This module
wraps a fitted :class:`~repro.core.estimator.DomdEstimator` with
per-window split-conformal calibration:

1. hold out a calibration population (never used for fitting),
2. per timeline window, compute the fused-estimate absolute residuals on
   the calibration avails,
3. the interval half-width at miscoverage ``alpha`` is the
   ``ceil((n+1)(1-alpha))/n`` empirical quantile of those residuals —
   the standard finite-sample-valid split-conformal quantile.

Coverage holds marginally under exchangeability; with chronological
drift it is approximate (exactly the caveat a real deployment would
document).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.estimator import DomdEstimator
from repro.errors import ConfigurationError, NotFittedError


@dataclass(frozen=True)
class DomdInterval:
    """A calibrated delay interval for one avail at one logical time."""

    avail_id: int
    t_star: float
    estimate: float
    lower: float
    upper: float
    alpha: float

    @property
    def width(self) -> float:
        return self.upper - self.lower


class ConformalDomdEstimator:
    """Conformal wrapper over a fitted DoMD estimator."""

    def __init__(self, estimator: DomdEstimator):
        if estimator._model_set is None:
            raise NotFittedError("ConformalDomdEstimator requires a fitted estimator")
        self._estimator = estimator
        self._residuals_by_window: list[np.ndarray] | None = None

    # ------------------------------------------------------------------
    def calibrate(self, calibration_ids: np.ndarray) -> "ConformalDomdEstimator":
        """Record per-window absolute residuals on held-out closed avails."""
        estimator = self._estimator
        calibration_ids = np.asarray(calibration_ids, dtype=np.int64)
        if len(calibration_ids) < 5:
            raise ConfigurationError("need at least 5 calibration avails")
        assert estimator._dataset is not None and estimator._tensor is not None
        assert estimator._X_static is not None and estimator._model_set is not None
        delay_by_id = {
            int(a): float(d)
            for a, d in zip(
                estimator._dataset.avails["avail_id"],
                estimator._dataset.avails["delay"],
            )
        }
        y = np.array([delay_by_id[int(a)] for a in calibration_ids])
        if np.any(np.isnan(y)):
            raise ConfigurationError("calibration avails must be closed")
        rows = estimator._tensor.rows_for(calibration_ids)
        fused = estimator._model_set.predict_fused(
            estimator._X_static[rows], estimator._tensor.values[rows]
        )
        self._residuals_by_window = [
            np.abs(y - fused[:, ti]) for ti in range(fused.shape[1])
        ]
        return self

    def _check_calibrated(self) -> list[np.ndarray]:
        if self._residuals_by_window is None:
            raise NotFittedError("call calibrate() before querying intervals")
        return self._residuals_by_window

    def half_width(self, window_index: int, alpha: float) -> float:
        """Conformal quantile of one window's calibration residuals."""
        residuals = self._check_calibrated()[window_index]
        if not 0.0 < alpha < 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
        n = len(residuals)
        rank = int(np.ceil((n + 1) * (1.0 - alpha)))
        if rank > n:
            # Not enough calibration data for this coverage level.
            return float(np.inf)
        return float(np.sort(residuals)[rank - 1])

    def query_interval(
        self, avail_id: int, t_star: float, alpha: float = 0.1
    ) -> DomdInterval:
        """Point estimate + calibrated interval at ``t_star``."""
        self._check_calibrated()
        estimate = self._estimator.query([int(avail_id)], t_star=t_star)[0]
        window_index = self._estimator.timeline.window_index(t_star)
        width = self.half_width(window_index, alpha)
        return DomdInterval(
            avail_id=int(avail_id),
            t_star=float(t_star),
            estimate=estimate.current_estimate,
            lower=estimate.current_estimate - width,
            upper=estimate.current_estimate + width,
            alpha=alpha,
        )

    def empirical_coverage(
        self, test_ids: np.ndarray, t_star: float, alpha: float = 0.1
    ) -> float:
        """Fraction of held-out avails whose true delay lands inside."""
        estimator = self._estimator
        assert estimator._dataset is not None
        delay_by_id = {
            int(a): float(d)
            for a, d in zip(
                estimator._dataset.avails["avail_id"],
                estimator._dataset.avails["delay"],
            )
        }
        hits = 0
        test_ids = np.asarray(test_ids, dtype=np.int64)
        for avail_id in test_ids:
            interval = self.query_interval(int(avail_id), t_star, alpha)
            truth = delay_by_id[int(avail_id)]
            if interval.lower <= truth <= interval.upper:
                hits += 1
        return hits / len(test_ids)
