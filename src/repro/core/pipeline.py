"""Greedy modeling-pipeline optimization (Problem 2, Tasks 2-6).

Jointly searching selection method x k x model family x architecture x
loss x hyperparameters x fusion is a combinatorial experiment-design
problem (NP-hard); the paper optimises greedily, one stage at a time, in
a fixed order, holding defaults for not-yet-optimised stages:

1. **selection** (Task 2) — method and feature count ``k``.
2. **model** (Task 3a) — base model family (GBM vs Elastic-Net).
3. **architecture** (Task 3b) — flat ("non-stacked") vs stacked.
4. **loss** (Task 4) — l2 / l1 / pseudo-Huber (with delta tuning).
5. **hpt** (Task 5) — AutoHPT trial budget via TPE.
6. **fusion** (Task 6) — none / min / average over the timeline.

Every stage is scored by Equation 2's objective: absolute error of the
fused estimate summed over the validation avails and the whole logical
timeline (reported as a mean so numbers are comparable across stages).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.core.config import ARCHITECTURES, PipelineConfig
from repro.core.models import MODEL_FAMILIES
from repro.core.timeline import LogicalTimeline
from repro.core.timeline_models import TimelineModelSet
from repro.data.schema import NavyMaintenanceDataset
from repro.data.splits import DataSplits, split_dataset
from repro.errors import ConfigurationError
from repro.features.selection import FEATURE_SELECTION_METHODS, score_ranking
from repro.features.static import static_features_for
from repro.features.transform import StatusFeatureExtractor
from repro.ml.metrics import mae
from repro.ml.tuning import TpeTuner, default_gbm_space
from repro.runtime import ExecutionContext, ensure_context

DEFAULT_K_GRID = tuple(range(20, 101, 10))
DEFAULT_TRIAL_COUNTS = (10, 20, 30, 40, 50, 100, 200)
DEFAULT_HUBER_DELTAS = (6.0, 12.0, 18.0, 24.0, 36.0)

STAGES = ("selection", "model", "architecture", "loss", "hpt", "fusion")


@dataclass
class StageResult:
    """Outcome of one greedy optimization stage."""

    stage: str
    records: list[dict[str, Any]]
    chosen: dict[str, Any]
    seconds: float

    def best_record(self) -> dict[str, Any]:
        return min(self.records, key=lambda r: r["val_mae"])


@dataclass
class OptimizationReport:
    """Full greedy run: final config + per-stage sweep tables."""

    config: PipelineConfig
    stages: dict[str, StageResult] = field(default_factory=dict)

    def summary(self) -> dict[str, Any]:
        out: dict[str, Any] = {"final": self.config.describe()}
        for name, stage in self.stages.items():
            out[name] = stage.chosen
        return out


class PipelineOptimizer:
    """Greedy stage-by-stage pipeline construction over a dataset.

    The feature tensor and per-window selection rankings are computed
    once and shared across all candidate evaluations, so sweeps stay
    tractable on the paper's laptop-scale data.
    """

    def __init__(
        self,
        dataset: NavyMaintenanceDataset,
        splits: DataSplits | None = None,
        base_config: PipelineConfig | None = None,
        tune_t_stars: tuple[float, ...] = (30.0, 70.0),
        context: ExecutionContext | None = None,
    ):
        self.dataset = dataset
        self.splits = splits or split_dataset(dataset)
        self.config = base_config or PipelineConfig()
        self.timeline = LogicalTimeline(self.config.window_pct)
        self.context = ensure_context(context, seed=self.config.seed)

        tensor = StatusFeatureExtractor(
            dataset, self.timeline.t_stars, context=self.context
        ).extract()
        self.tensor = tensor
        X_static_all, self.static_names, static_ids = static_features_for(dataset)
        if not np.array_equal(static_ids, tensor.avail_ids):
            raise ConfigurationError("static features and tensor avails misaligned")

        delay_by_id = {
            int(a): float(d)
            for a, d in zip(dataset.avails["avail_id"], dataset.avails["delay"])
        }
        def take(ids: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
            rows = tensor.rows_for(ids)
            y = np.array([delay_by_id[int(a)] for a in ids])
            return X_static_all[rows], tensor.values[rows], y

        self.Xs_train, self.dyn_train, self.y_train = take(self.splits.train_ids)
        self.Xs_val, self.dyn_val, self.y_val = take(self.splits.validation_ids)
        self.Xs_test, self.dyn_test, self.y_test = take(self.splits.test_ids)
        self.dyn_names = list(tensor.feature_names)

        self._ranking_cache: dict[str, list[np.ndarray]] = {}
        self._tune_windows = tuple(
            self.timeline.window_index(t) for t in tune_t_stars
        )

    # ------------------------------------------------------------------
    # shared machinery
    # ------------------------------------------------------------------
    def rankings_for(self, method: str) -> list[np.ndarray]:
        """Per-window full feature rankings under a method (cached).

        Rankings are computed on the *training* slice only — selection
        never sees validation or test avails.
        """
        cached = self._ranking_cache.get(method)
        if cached is not None:
            return cached
        with self.context.span("select"):
            rankings = [
                score_ranking(
                    method, self.dyn_train[:, ti, :], self.y_train, seed=self.config.seed
                )
                for ti in range(self.timeline.n_models)
            ]
        self._ranking_cache[method] = rankings
        return rankings

    def fit_model_set(self, config: PipelineConfig) -> TimelineModelSet:
        """Fit all window models for a candidate configuration."""
        model_set = TimelineModelSet(
            config=config,
            dyn_feature_names=self.dyn_names,
            static_feature_names=self.static_names,
            selection_rankings=self.rankings_for(config.selection_method),
            context=self.context,
        )
        return model_set.fit(self.Xs_train, self.dyn_train, self.y_train)

    def evaluate(self, config: PipelineConfig) -> dict[str, Any]:
        """Validation score of a configuration (Equation 2 objective).

        Returns ``val_mae`` (mean absolute error of the fused estimate
        over all validation avails and all timeline windows) and the
        per-window breakdown ``val_mae_by_t``.
        """
        model_set = self.fit_model_set(config)
        fused = model_set.predict_fused(self.Xs_val, self.dyn_val)
        by_t = np.array(
            [mae(self.y_val, fused[:, ti]) for ti in range(fused.shape[1])]
        )
        return {
            "val_mae": float(by_t.mean()),
            "val_mae_by_t": by_t,
            "model_set": model_set,
        }

    def _subset_val_mae(self, config: PipelineConfig, window_indices: tuple[int, ...]) -> float:
        """Cheap objective: fit/evaluate only a subset of windows."""
        rankings = self.rankings_for(config.selection_method)
        k = min(config.k, self.dyn_train.shape[2])
        errors: list[float] = []
        # Tuning probes always use the flat design; the stacked base
        # model is architecture-stage machinery, not a tuning target.
        probe_config = config.evolve(architecture="flat")
        for ti in window_indices:
            model_set = TimelineModelSet(
                config=probe_config,
                dyn_feature_names=self.dyn_names,
                static_feature_names=self.static_names,
                selection_rankings=None,
                context=self.context,
            )
            # Fit just one window by hand (avoids refitting the rest).
            selected = rankings[ti][:k]
            design, _ = model_set._design(
                self.Xs_train, self.dyn_train[:, ti, :], selected, None
            )
            model = model_set._new_model().fit(design, self.y_train)
            val_design, _ = model_set._design(
                self.Xs_val, self.dyn_val[:, ti, :], selected, None
            )
            errors.append(mae(self.y_val, model.predict(val_design)))
        return float(np.mean(errors))

    # ------------------------------------------------------------------
    # stages
    # ------------------------------------------------------------------
    def optimize_selection(
        self,
        methods: tuple[str, ...] = FEATURE_SELECTION_METHODS,
        k_grid: tuple[int, ...] = DEFAULT_K_GRID,
    ) -> StageResult:
        """Task 2: choose the selection method and feature count."""
        records = []
        with self.context.metrics.span("optimize.selection") as sp:
            for method in methods:
                for k in k_grid:
                    candidate = self.config.evolve(selection_method=method, k=k)
                    result = self.evaluate(candidate)
                    records.append(
                        {
                            "method": method,
                            "k": k,
                            "val_mae": result["val_mae"],
                            "val_mae_by_t": result["val_mae_by_t"],
                        }
                    )
        best = min(records, key=lambda r: r["val_mae"])
        self.config = self.config.evolve(selection_method=best["method"], k=best["k"])
        return StageResult(
            stage="selection",
            records=records,
            chosen={"selection_method": best["method"], "k": best["k"]},
            seconds=sp.seconds,
        )

    def optimize_model_family(
        self, families: tuple[str, ...] = MODEL_FAMILIES
    ) -> StageResult:
        """Task 3a: choose the base model family."""
        records = []
        with self.context.metrics.span("optimize.model") as sp:
            for family in families:
                candidate = self.config.evolve(model_family=family)
                result = self.evaluate(candidate)
                records.append(
                    {
                        "family": family,
                        "val_mae": result["val_mae"],
                        "val_mae_by_t": result["val_mae_by_t"],
                    }
                )
        best = min(records, key=lambda r: r["val_mae"])
        self.config = self.config.evolve(model_family=best["family"])
        return StageResult(
            stage="model",
            records=records,
            chosen={"model_family": best["family"]},
            seconds=sp.seconds,
        )

    def optimize_architecture(
        self, architectures: tuple[str, ...] = ARCHITECTURES
    ) -> StageResult:
        """Task 3b: flat (non-stacked) vs stacked architecture."""
        records = []
        with self.context.metrics.span("optimize.architecture") as sp:
            for architecture in architectures:
                candidate = self.config.evolve(architecture=architecture)
                result = self.evaluate(candidate)
                records.append(
                    {
                        "architecture": architecture,
                        "val_mae": result["val_mae"],
                        "val_mae_by_t": result["val_mae_by_t"],
                    }
                )
        best = min(records, key=lambda r: r["val_mae"])
        self.config = self.config.evolve(architecture=best["architecture"])
        return StageResult(
            stage="architecture",
            records=records,
            chosen={"architecture": best["architecture"]},
            seconds=sp.seconds,
        )

    def optimize_loss(
        self,
        losses: tuple[str, ...] = ("l2", "l1", "pseudo_huber"),
        huber_deltas: tuple[float, ...] = DEFAULT_HUBER_DELTAS,
    ) -> StageResult:
        """Task 4: choose the training loss (delta-tuned for Huber)."""
        records = []
        with self.context.metrics.span("optimize.loss") as sp:
            for loss in losses:
                deltas = huber_deltas if loss in ("huber", "pseudo_huber") else (self.config.huber_delta,)
                for delta in deltas:
                    candidate = self.config.evolve(loss=loss, huber_delta=delta)
                    result = self.evaluate(candidate)
                    records.append(
                        {
                            "loss": loss,
                            "delta": delta,
                            "val_mae": result["val_mae"],
                            "val_mae_by_t": result["val_mae_by_t"],
                        }
                    )
        best = min(records, key=lambda r: r["val_mae"])
        self.config = self.config.evolve(loss=best["loss"], huber_delta=best["delta"])
        return StageResult(
            stage="loss",
            records=records,
            chosen={"loss": best["loss"], "huber_delta": best["delta"]},
            seconds=sp.seconds,
        )

    def optimize_trials(
        self,
        trial_counts: tuple[int, ...] = DEFAULT_TRIAL_COUNTS,
        tolerance: float = 0.02,
    ) -> StageResult:
        """Task 5: AutoHPT — pick the TPE trial budget and hyperparameters.

        For each budget a fresh TPE run tunes the GBM hyperparameters on
        a cheap window subset; the tuned configuration is then scored on
        the full timeline.  Following the paper's overfitting argument,
        the *smallest* budget whose validation MAE is within
        ``tolerance`` of the best is chosen.
        """
        if self.config.model_family != "gbm":
            raise ConfigurationError("AutoHPT tunes the GBM family only")
        space = default_gbm_space()
        records = []
        with self.context.metrics.span("optimize.hpt") as sp:
            for count in trial_counts:
                tuner = TpeTuner(space, seed=self.config.seed)
                def objective(params: dict[str, Any]) -> float:
                    candidate_gbm = replace(
                        self.config.gbm,
                        **params,
                        loss=self.config.loss,
                        huber_delta=self.config.huber_delta,
                    )
                    candidate = self.config.evolve(gbm=candidate_gbm)
                    return self._subset_val_mae(candidate, self._tune_windows)

                tuning = tuner.optimize(objective, count)
                tuned_gbm = replace(
                    self.config.gbm,
                    **tuning.best_params,
                    loss=self.config.loss,
                    huber_delta=self.config.huber_delta,
                )
                candidate = self.config.evolve(gbm=tuned_gbm, n_trials=count)
                result = self.evaluate(candidate)
                records.append(
                    {
                        "n_trials": count,
                        "val_mae": result["val_mae"],
                        "val_mae_by_t": result["val_mae_by_t"],
                        "best_params": tuning.best_params,
                        "subset_mae": tuning.best_value,
                    }
                )
        best_mae = min(r["val_mae"] for r in records)
        chosen_record = next(
            r for r in records if r["val_mae"] <= best_mae * (1.0 + tolerance)
        )
        tuned_gbm = replace(
            self.config.gbm,
            **chosen_record["best_params"],
            loss=self.config.loss,
            huber_delta=self.config.huber_delta,
        )
        self.config = self.config.evolve(
            gbm=tuned_gbm, n_trials=chosen_record["n_trials"]
        )
        return StageResult(
            stage="hpt",
            records=records,
            chosen={
                "n_trials": chosen_record["n_trials"],
                "best_params": chosen_record["best_params"],
            },
            seconds=sp.seconds,
        )

    def optimize_fusion(
        self, methods: tuple[str, ...] = ("none", "min", "average")
    ) -> StageResult:
        """Task 6: choose the fusion technique."""
        records = []
        from repro.core.fusion import fuse_progressive

        with self.context.metrics.span("optimize.fusion") as sp:
            # One fit serves all fusion candidates: fusion is a post-hoc
            # aggregation of the same per-window predictions.
            model_set = self.fit_model_set(self.config)
            raw = model_set.predict_matrix(self.Xs_val, self.dyn_val)
            for method in methods:
                fused = fuse_progressive(raw, method)
                by_t = np.array(
                    [mae(self.y_val, fused[:, ti]) for ti in range(fused.shape[1])]
                )
                records.append(
                    {
                        "fusion": method,
                        "val_mae": float(by_t.mean()),
                        "val_mae_by_t": by_t,
                    }
                )
        best = min(records, key=lambda r: r["val_mae"])
        self.config = self.config.evolve(fusion=best["fusion"])
        return StageResult(
            stage="fusion",
            records=records,
            chosen={"fusion": best["fusion"]},
            seconds=sp.seconds,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        stages: tuple[str, ...] = STAGES,
        selection_methods: tuple[str, ...] = FEATURE_SELECTION_METHODS,
        k_grid: tuple[int, ...] = DEFAULT_K_GRID,
        trial_counts: tuple[int, ...] = DEFAULT_TRIAL_COUNTS,
    ) -> OptimizationReport:
        """Execute the greedy stages in order and return the report.

        The whole greedy chain runs under one telemetry trace
        (``optimize``) so its stage spans are reconstructable as a unit
        in the event log.
        """
        unknown = set(stages) - set(STAGES)
        if unknown:
            raise ConfigurationError(f"unknown stages: {sorted(unknown)}")
        telemetry = self.context.metrics.telemetry
        trace_scope = (
            telemetry.trace("optimize", stages=list(stages))
            if telemetry is not None
            else nullcontext()
        )
        report = OptimizationReport(config=self.config)
        with trace_scope:
            return self._run_stages(
                report, stages, selection_methods, k_grid, trial_counts
            )

    def _run_stages(
        self,
        report: "OptimizationReport",
        stages: tuple[str, ...],
        selection_methods: tuple[str, ...],
        k_grid: tuple[int, ...],
        trial_counts: tuple[int, ...],
    ) -> "OptimizationReport":
        for stage in STAGES:
            if stage not in stages:
                continue
            if stage == "selection":
                result = self.optimize_selection(selection_methods, k_grid)
            elif stage == "model":
                result = self.optimize_model_family()
            elif stage == "architecture":
                result = self.optimize_architecture()
            elif stage == "loss":
                result = self.optimize_loss()
            elif stage == "hpt":
                if self.config.model_family != "gbm":
                    # AutoHPT only applies to the GBM family; when the
                    # greedy chain selected the linear family there is
                    # nothing to tune — record a skipped stage.
                    result = StageResult(
                        stage="hpt",
                        records=[],
                        chosen={"n_trials": 0, "skipped": "non-GBM family"},
                        seconds=0.0,
                    )
                else:
                    result = self.optimize_trials(trial_counts)
            else:
                result = self.optimize_fusion()
            report.stages[stage] = result
            report.config = self.config
        return report

    # ------------------------------------------------------------------
    def test_evaluation(self, config: PipelineConfig | None = None) -> dict[str, Any]:
        """Table 7: fused-estimate quality on the held-out test set.

        Returns per-window metric rows plus the timeline average.
        """
        from repro.ml.metrics import metric_suite

        config = config or self.config
        model_set = self.fit_model_set(config)
        fused = model_set.predict_fused(self.Xs_test, self.dyn_test)
        rows = []
        for ti, t_star in enumerate(self.timeline.t_stars):
            suite = metric_suite(self.y_test, fused[:, ti])
            suite["t_star"] = float(t_star)
            rows.append(suite)
        average = {
            key: float(np.mean([row[key] for row in rows]))
            for key in rows[0]
            if key != "t_star"
        }
        return {"rows": rows, "average": average, "model_set": model_set}
