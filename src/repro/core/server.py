"""The concurrent serving runtime: a worker pool over :class:`DomdService`.

The deployed SMDII engine serves many logged-in users at once.
:class:`ServicePool` provides the serving half of that deployment story
on top of the single-threaded request handler:

* **Worker fan-out** — ``workers`` threads pull requests from one
  bounded queue and serve them through a *shared* :class:`DomdService`.
  The runtime underneath (metrics sink, telemetry hub, artifact cache)
  is thread-safe, so the pooled responses are byte-identical to the
  sequential ones — the differential stress suite asserts exactly that.
* **Backpressure** — the queue is bounded (``queue_depth``).  A
  non-blocking :meth:`submit` on a full queue returns an ``overloaded``
  error envelope immediately instead of stacking unbounded work; a
  blocking submit (the CLI's stdin loop) waits for a slot, propagating
  the backpressure to the producer.
* **Deadlines** — each request may carry a budget (``deadline_ms``,
  per-pool default or per-submit override).  The clock starts at
  *submission*, so time spent queued counts.  Cancellation is
  cooperative: the ambient :class:`~repro.runtime.concurrency.Deadline`
  is checked at loop checkpoints in the estimator and Status Query
  sweep, and an expired request returns a structured
  ``deadline_exceeded`` envelope within one checkpoint interval.
  Requests that expire *while still queued* are answered without being
  executed at all.
* **Determinism** — worker ``i`` owns RNG stream ``i`` of
  ``worker_rng_streams(seed, workers)``, installed as the ambient RNG
  for every request it serves; a seeded run stays reproducible no
  matter how many workers serve it.
* **Graceful shutdown** — :meth:`close` (or leaving the ``with`` block)
  drains queued work by default, then joins the workers; with
  ``drain=False`` queued-but-unstarted requests are answered with
  ``overloaded`` envelopes instead of executing.

The pool registers itself on the service (``service.pool``), so
``health`` responses gain a saturation status and telemetry expositions
gain the ``repro_pool_*`` gauges.
"""

from __future__ import annotations

import queue
import threading
from contextlib import nullcontext
from typing import Any

from repro.core.service import DomdService, error_envelope
from repro.errors import ConfigurationError
from repro.runtime import Deadline, ambient_scope, worker_rng_streams


class PoolFuture:
    """Handle for one submitted request's eventual response envelope."""

    __slots__ = ("_done", "_response")

    def __init__(self) -> None:
        self._done = threading.Event()
        self._response: dict[str, Any] | None = None

    @classmethod
    def resolved(cls, response: dict[str, Any]) -> "PoolFuture":
        """A future that is already complete (rejections, bad JSON)."""
        future = cls()
        future.set(response)
        return future

    def set(self, response: dict[str, Any]) -> None:
        self._response = response
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> dict[str, Any]:
        """Block until the response envelope is available."""
        if not self._done.wait(timeout):
            raise TimeoutError("request not completed within timeout")
        assert self._response is not None
        return self._response


class _WorkItem:
    __slots__ = ("request", "future", "deadline", "parent")

    def __init__(
        self,
        request: dict[str, Any],
        future: PoolFuture,
        deadline: Deadline | None,
        parent: Any | None = None,
    ) -> None:
        self.request = request
        self.future = future
        self.deadline = deadline
        #: The submitter's TraceContext (when the submitting thread had
        #: an explicit trace open) — carried across the queue so the
        #: worker's request trace parents back to the submitter.
        self.parent = parent


_SHUTDOWN = object()


class ServicePool:
    """Bounded-queue worker pool serving one shared :class:`DomdService`.

    Parameters
    ----------
    service:
        The request handler every worker serves through.  Its runtime
        (sink, hub, cache) is shared and thread-safe.
    workers:
        Worker-thread count (``repro serve --workers``).
    queue_depth:
        Bounded queue capacity; the backpressure knob
        (``--queue-depth``).
    deadline_ms:
        Default per-request budget in milliseconds, measured from
        submission; ``None`` disables deadlines unless a submit
        overrides it (``--deadline-ms``).
    seed:
        Seed for the per-worker RNG streams; defaults to the service
        context's seed.
    gate:
        Optional :class:`~repro.runtime.concurrency.ReadWriteGate`.
        When set (``repro serve --follow``), every request executes
        under the gate's read side so a live WAL follower (the writer)
        never mutates state under an in-flight query.
    """

    def __init__(
        self,
        service: DomdService,
        workers: int = 1,
        queue_depth: int = 16,
        deadline_ms: float | None = None,
        seed: int | None = None,
        gate: Any | None = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if queue_depth < 1:
            raise ConfigurationError(f"queue_depth must be >= 1, got {queue_depth}")
        if deadline_ms is not None and not deadline_ms > 0:
            raise ConfigurationError(
                f"deadline_ms must be > 0, got {deadline_ms}"
            )
        self.service = service
        self.workers = workers
        self.queue_depth = queue_depth
        self.deadline_ms = deadline_ms
        self.gate = gate
        if seed is None:
            seed = service.context.seed
        self.rng_streams = worker_rng_streams(seed, workers)
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=queue_depth)
        self._lock = threading.Lock()
        self._in_flight = 0
        self._accepted = 0
        self._rejected = 0
        self._completed = 0
        self._deadline_exceeded = 0
        self._queue_peak = 0
        self._closed = False
        service.pool = self
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(index,),
                name=f"repro-pool-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        request: dict[str, Any],
        block: bool = False,
        deadline_ms: float | None = None,
    ) -> PoolFuture:
        """Enqueue one request; returns a :class:`PoolFuture`.

        With ``block=False`` (the serving default) a full queue rejects
        immediately: the returned future is already resolved with an
        ``overloaded`` envelope.  With ``block=True`` (the CLI's stdin
        loop) the call waits for a slot — backpressure reaches the
        producer instead of the client.

        ``deadline_ms`` overrides the pool default for this request;
        the budget starts now, so queue wait time counts against it.
        """
        if self._closed:
            return PoolFuture.resolved(
                self._rejection("overloaded", "serving pool is shut down")
            )
        budget = deadline_ms if deadline_ms is not None else self.deadline_ms
        deadline = Deadline.after_ms(budget) if budget is not None else None
        future = PoolFuture()
        # Capture the submitter's trace context (only when it opened one
        # explicitly) so the worker-side request trace parents to it —
        # the cross-thread half of the causal chain.
        telemetry = self.service.context.metrics.telemetry
        parent = (
            telemetry.open_trace_context() if telemetry is not None else None
        )
        item = _WorkItem(request, future, deadline, parent=parent)
        try:
            self._queue.put(item, block=block)
        except queue.Full:
            with self._lock:
                self._rejected += 1
            self._count("pool.rejected")
            return PoolFuture.resolved(
                self._rejection(
                    "overloaded",
                    f"serving queue is full ({self.queue_depth} requests"
                    f" queued); retry later",
                )
            )
        with self._lock:
            self._accepted += 1
            self._queue_peak = max(self._queue_peak, self._queue.qsize())
        self._count("pool.accepted")
        return future

    def _count(self, name: str) -> None:
        self.service.context.counter(name)

    def _rejection(self, code: str, message: str) -> dict[str, Any]:
        """A pool-generated error envelope, logged and trace-stamped.

        Rejections never reach :meth:`DomdService.handle`, so without
        this the event log would hold no record of them; the emitted
        ``error`` event carries the emitting thread's trace id, and the
        envelope carries the same id so the client can correlate.
        """
        telemetry = self.service.context.metrics.telemetry
        trace_id = None
        if telemetry is not None:
            trace_id = telemetry.emit("error", code=code, message=message)[
                "trace_id"
            ]
        return error_envelope(code, message, trace_id=trace_id)

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    def _worker_loop(self, index: int) -> None:
        rng = self.rng_streams[index]
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                self._queue.task_done()
                return
            with self._lock:
                self._in_flight += 1
            try:
                response = self._serve(item, rng)
            finally:
                with self._lock:
                    self._in_flight -= 1
                    self._completed += 1
                self._queue.task_done()
            item.future.set(response)

    def _serve(self, item: _WorkItem, rng: Any) -> dict[str, Any]:
        deadline = item.deadline
        if deadline is not None and deadline.expired():
            # Expired while queued: answer without executing at all.
            with self._lock:
                self._deadline_exceeded += 1
            self._count("pool.deadline_exceeded")
            return self._rejection(
                "deadline_exceeded",
                f"deadline of {deadline.budget_seconds * 1000:.0f} ms"
                " expired while the request was queued",
            )
        scope = self.gate.read() if self.gate is not None else nullcontext()
        with scope, ambient_scope(deadline=deadline, rng=rng):
            response = self.service.handle(item.request, parent=item.parent)
        if (
            not response.get("ok", False)
            and response.get("error", {}).get("code") == "deadline_exceeded"
        ):
            with self._lock:
                self._deadline_exceeded += 1
            self._count("pool.deadline_exceeded")
        return response

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def status(self) -> dict[str, Any]:
        """Saturation gauges: the ``pool`` block of ``health`` responses
        and the ``repro_pool_*`` metrics of telemetry expositions."""
        with self._lock:
            queued = self._queue.qsize()
            return {
                "workers": self.workers,
                "queue_depth": queued,
                "queue_capacity": self.queue_depth,
                "queue_peak": self._queue_peak,
                "in_flight": self._in_flight,
                "saturated": queued >= self.queue_depth,
                "accepted": self._accepted,
                "rejected": self._rejected,
                "deadline_exceeded": self._deadline_exceeded,
                "completed": self._completed,
            }

    def sample_gauges(self) -> dict[str, Any]:
        """The sampler's view of :meth:`status`.

        Identical gauges, plus a reset of ``queue_peak`` — each sampler
        tick then reports the *peak queue depth within that tick*, which
        is what saturation charts need (instantaneous ``queue_depth`` at
        tick time almost always reads 0 even under heavy load, because
        workers drain the queue between ticks).
        """
        status = self.status()
        with self._lock:
            self._queue_peak = self._queue.qsize()
        return status

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def close(self, drain: bool = True) -> None:
        """Stop accepting work and join the workers.

        ``drain=True`` serves everything already queued first;
        ``drain=False`` answers queued-but-unstarted requests with
        ``overloaded`` envelopes and stops as soon as in-flight
        requests finish.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        if not drain:
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                self._queue.task_done()
                if item is not _SHUTDOWN:
                    with self._lock:
                        self._rejected += 1
                    item.future.set(
                        self._rejection(
                            "overloaded", "serving pool shut down before execution"
                        )
                    )
        for _ in self._threads:
            self._queue.put(_SHUTDOWN)
        for thread in self._threads:
            thread.join()
        if self.service.pool is self:
            self.service.pool = None

    def __enter__(self) -> "ServicePool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close(drain=exc_info[0] is None)

    def __repr__(self) -> str:
        status = self.status()
        return (
            f"ServicePool(workers={self.workers}, "
            f"queued={status['queue_depth']}/{self.queue_depth}, "
            f"in_flight={status['in_flight']}, closed={self._closed})"
        )
