"""Global interpretability reports (the paper's SME-review workflow).

Beyond per-avail top-5 explanations, Navy subject-matter experts review
which factors drive the model *overall* — "a review of the top
contributing features for each availability, enabling SMEs to validate
whether the most influential factors align with their domain expertise".
This module aggregates:

* per-window gain importances of the fitted models,
* timeline-wide importances (mean over windows),
* feature-stability (in how many windows a feature was selected),
* a population-level contribution summary (mean |contribution| per
  feature across a set of avails).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.core.estimator import DomdEstimator
from repro.errors import ConfigurationError, NotFittedError


@dataclass(frozen=True)
class GlobalFeatureReport:
    """Aggregated importance of one feature across the timeline."""

    name: str
    mean_importance: float
    n_windows_selected: int
    mean_abs_contribution: float


def _fitted(estimator: DomdEstimator):
    if estimator._model_set is None:
        raise NotFittedError("estimator is not fitted")
    return estimator._model_set


def window_importances(estimator: DomdEstimator, window_index: int) -> dict[str, float]:
    """Gain importances of one window model, by design-column name."""
    model_set = _fitted(estimator)
    window = model_set.windows[window_index]
    importances = window.model.feature_importances()
    return dict(zip(window.design_names, importances.tolist()))


def global_feature_report(
    estimator: DomdEstimator,
    avail_ids: np.ndarray | None = None,
    top: int = 20,
) -> list[GlobalFeatureReport]:
    """Timeline-wide feature ranking for SME review.

    Parameters
    ----------
    estimator:
        A fitted estimator.
    avail_ids:
        Population for the contribution summary (default: every avail in
        the fitted dataset).
    top:
        Number of features returned (ranked by mean importance).
    """
    if top < 1:
        raise ConfigurationError(f"top must be >= 1, got {top}")
    model_set = _fitted(estimator)
    assert estimator._tensor is not None and estimator._X_static is not None
    if avail_ids is None:
        avail_ids = estimator._tensor.avail_ids
    rows = estimator._tensor.rows_for(np.asarray(avail_ids, dtype=np.int64))
    X_static = estimator._X_static[rows]

    importance_sums: dict[str, float] = defaultdict(float)
    windows_selected: dict[str, int] = defaultdict(int)
    contribution_sums: dict[str, float] = defaultdict(float)
    contribution_counts: dict[str, int] = defaultdict(int)

    n_windows = len(model_set.windows)
    for ti in range(n_windows):
        window = model_set.windows[ti]
        for name, value in zip(
            window.design_names, window.model.feature_importances()
        ):
            importance_sums[name] += float(value)
            windows_selected[name] += 1
        contribs, names = model_set.contributions_at(
            X_static, estimator._tensor.values[rows, ti, :], ti
        )
        mean_abs = np.abs(contribs[:, :-1]).mean(axis=0)
        for name, value in zip(names, mean_abs):
            contribution_sums[name] += float(value)
            contribution_counts[name] += 1

    reports = [
        GlobalFeatureReport(
            name=name,
            mean_importance=importance_sums[name] / n_windows,
            n_windows_selected=windows_selected[name],
            mean_abs_contribution=(
                contribution_sums[name] / contribution_counts[name]
                if contribution_counts[name]
                else 0.0
            ),
        )
        for name in importance_sums
    ]
    reports.sort(key=lambda r: r.mean_importance, reverse=True)
    return reports[:top]


def format_sme_report(reports: list[GlobalFeatureReport]) -> str:
    """Plain-text rendering of a global feature report."""
    lines = [
        f"{'feature':36s} {'importance':>11} {'windows':>8} {'mean |contrib|':>15}",
        "-" * 74,
    ]
    for report in reports:
        lines.append(
            f"{report.name:36s} {report.mean_importance:>11.4f} "
            f"{report.n_windows_selected:>8d} {report.mean_abs_contribution:>13.2f} d"
        )
    return "\n".join(lines)
