"""Fusion of per-window delay estimates (Task 6 of the paper).

Delays compound over time, so later models see more information but
earlier models are less exposed to noise bursts; fusion aggregates every
prediction made up to ``t*`` into one estimate.  The paper evaluates
*no fusion* (use the latest window's model only), *min fusion* and
*average fusion*, selecting average.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

#: The paper evaluates none/min/average; median and ewma implement the
#: "many other possible ensembling methods" it leaves to future work.
FUSION_METHODS = ("none", "min", "average", "median", "ewma")

#: Recency weight of exponentially-weighted fusion: window j (0-based,
#: k windows total) gets weight EWMA_ALPHA ** (k - 1 - j).
EWMA_ALPHA = 0.7


def _ewma_weights(k: int) -> np.ndarray:
    weights = EWMA_ALPHA ** np.arange(k - 1, -1, -1, dtype=np.float64)
    return weights / weights.sum()


def fuse(predictions: np.ndarray, method: str) -> np.ndarray:
    """Fuse a matrix of per-window predictions into one vector.

    Parameters
    ----------
    predictions:
        Shape ``(n_avails, n_windows_so_far)`` — column ``j`` holds model
        ``m_{jx}``'s estimates; the last column is the current window.
    method:
        One of :data:`FUSION_METHODS`.
    """
    predictions = np.asarray(predictions, dtype=np.float64)
    if predictions.ndim != 2 or predictions.shape[1] == 0:
        raise ConfigurationError(
            f"predictions must be (n, >=1), got shape {predictions.shape}"
        )
    if method == "none":
        return predictions[:, -1].copy()
    if method == "min":
        return predictions.min(axis=1)
    if method == "average":
        return predictions.mean(axis=1)
    if method == "median":
        return np.median(predictions, axis=1)
    if method == "ewma":
        return predictions @ _ewma_weights(predictions.shape[1])
    raise ConfigurationError(
        f"unknown fusion method {method!r}; expected one of {FUSION_METHODS}"
    )


def fuse_progressive(predictions: np.ndarray, method: str) -> np.ndarray:
    """Fused estimate at *every* window: column ``j`` fuses windows 0..j.

    Output has the same shape as ``predictions``.
    """
    predictions = np.asarray(predictions, dtype=np.float64)
    if predictions.ndim != 2 or predictions.shape[1] == 0:
        raise ConfigurationError(
            f"predictions must be (n, >=1), got shape {predictions.shape}"
        )
    if method == "none":
        return predictions.copy()
    if method == "min":
        return np.minimum.accumulate(predictions, axis=1)
    if method == "average":
        cumulative = np.cumsum(predictions, axis=1)
        divisors = np.arange(1, predictions.shape[1] + 1, dtype=np.float64)
        return cumulative / divisors
    if method in ("median", "ewma"):
        out = np.empty_like(predictions, dtype=np.float64)
        for j in range(predictions.shape[1]):
            out[:, j] = fuse(predictions[:, : j + 1], method)
        return out
    raise ConfigurationError(
        f"unknown fusion method {method!r}; expected one of {FUSION_METHODS}"
    )
