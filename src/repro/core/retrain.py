"""Automated retraining (the paper's hands-off deployment loop).

"The solution is a predictive maintenance pipeline that uses obfuscated
data for training and then retrains on raw data in the Navy environment
**without human intervention**."  Inside the enclave, new avails close
every month; this module is the guardrail around unattended refits:

1. fit a *candidate* estimator on the current training population,
2. score champion and candidate on the same held-out population,
3. promote the candidate only if it does not regress beyond a tolerance
   (champion/challenger with a one-way ratchet),
4. keep an audit log of every decision.

No scheduling machinery — callers decide *when*; this decides *whether*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import PipelineConfig
from repro.core.estimator import DomdEstimator
from repro.data.schema import NavyMaintenanceDataset
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RetrainDecision:
    """Audit record of one champion/challenger evaluation."""

    promoted: bool
    reason: str
    champion_mae: float
    candidate_mae: float
    n_train: int
    n_eval: int

    def as_dict(self) -> dict:
        return {
            "promoted": self.promoted,
            "reason": self.reason,
            "champion_mae": self.champion_mae,
            "candidate_mae": self.candidate_mae,
            "n_train": self.n_train,
            "n_eval": self.n_eval,
        }


@dataclass
class RetrainManager:
    """Champion/challenger loop over :class:`DomdEstimator` fits.

    Parameters
    ----------
    config:
        Pipeline configuration used for every candidate fit (the design
        is fixed outside the enclave; only the fit refreshes inside).
    tolerance:
        Maximum allowed relative MAE regression for promotion; 0.0 means
        "promote only on improvement-or-tie".
    min_new_avails:
        Candidates are only considered once at least this many new
        closed avails have appeared since the champion was fitted.
    """

    config: PipelineConfig
    tolerance: float = 0.02
    min_new_avails: int = 1
    history: list[RetrainDecision] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.tolerance < 0:
            raise ConfigurationError("tolerance must be non-negative")
        if self.min_new_avails < 0:
            raise ConfigurationError("min_new_avails must be non-negative")
        self._champion: DomdEstimator | None = None
        self._champion_train_ids: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def champion(self) -> DomdEstimator:
        if self._champion is None:
            raise ConfigurationError("no champion yet — call bootstrap() first")
        return self._champion

    def bootstrap(
        self, dataset: NavyMaintenanceDataset, train_ids: np.ndarray
    ) -> DomdEstimator:
        """Fit and install the first champion unconditionally."""
        self._champion = DomdEstimator(self.config).fit(dataset, train_ids)
        self._champion_train_ids = np.asarray(train_ids, dtype=np.int64)
        return self._champion

    def consider(
        self,
        dataset: NavyMaintenanceDataset,
        train_ids: np.ndarray,
        eval_ids: np.ndarray,
    ) -> RetrainDecision:
        """Fit a candidate on ``train_ids`` and maybe promote it.

        Both champion and candidate are scored (timeline-average MAE of
        the fused estimate) on ``eval_ids`` avails of ``dataset``.
        """
        if self._champion is None or self._champion_train_ids is None:
            raise ConfigurationError("bootstrap() a champion before consider()")
        train_ids = np.asarray(train_ids, dtype=np.int64)
        eval_ids = np.asarray(eval_ids, dtype=np.int64)
        n_new = len(np.setdiff1d(train_ids, self._champion_train_ids))
        if n_new < self.min_new_avails:
            decision = RetrainDecision(
                promoted=False,
                reason=f"only {n_new} new training avails (< {self.min_new_avails})",
                champion_mae=float("nan"),
                candidate_mae=float("nan"),
                n_train=len(train_ids),
                n_eval=len(eval_ids),
            )
            self.history.append(decision)
            return decision

        candidate = DomdEstimator(self.config).fit(dataset, train_ids)
        candidate_mae = candidate.evaluate(eval_ids)["average"]["mae_100"]
        # The champion may have been fitted against an older snapshot; it
        # is re-served against the current dataset for a fair read.
        champion_mae = self._evaluate_champion(dataset, eval_ids)

        if candidate_mae <= champion_mae * (1.0 + self.tolerance):
            self._champion = candidate
            self._champion_train_ids = train_ids
            decision = RetrainDecision(
                promoted=True,
                reason="candidate within tolerance of champion",
                champion_mae=champion_mae,
                candidate_mae=candidate_mae,
                n_train=len(train_ids),
                n_eval=len(eval_ids),
            )
        else:
            decision = RetrainDecision(
                promoted=False,
                reason=(
                    f"candidate regressed {candidate_mae / champion_mae - 1.0:+.1%} "
                    f"(tolerance {self.tolerance:.1%})"
                ),
                champion_mae=champion_mae,
                candidate_mae=candidate_mae,
                n_train=len(train_ids),
                n_eval=len(eval_ids),
            )
        self.history.append(decision)
        return decision

    def _evaluate_champion(
        self, dataset: NavyMaintenanceDataset, eval_ids: np.ndarray
    ) -> float:
        champion = self.champion
        if champion._dataset is not dataset:
            # Serve the champion's fitted models over the new snapshot.
            champion = champion.serve(dataset)
        return champion.evaluate(eval_ids)["average"]["mae_100"]
