"""SMDII back-end service layer.

The paper deploys the framework "as a back-end engine for a
fleet-readiness application within the Navy's Ship Maintenance Data
Improvement Initiative (SMDII)": an end user logged into SMDII can query
the estimated delay of any ongoing or future avail at any time.

:class:`DomdService` is that engine's request surface: JSON-dict in,
JSON-dict out, with structured error envelopes instead of exceptions —
the contract a UI layer needs.  Supported request types:

* ``{"type": "domd_query", "avail_ids": [...], "t_star": 55.0}`` (or
  ``"date": "2024-04-12"``) — Problem 1 estimates.
* ``{"type": "explain", "avail_id": 7, "t_star": 55.0, "top": 5}`` —
  the top contributing features behind an estimate.
* ``{"type": "fleet_status", "date": "..."}`` — every avail in
  execution on a date, with its current estimate.
* ``{"type": "metrics", "avail_ids": [...]}`` — Table-7-style metrics
  for a closed-avail population.
* ``{"type": "metrics"}`` (no ``avail_ids``) — telemetry exposition:
  the runtime's counter totals and latency histograms with
  p50/p90/p99 summaries (add ``"format": "prometheus"`` for the text
  exposition instead of the JSON snapshot).
* ``{"type": "health"}`` — liveness plus the timeline drift monitor's
  per-window status; ``"status"`` degrades to ``"degraded"`` while any
  window is flagged as drifted.

Any request may add ``"timings": true`` to receive a ``timings``
envelope alongside the result: the spans and counters recorded while
serving *this* request (a :class:`~repro.runtime.RunReport` delta from
the service's :class:`~repro.runtime.ExecutionContext`).  Adding
``"explain": true`` instead returns a ``plan`` field — the same delta
flattened into EXPLAIN-style operator rows
(:func:`~repro.runtime.explain.plan_from_report`): one row per span
path with call counts and seconds, plus the request's counters.

Every request is additionally served under a **fresh trace id** on the
context's :class:`~repro.runtime.TelemetryHub`: the structured event
log links the request span to every estimator / feature-extraction /
Status Query span it triggered, and failed requests emit an ``error``
event.  A request may carry a ``"traceparent"`` field (or the pool
hands over the submitter's :class:`TraceContext`) to parent the trace.

**Provenance.**  Every ok envelope carries a ``provenance`` stamp — the
model/config content hashes, the feature-tensor cache key (data
vintage), the serving watermark and maintained index designs when live
ingestion backs the service, the planner's per-request index choice,
and the request's ``trace_id``.  The same stamp (minus the trace id) is
emitted as a ``provenance`` event, so ``repro telemetry trace`` can
walk any response back to the WAL appends that fed it.

**Error envelopes.**  Every failure — bad input, domain errors, an
expired deadline, a saturated serving pool, even an unexpected internal
fault — produces the same structured shape::

    {"ok": false,
     "error": {"code": "<machine code>", "message": "...", "retryable": bool}}

Codes: ``bad_request``, ``bad_json``, ``unknown_type``, ``not_found``,
``domain_error``, ``deadline_exceeded``, ``overloaded``, ``internal``.
``retryable`` is ``true`` exactly for the load-dependent codes
(``overloaded``, ``deadline_exceeded``): the same request may succeed
once the pool drains.  Retryable envelopes additionally carry a
top-level ``trace_id`` so the bounce correlates with its server-side
trace; deterministic input errors stay trace-free.  Raw exception text
from unexpected faults never reaches the caller.
"""

from __future__ import annotations

import contextlib
import math
from typing import Any

import numpy as np

from repro.core.estimator import DomdEstimator
from repro.data.dates import iso_to_day
from repro.errors import DeadlineExceeded, ReproError
from repro.runtime import (
    ExecutionContext,
    plan_from_report,
    prometheus_text,
    telemetry_snapshot,
)
from repro.runtime.telemetry.tracecontext import TraceContext

#: Every error code the service may emit (pinned by the schema test).
ERROR_CODES = (
    "bad_request",
    "bad_json",
    "unknown_type",
    "not_found",
    "domain_error",
    "deadline_exceeded",
    "overloaded",
    "internal",
)

#: Codes where retrying the identical request may succeed (transient,
#: load-dependent failures — not input errors).
RETRYABLE_CODES = frozenset({"overloaded", "deadline_exceeded"})


def error_envelope(
    code: str, message: str, trace_id: str | None = None
) -> dict[str, Any]:
    """The one structured error shape every failure path produces.

    ``trace_id`` (attached only on *retryable* envelopes) lets a client
    correlate an ``overloaded``/``deadline_exceeded`` bounce with the
    server-side trace that produced it.  Deterministic input errors stay
    trace-free: their envelopes are pure functions of the request.
    """
    assert code in ERROR_CODES, f"unknown error code {code!r}"
    envelope: dict[str, Any] = {
        "ok": False,
        "error": {
            "code": code,
            "message": message,
            "retryable": code in RETRYABLE_CODES,
        },
    }
    if trace_id is not None and code in RETRYABLE_CODES:
        envelope["trace_id"] = trace_id
    return envelope


_error = error_envelope  # internal alias used by the handlers below


class DomdService:
    """JSON request handler over a fitted :class:`DomdEstimator`.

    Parameters
    ----------
    estimator:
        A fitted estimator.
    context:
        Execution context receiving per-request spans and counters;
        defaults to the estimator's own context so service and
        estimator metrics land in one sink.
    """

    def __init__(
        self, estimator: DomdEstimator, context: ExecutionContext | None = None
    ):
        if estimator._model_set is None:
            raise ReproError("DomdService requires a fitted estimator")
        self._estimator = estimator
        self.context = context if context is not None else estimator.context
        assert self.context is not None
        #: Set by :class:`~repro.core.server.ServicePool` when this
        #: service is pooled; ``health`` and telemetry expositions then
        #: include the pool's saturation gauges.
        self.pool: Any = None
        #: Set by the ``serve --follow`` path when a live
        #: :class:`~repro.stream.ingest.StreamIngestor` backs this
        #: service; ok responses then carry the watermark they answered
        #: at, and health/metrics gain ingestion gauges.
        self.ingest: Any = None

    # ------------------------------------------------------------------
    def handle(
        self, request: dict[str, Any], parent: TraceContext | None = None
    ) -> dict[str, Any]:
        """Dispatch one request; never raises for bad input.

        When the request carries ``"timings": true`` the response gains
        a ``timings`` key with the spans/counters recorded while serving
        it (timing flows through the context's :class:`MetricsSink`; the
        service itself never reads the clock).

        ``parent`` — a :class:`TraceContext` captured on the submitting
        thread (:class:`~repro.core.server.ServicePool` hands it over) —
        parents this request's trace; when absent, a ``"traceparent"``
        request field is honoured instead, so external callers can
        stitch their own traces to the server's.
        """
        if not isinstance(request, dict):
            return _error("bad_request", "request must be a JSON object")
        request_type = request.get("type")
        handlers = {
            "domd_query": self._handle_query,
            "explain": self._handle_explain,
            "fleet_status": self._handle_fleet_status,
            "metrics": self._handle_metrics,
            "health": self._handle_health,
        }
        handler = handlers.get(request_type)
        if handler is None:
            return _error(
                "unknown_type",
                f"unknown request type {request_type!r}; expected one of {sorted(handlers)}",
            )
        telemetry = self.context.metrics.telemetry
        if parent is None:
            parent = TraceContext.from_traceparent(request.get("traceparent"))
        trace_scope = (
            telemetry.trace("request", request_type=request_type, parent=parent)
            if telemetry is not None
            else contextlib.nullcontext()
        )
        with trace_scope:
            self.context.counter("service.requests")
            try:
                with self.context.metrics.capture() as captured:
                    with self.context.span(f"request.{request_type}"):
                        result = handler(request)
                response: dict[str, Any] = {"ok": True, "result": result}
                if self.ingest is not None:
                    # The "as of" stamp: every effect of WAL records up
                    # to this seq is visible to the answer above.
                    response["watermark"] = self.ingest.watermark
                response["provenance"] = self._provenance_stamp(
                    telemetry, captured.report, request_type
                )
                if request.get("timings"):
                    response["timings"] = captured.report.as_dict()
                if request.get("explain"):
                    response["plan"] = plan_from_report(captured.report)
                return response
            except DeadlineExceeded as exc:
                return self._record_error(telemetry, "deadline_exceeded", str(exc))
            except ReproError as exc:
                return self._record_error(telemetry, "domain_error", str(exc))
            except KeyError as exc:
                name = exc.args[0] if exc.args else "?"
                return self._record_error(
                    telemetry, "bad_request", f"missing required field {name!r}"
                )
            except (TypeError, ValueError) as exc:
                return self._record_error(telemetry, "bad_request", str(exc))
            except Exception as exc:  # noqa: BLE001 — the envelope contract:
                # unexpected faults must not leak raw exception text.
                return self._record_error(
                    telemetry,
                    "internal",
                    f"internal error while serving {request_type!r}"
                    f" ({type(exc).__name__})",
                )

    def _provenance_stamp(
        self, telemetry: Any, report: Any, request_type: str
    ) -> dict[str, Any]:
        """The stamp every ok envelope carries: what produced this answer.

        All fields except ``trace_id`` are deterministic functions of the
        served state, so two runs over the same data produce identical
        stamps — pinned by the differential stress suite.
        """
        stamp: dict[str, Any] = dict(self._estimator.provenance())
        if self.ingest is not None:
            stamp["watermark"] = self.ingest.watermark
            stamp["designs"] = sorted(self.ingest.adapters)
        # The planner's per-request index choice, when a Status Query
        # with design="auto" ran inside this request's capture window.
        prefix = "planner.chosen."
        for name, delta in sorted(report.counters.items()):
            if name.startswith(prefix) and delta:
                stamp["planner_design"] = name[len(prefix):]
                break
        if telemetry is not None:
            # Logged before trace_id joins the stamp: the event already
            # carries the trace id, and the logged fields stay the
            # reproducible (deterministic) part of the stamp.
            telemetry.emit("provenance", request_type=request_type, **stamp)
            stamp["trace_id"] = telemetry.trace_id
        return stamp

    def _record_error(
        self, telemetry: Any, code: str, message: str
    ) -> dict[str, Any]:
        self.context.counter("service.errors")
        if telemetry is not None:
            telemetry.emit("error", code=code, message=message)
        return _error(
            code,
            message,
            trace_id=telemetry.trace_id if telemetry is not None else None,
        )

    # ------------------------------------------------------------------
    def _parse_date(self, date: Any) -> int:
        """Validate and convert an ISO date; clean errors, no internals."""
        if not isinstance(date, str) or not date:
            raise ValueError(
                "'date' must be a non-empty ISO date string (YYYY-MM-DD)"
            )
        try:
            return iso_to_day(date)
        except ValueError:
            raise ValueError(
                f"malformed 'date' {date!r}: expected ISO format YYYY-MM-DD"
            ) from None

    def _validate_t_star(self, t_star: Any) -> float:
        if isinstance(t_star, bool) or not isinstance(t_star, (int, float)):
            raise ValueError(
                f"'t_star' must be a number, got {type(t_star).__name__}"
            )
        value = float(t_star)
        if not math.isfinite(value):
            raise ValueError(f"'t_star' must be finite, got {t_star!r}")
        return value

    def _resolve_time(self, request: dict[str, Any]) -> dict[str, Any]:
        t_star = request.get("t_star")
        date = request.get("date")
        if (t_star is None) == (date is None):
            raise ValueError("provide exactly one of 't_star' / 'date'")
        if t_star is not None:
            return {"t_star": self._validate_t_star(t_star)}
        return {"physical_day": float(self._parse_date(date))}

    def _handle_query(self, request: dict[str, Any]) -> list[dict[str, Any]]:
        avail_ids = [int(a) for a in request["avail_ids"]]
        estimates = self._estimator.query(avail_ids, **self._resolve_time(request))
        return [estimate.as_dict() for estimate in estimates]

    def _handle_explain(self, request: dict[str, Any]) -> dict[str, Any]:
        avail_id = int(request["avail_id"])
        t_star = self._validate_t_star(request["t_star"])
        top = int(request.get("top", 5))
        contributions = self._estimator.explain(avail_id, t_star, top=top)
        return {
            "avail_id": avail_id,
            "t_star": t_star,
            "contributions": [
                {"feature": c.name, "days": c.contribution, "value": c.value}
                for c in contributions
            ],
        }

    def _handle_fleet_status(self, request: dict[str, Any]) -> list[dict[str, Any]]:
        date = request.get("date")
        if date is None:
            raise ValueError("'date' is required for fleet_status")
        day = self._parse_date(date)
        dataset = self._estimator._dataset
        assert dataset is not None and self.context is not None
        avails = dataset.avails
        act_start = np.asarray(avails["act_start"])
        planned = np.asarray(avails["planned_duration"])
        progress = (day - act_start) / planned * 100.0
        executing = (progress >= 0.0) & (progress <= 100.0)
        executing_rows = np.flatnonzero(executing)

        # The current estimate depends on t* only through its timeline
        # window, so avails whose progress falls in the same window share
        # one batched query — the number of estimator queries is bounded
        # by the timeline's window count, not the executing-fleet size.
        timeline = self._estimator.timeline
        rows_by_window: dict[int, list[int]] = {}
        for row in executing_rows:
            window = timeline.window_index(float(progress[row]))
            rows_by_window.setdefault(window, []).append(int(row))
        estimate_by_row: dict[int, float] = {}
        for window, rows in sorted(rows_by_window.items()):
            self.context.counter("service.fleet_status.batches")
            batch_ids = [int(avails["avail_id"][row]) for row in rows]
            estimates = self._estimator.query(
                batch_ids, t_star=float(timeline.t_stars[window])
            )
            for row, estimate in zip(rows, estimates):
                estimate_by_row[row] = estimate.current_estimate

        out = []
        for row in executing_rows:
            out.append(
                {
                    "avail_id": int(avails["avail_id"][row]),
                    "ship_id": int(avails["ship_id"][row]),
                    "progress_pct": round(float(progress[row]), 1),
                    "estimated_delay_days": estimate_by_row[int(row)],
                }
            )
        out.sort(key=lambda item: -item["estimated_delay_days"])
        return out

    def _handle_metrics(self, request: dict[str, Any]) -> dict[str, Any]:
        if "avail_ids" in request:
            # Model-quality metrics over a closed-avail population.
            avail_ids = np.asarray(
                [int(a) for a in request["avail_ids"]], dtype=np.int64
            )
            return self._estimator.evaluate(avail_ids)
        # Telemetry exposition of the runtime itself.
        pool_status = self.pool.status() if self.pool is not None else None
        ingest_status = self.ingest.status() if self.ingest is not None else None
        exposition_format = request.get("format", "json")
        if exposition_format == "prometheus":
            return {
                "format": "prometheus",
                "exposition": prometheus_text(
                    self.context.metrics,
                    pool_status=pool_status,
                    ingest_status=ingest_status,
                ),
            }
        if exposition_format != "json":
            raise ValueError(
                f"'format' must be 'json' or 'prometheus', got {exposition_format!r}"
            )
        return telemetry_snapshot(
            self.context.metrics,
            pool_status=pool_status,
            ingest_status=ingest_status,
        )

    def _handle_health(self, request: dict[str, Any]) -> dict[str, Any]:
        counters = self.context.metrics.counters
        telemetry = self.context.metrics.telemetry
        drift_status: dict[str, Any] = {}
        flagged: list[dict[str, Any]] = []
        firing: list[str] = []
        alert_status: dict[str, Any] = {}
        if telemetry is not None:
            drift_status = telemetry.drift.status()
            flagged = telemetry.drift.flagged()
            # Any firing alert — an SLO burning its budget, a drifted
            # window — degrades health the same way a raw drift flag
            # does: the alert plane is the service's own view of itself.
            firing = telemetry.alerts.firing()
            alert_status = telemetry.alerts.status()
        response = {
            "status": "degraded" if flagged or firing else "ok",
            "fitted": self._estimator._model_set is not None,
            "requests": counters.get("service.requests", 0),
            "errors": counters.get("service.errors", 0),
            "drift": {"flagged": flagged, "windows": drift_status},
            "alerts": {"firing": firing, "states": alert_status},
        }
        if self.pool is not None:
            # A saturated pool degrades health before requests start
            # bouncing: the queue is full and the next submit would be
            # rejected with an ``overloaded`` envelope.
            pool_status = self.pool.status()
            response["pool"] = pool_status
            if pool_status.get("saturated") and response["status"] == "ok":
                response["status"] = "saturated"
        if self.ingest is not None:
            response["ingest"] = self.ingest.status()
        return response

    # ------------------------------------------------------------------
    def rebind(self, dataset: Any) -> None:
        """Point the service at a refreshed dataset (live ingestion).

        Uses :meth:`DomdEstimator.serve` — the fitted model set is
        shared, features are lazily re-extracted on the next query.
        **Must be called under the write side of the serving gate** so
        no in-flight request observes the swap.
        """
        self._estimator = self._estimator.serve(dataset)
