"""SMDII back-end service layer.

The paper deploys the framework "as a back-end engine for a
fleet-readiness application within the Navy's Ship Maintenance Data
Improvement Initiative (SMDII)": an end user logged into SMDII can query
the estimated delay of any ongoing or future avail at any time.

:class:`DomdService` is that engine's request surface: JSON-dict in,
JSON-dict out, with structured error envelopes instead of exceptions —
the contract a UI layer needs.  Supported request types:

* ``{"type": "domd_query", "avail_ids": [...], "t_star": 55.0}`` (or
  ``"date": "2024-04-12"``) — Problem 1 estimates.
* ``{"type": "explain", "avail_id": 7, "t_star": 55.0, "top": 5}`` —
  the top contributing features behind an estimate.
* ``{"type": "fleet_status", "date": "..."}`` — every avail in
  execution on a date, with its current estimate.
* ``{"type": "metrics", "avail_ids": [...]}`` — Table-7-style metrics
  for a closed-avail population.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.estimator import DomdEstimator
from repro.data.dates import iso_to_day
from repro.errors import ReproError


def _error(code: str, message: str) -> dict[str, Any]:
    return {"ok": False, "error": {"code": code, "message": message}}


class DomdService:
    """JSON request handler over a fitted :class:`DomdEstimator`."""

    def __init__(self, estimator: DomdEstimator):
        if estimator._model_set is None:
            raise ReproError("DomdService requires a fitted estimator")
        self._estimator = estimator

    # ------------------------------------------------------------------
    def handle(self, request: dict[str, Any]) -> dict[str, Any]:
        """Dispatch one request; never raises for bad input."""
        if not isinstance(request, dict):
            return _error("bad_request", "request must be a JSON object")
        request_type = request.get("type")
        handlers = {
            "domd_query": self._handle_query,
            "explain": self._handle_explain,
            "fleet_status": self._handle_fleet_status,
            "metrics": self._handle_metrics,
        }
        handler = handlers.get(request_type)
        if handler is None:
            return _error(
                "unknown_type",
                f"unknown request type {request_type!r}; expected one of {sorted(handlers)}",
            )
        try:
            return {"ok": True, "result": handler(request)}
        except ReproError as exc:
            return _error("domain_error", str(exc))
        except (KeyError, TypeError, ValueError) as exc:
            return _error("bad_request", f"{type(exc).__name__}: {exc}")

    # ------------------------------------------------------------------
    def _resolve_time(self, request: dict[str, Any]) -> dict[str, Any]:
        t_star = request.get("t_star")
        date = request.get("date")
        if (t_star is None) == (date is None):
            raise ValueError("provide exactly one of 't_star' / 'date'")
        if t_star is not None:
            return {"t_star": float(t_star)}
        return {"physical_day": float(iso_to_day(str(date)))}

    def _handle_query(self, request: dict[str, Any]) -> list[dict[str, Any]]:
        avail_ids = [int(a) for a in request["avail_ids"]]
        estimates = self._estimator.query(avail_ids, **self._resolve_time(request))
        return [estimate.as_dict() for estimate in estimates]

    def _handle_explain(self, request: dict[str, Any]) -> dict[str, Any]:
        avail_id = int(request["avail_id"])
        t_star = float(request["t_star"])
        top = int(request.get("top", 5))
        contributions = self._estimator.explain(avail_id, t_star, top=top)
        return {
            "avail_id": avail_id,
            "t_star": t_star,
            "contributions": [
                {"feature": c.name, "days": c.contribution, "value": c.value}
                for c in contributions
            ],
        }

    def _handle_fleet_status(self, request: dict[str, Any]) -> list[dict[str, Any]]:
        date = request.get("date")
        if date is None:
            raise ValueError("'date' is required for fleet_status")
        day = iso_to_day(str(date))
        dataset = self._estimator._dataset
        assert dataset is not None
        avails = dataset.avails
        act_start = np.asarray(avails["act_start"])
        planned = np.asarray(avails["planned_duration"])
        progress = (day - act_start) / planned * 100.0
        executing = (progress >= 0.0) & (progress <= 100.0)
        out = []
        for row in np.flatnonzero(executing):
            avail_id = int(avails["avail_id"][row])
            t_star = float(progress[row])
            estimate = self._estimator.query([avail_id], t_star=t_star)[0]
            out.append(
                {
                    "avail_id": avail_id,
                    "ship_id": int(avails["ship_id"][row]),
                    "progress_pct": round(t_star, 1),
                    "estimated_delay_days": estimate.current_estimate,
                }
            )
        out.sort(key=lambda item: -item["estimated_delay_days"])
        return out

    def _handle_metrics(self, request: dict[str, Any]) -> dict[str, Any]:
        avail_ids = np.asarray([int(a) for a in request["avail_ids"]], dtype=np.int64)
        return self._estimator.evaluate(avail_ids)
