"""Edge cases of the feature extractor and registry derived statistics."""

import numpy as np
import pytest

from repro.data.schema import NavyMaintenanceDataset
from repro.features import StatusFeatureExtractor
from repro.table import ColumnTable


def _dataset_with_rccs(rcc_rows):
    ships = ColumnTable(
        {
            "ship_id": [1],
            "ship_class": ["DDG"],
            "commission_year": [2000],
            "rmc_id": [0],
            "displacement": [9000.0],
        }
    )
    avails = ColumnTable(
        {
            "avail_id": [0],
            "ship_id": [1],
            "status": ["closed"],
            "plan_start": [1000],
            "plan_end": [1100],
            "act_start": [1000],
            "act_end": [1100],
            "delay": [0.0],
            "ship_class": ["DDG"],
            "rmc_id": [0],
            "ship_age": [10],
            "planned_duration": [100],
            "n_prior_avails": [0],
            "avail_type": ["docking"],
            "start_quarter": [1],
            "displacement": [9000.0],
        }
    )
    rccs = ColumnTable.from_rows(rcc_rows) if rcc_rows else ColumnTable(
        {
            "rcc_id": np.array([], dtype=np.int64),
            "avail_id": np.array([], dtype=np.int64),
            "rcc_type": np.array([], dtype=object),
            "swlin": np.array([], dtype=object),
            "create_date": np.array([], dtype=np.int64),
            "settle_date": np.array([], dtype=np.int64),
            "status": np.array([], dtype=object),
            "amount": np.array([], dtype=np.float64),
        }
    )
    return NavyMaintenanceDataset(ships=ships, avails=avails, rccs=rccs)


def _rcc(rcc_id, create, settle, amount=1000.0, rcc_type="G", swlin="111-11-001"):
    return {
        "rcc_id": rcc_id,
        "avail_id": 0,
        "rcc_type": rcc_type,
        "swlin": swlin,
        "create_date": create,
        "settle_date": settle,
        "status": "settled",
        "amount": amount,
    }


class TestNoRccs:
    def test_all_grid_features_zero(self):
        dataset = _dataset_with_rccs([])
        tensor = StatusFeatureExtractor(dataset).extract()
        j_t = tensor.feature_index("T_STAR")
        grid = np.delete(tensor.values, j_t, axis=2)
        assert np.count_nonzero(grid) == 0

    def test_t_star_special_still_populated(self):
        dataset = _dataset_with_rccs([])
        tensor = StatusFeatureExtractor(dataset).extract()
        j = tensor.feature_index("T_STAR")
        np.testing.assert_array_equal(tensor.values[0, :, j], tensor.t_stars)


class TestBoundarySemantics:
    def test_rcc_created_exactly_at_window_counts(self):
        # Creation day 1050 -> t*=50 exactly; inclusive (<=).
        dataset = _dataset_with_rccs([_rcc(0, 1050, 1090)])
        tensor = StatusFeatureExtractor(dataset).extract()
        j = tensor.feature_index("ALLALL-CNT_CREATED")
        assert tensor.values[0, tensor.t_index(50.0), j] == 1.0
        assert tensor.values[0, tensor.t_index(40.0), j] == 0.0

    def test_rcc_settled_exactly_at_window_not_active(self):
        dataset = _dataset_with_rccs([_rcc(0, 1010, 1050)])
        tensor = StatusFeatureExtractor(dataset).extract()
        active = tensor.feature_index("ALLALL-CNT_ACTIVE")
        settled = tensor.feature_index("ALLALL-CNT_SETTLED")
        t50 = tensor.t_index(50.0)
        assert tensor.values[0, t50, active] == 0.0
        assert tensor.values[0, t50, settled] == 1.0

    def test_rate_floor_prevents_blowup_at_t0(self):
        dataset = _dataset_with_rccs([_rcc(0, 1000, 1050, amount=5000.0)])
        tensor = StatusFeatureExtractor(dataset).extract()
        j = tensor.feature_index("ALLALL-RATE_CREATED_AMT")
        # At t*=0 the rate divides by the floor (5), not by zero.
        assert tensor.values[0, tensor.t_index(0.0), j] == pytest.approx(1000.0)

    def test_active_age_zero_when_nothing_active(self):
        dataset = _dataset_with_rccs([_rcc(0, 1010, 1020)])
        tensor = StatusFeatureExtractor(dataset).extract()
        j = tensor.feature_index("ALLALL-AVG_ACTIVE_AGE")
        assert tensor.values[0, tensor.t_index(100.0), j] == 0.0

    def test_settle_after_planned_end_visible_only_past_100(self):
        # Settles at day 1120 -> t*=120; at t*=100 still active.
        dataset = _dataset_with_rccs([_rcc(0, 1010, 1120)])
        tensor = StatusFeatureExtractor(dataset).extract()
        active = tensor.feature_index("ALLALL-CNT_ACTIVE")
        assert tensor.values[0, tensor.t_index(100.0), active] == 1.0


class TestTypeScopes:
    def test_supergroups_partition_digits(self):
        rows = [
            _rcc(0, 1010, 1020, swlin="111-11-001"),
            _rcc(1, 1010, 1020, swlin="411-11-001"),
            _rcc(2, 1010, 1020, swlin="511-11-001"),
            _rcc(3, 1010, 1020, swlin="911-11-001"),
        ]
        dataset = _dataset_with_rccs(rows)
        tensor = StatusFeatureExtractor(dataset).extract()
        t100 = tensor.t_index(100.0)
        groups = ["PLT", "CBT", "AUX", "SUP"]
        total = sum(
            tensor.values[0, t100, tensor.feature_index(f"ALL{g}-CNT_CREATED")]
            for g in groups
        )
        assert total == 4.0

    def test_type_specific_amounts(self):
        rows = [
            _rcc(0, 1010, 1020, amount=100.0, rcc_type="G"),
            _rcc(1, 1010, 1020, amount=200.0, rcc_type="N"),
            _rcc(2, 1010, 1020, amount=400.0, rcc_type="NG"),
        ]
        dataset = _dataset_with_rccs(rows)
        tensor = StatusFeatureExtractor(dataset).extract()
        t100 = tensor.t_index(100.0)
        assert tensor.values[0, t100, tensor.feature_index("GALL-SUM_SETTLED_AMT")] == 100.0
        assert tensor.values[0, t100, tensor.feature_index("NALL-SUM_SETTLED_AMT")] == 200.0
        assert tensor.values[0, t100, tensor.feature_index("NGALL-SUM_SETTLED_AMT")] == 400.0
        assert (
            tensor.values[0, t100, tensor.feature_index("ALLALL-SUM_SETTLED_AMT")] == 700.0
        )
