"""Tests for the feature extractor (transformation T) with exact values."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.features import N_GENERATED_FEATURES, StatusFeatureExtractor, default_timeline


@pytest.fixture()
def toy_tensor(toy_dataset):
    return StatusFeatureExtractor(
        toy_dataset, t_stars=np.array([0.0, 25.0, 50.0, 75.0, 100.0])
    ).extract()


def feature(tensor, t_star, avail_id, name):
    return tensor.matrix(t_star, np.array([avail_id]))[0, tensor.feature_index(name)]


class TestExactValues:
    """Toy avail 0 RCCs: G@t10-50 ($1000, swlin 1), N@t30-120 ($2000,
    swlin 2), G@t60-80 ($4000, swlin 1)."""

    def test_count_created_over_time(self, toy_tensor):
        counts = [
            feature(toy_tensor, t, 0, "ALLALL-CNT_CREATED")
            for t in (0.0, 25.0, 50.0, 75.0, 100.0)
        ]
        assert counts == [0.0, 1.0, 2.0, 3.0, 3.0]

    def test_count_settled_over_time(self, toy_tensor):
        counts = [
            feature(toy_tensor, t, 0, "ALLALL-CNT_SETTLED")
            for t in (25.0, 50.0, 75.0, 100.0)
        ]
        assert counts == [0.0, 1.0, 1.0, 2.0]

    def test_type_marginal(self, toy_tensor):
        assert feature(toy_tensor, 75.0, 0, "GALL-CNT_CREATED") == 2.0
        assert feature(toy_tensor, 75.0, 0, "NALL-CNT_CREATED") == 1.0
        assert feature(toy_tensor, 75.0, 0, "NGALL-CNT_CREATED") == 0.0

    def test_swlin_scope_marginal(self, toy_tensor):
        assert feature(toy_tensor, 75.0, 0, "ALL1-CNT_CREATED") == 2.0
        assert feature(toy_tensor, 75.0, 0, "ALL2-CNT_CREATED") == 1.0
        # Platform supergroup = digits 1-3.
        assert feature(toy_tensor, 75.0, 0, "ALLPLT-CNT_CREATED") == 3.0

    def test_amount_sums(self, toy_tensor):
        assert feature(toy_tensor, 50.0, 0, "ALLALL-SUM_CREATED_AMT") == 3000.0
        assert feature(toy_tensor, 50.0, 0, "ALLALL-SUM_SETTLED_AMT") == 1000.0
        assert feature(toy_tensor, 50.0, 0, "ALLALL-SUM_ACTIVE_AMT") == 2000.0

    def test_avg_settled_amount(self, toy_tensor):
        assert feature(toy_tensor, 100.0, 0, "GALL-AVG_SETTLED_AMT") == 2500.0

    def test_settled_duration(self, toy_tensor):
        # At t*=100: G rccs settled with durations 40 and 20 logical pts.
        assert feature(toy_tensor, 100.0, 0, "GALL-SUM_SETTLED_DUR") == 60.0
        assert feature(toy_tensor, 100.0, 0, "GALL-AVG_SETTLED_DUR") == 30.0

    def test_pct_active(self, toy_tensor):
        # t*=50: created 2, settled 1 -> 50% active.
        assert feature(toy_tensor, 50.0, 0, "ALLALL-PCT_ACTIVE") == 0.5

    def test_active_age(self, toy_tensor):
        # t*=50: active = N rcc created at 30 -> age 20.
        assert feature(toy_tensor, 50.0, 0, "ALLALL-AVG_ACTIVE_AGE") == 20.0

    def test_deltas(self, toy_tensor):
        # Between 25 and 50 one RCC (N@30) was created.
        assert feature(toy_tensor, 50.0, 0, "ALLALL-DLT_CREATED_CNT") == 1.0
        assert feature(toy_tensor, 50.0, 0, "ALLALL-DLT_CREATED_AMT") == 2000.0

    def test_first_window_delta_equals_value(self, toy_tensor):
        assert feature(toy_tensor, 0.0, 0, "ALLALL-DLT_CREATED_CNT") == feature(
            toy_tensor, 0.0, 0, "ALLALL-CNT_CREATED"
        )

    def test_avails_isolated(self, toy_tensor):
        # Avail 1 only has the NG rcc (created t*=20, $8000).
        assert feature(toy_tensor, 50.0, 1, "ALLALL-CNT_CREATED") == 1.0
        assert feature(toy_tensor, 50.0, 1, "NGALL-SUM_CREATED_AMT") == 8000.0
        assert feature(toy_tensor, 50.0, 1, "GALL-CNT_CREATED") == 0.0

    def test_specials(self, toy_tensor):
        assert feature(toy_tensor, 50.0, 0, "T_STAR") == 50.0
        assert feature(toy_tensor, 75.0, 0, "SWLIN_DIGITS_TOUCHED") == 2.0
        hhi = feature(toy_tensor, 50.0, 0, "AMT_CONCENTRATION_HHI")
        assert hhi == pytest.approx((1000 / 3000) ** 2 + (2000 / 3000) ** 2)


class TestStructure:
    def test_shape_and_finiteness(self, small_dataset):
        tensor = StatusFeatureExtractor(small_dataset).extract()
        assert tensor.values.shape == (30, 11, N_GENERATED_FEATURES)
        assert np.isfinite(tensor.values).all()

    def test_marginals_consistent(self, small_dataset):
        tensor = StatusFeatureExtractor(small_dataset).extract()
        total = tensor.at(100.0)[:, tensor.feature_index("ALLALL-CNT_CREATED")]
        by_type = sum(
            tensor.at(100.0)[:, tensor.feature_index(f"{t}ALL-CNT_CREATED")]
            for t in ("G", "N", "NG")
        )
        np.testing.assert_allclose(total, by_type)
        by_digit = sum(
            tensor.at(100.0)[:, tensor.feature_index(f"ALL{d}-CNT_CREATED")]
            for d in range(1, 10)
        )
        np.testing.assert_allclose(total, by_digit)

    def test_counts_monotone_over_time(self, small_dataset):
        tensor = StatusFeatureExtractor(small_dataset).extract()
        j = tensor.feature_index("ALLALL-CNT_CREATED")
        counts = tensor.values[:, :, j]
        assert (np.diff(counts, axis=1) >= 0).all()

    def test_default_timeline(self):
        timeline = default_timeline(10.0)
        assert len(timeline) == 11
        assert timeline[0] == 0.0 and timeline[-1] == 100.0

    def test_default_timeline_non_divisor(self):
        timeline = default_timeline(30.0)
        assert len(timeline) == 1 + int(np.ceil(100 / 30))

    def test_invalid_timeline_rejected(self, small_dataset):
        with pytest.raises(ConfigurationError):
            StatusFeatureExtractor(small_dataset, t_stars=np.array([10.0, 5.0]))
        with pytest.raises(ConfigurationError):
            default_timeline(0.0)
