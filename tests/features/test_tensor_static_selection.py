"""Tests for the feature tensor container, static features and selection."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.features import (
    FEATURE_SELECTION_METHODS,
    FeatureTensor,
    STATIC_FEATURES,
    encode_categorical,
    mutual_info_scores,
    pearson_scores,
    random_scores,
    rfe_ranking,
    rfe_select,
    score_ranking,
    select_features,
    spearman_scores,
    static_features_for,
)


@pytest.fixture()
def tensor():
    rng = np.random.default_rng(0)
    return FeatureTensor(
        values=rng.normal(size=(4, 3, 5)),
        avail_ids=np.array([10, 20, 30, 40]),
        t_stars=np.array([0.0, 50.0, 100.0]),
        feature_names=["f0", "f1", "f2", "f3", "f4"],
    )


class TestFeatureTensor:
    def test_axis_properties(self, tensor):
        assert tensor.n_avails == 4
        assert tensor.n_timestamps == 3
        assert tensor.n_features == 5

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            FeatureTensor(
                values=np.zeros((2, 2, 2)),
                avail_ids=np.array([1]),
                t_stars=np.array([0.0, 1.0]),
                feature_names=["a", "b"],
            )

    def test_at_slice(self, tensor):
        np.testing.assert_array_equal(tensor.at(50.0), tensor.values[:, 1, :])

    def test_at_unknown_t(self, tensor):
        with pytest.raises(ConfigurationError):
            tensor.at(33.0)

    def test_matrix_with_avail_order(self, tensor):
        out = tensor.matrix(0.0, np.array([30, 10]))
        np.testing.assert_array_equal(out[0], tensor.values[2, 0, :])
        np.testing.assert_array_equal(out[1], tensor.values[0, 0, :])

    def test_rows_for_unknown_avail(self, tensor):
        with pytest.raises(ConfigurationError):
            tensor.rows_for(np.array([999]))

    def test_feature_index(self, tensor):
        assert tensor.feature_index("f3") == 3
        with pytest.raises(ConfigurationError):
            tensor.feature_index("ghost")

    def test_select_features_subsets(self, tensor):
        sub = tensor.select_features(np.array([4, 0]))
        assert sub.feature_names == ["f4", "f0"]
        np.testing.assert_array_equal(sub.values[:, :, 0], tensor.values[:, :, 4])

    def test_for_avails(self, tensor):
        sub = tensor.for_avails(np.array([40, 20]))
        assert sub.n_avails == 2
        np.testing.assert_array_equal(sub.values[0], tensor.values[3])

    def test_nbytes(self, tensor):
        assert tensor.nbytes() == tensor.values.nbytes


class TestStaticFeatures:
    def test_shape_and_names(self, small_dataset):
        X, names, ids = static_features_for(small_dataset)
        assert X.shape == (30, 8)
        assert names == list(STATIC_FEATURES)
        assert len(ids) == 30

    def test_all_finite_numeric(self, small_dataset):
        X, _, _ = static_features_for(small_dataset)
        assert np.isfinite(X).all()

    def test_encode_categorical_stable(self):
        codes, mapping = encode_categorical(np.array(["b", "a", "b"], dtype=object))
        assert mapping == {"a": 0, "b": 1}
        assert codes.tolist() == [1.0, 0.0, 1.0]


@pytest.fixture()
def planted(rng):
    """X with one strongly predictive column (index 7) among noise."""
    X = rng.normal(size=(120, 20))
    y = 5.0 * X[:, 7] + rng.normal(0, 0.5, 120)
    return X, y


class TestScorers:
    def test_pearson_finds_planted(self, planted):
        X, y = planted
        assert pearson_scores(X, y).argmax() == 7

    def test_spearman_finds_planted_monotone(self, rng):
        X = rng.normal(size=(150, 10))
        y = np.exp(X[:, 3])  # monotone but nonlinear
        assert spearman_scores(X, y).argmax() == 3

    def test_mutual_info_finds_planted(self, planted):
        X, y = planted
        assert mutual_info_scores(X, y).argmax() == 7

    def test_mutual_info_finds_nonmonotone(self, rng):
        X = rng.normal(size=(400, 8))
        y = X[:, 2] ** 2  # invisible to Pearson
        assert mutual_info_scores(X, y).argmax() == 2
        assert pearson_scores(X, y).argmax() != 2 or pearson_scores(X, y)[2] < 0.3

    def test_constant_columns_score_zero(self, rng):
        X = np.column_stack([np.full(50, 3.0), rng.normal(size=50)])
        y = X[:, 1]
        assert pearson_scores(X, y)[0] == 0.0
        assert spearman_scores(X, y)[0] == 0.0
        assert mutual_info_scores(X, y)[0] == 0.0

    def test_pearson_sign_invariant(self, planted):
        X, y = planted
        scores_pos = pearson_scores(X, y)
        scores_neg = pearson_scores(X, -y)
        np.testing.assert_allclose(scores_pos, scores_neg, atol=1e-12)

    def test_random_scores_deterministic(self, planted):
        X, y = planted
        np.testing.assert_array_equal(
            random_scores(X, y, seed=4), random_scores(X, y, seed=4)
        )

    def test_spearman_handles_ties(self):
        X = np.array([[1.0], [1.0], [2.0], [2.0], [3.0], [3.0]])
        y = np.array([1.0, 1.0, 2.0, 2.0, 3.0, 3.0])
        assert spearman_scores(X, y)[0] == pytest.approx(1.0)


class TestSelection:
    def test_select_top_k(self, planted):
        X, y = planted
        for method in ("pearson", "spearman", "mutual_info"):
            selected = select_features(method, X, y, 5)
            assert len(selected) == 5
            assert 7 in selected

    def test_rfe_keeps_planted(self, planted):
        X, y = planted
        selected = rfe_select(X, y, 4)
        assert len(selected) == 4
        assert 7 in selected

    def test_rfe_ranking_is_permutation(self, planted):
        X, y = planted
        ranking = rfe_ranking(X, y)
        assert sorted(ranking.tolist()) == list(range(20))
        assert ranking[0] == 7  # best feature survives to the end

    def test_score_ranking_prefix_equals_select(self, planted):
        X, y = planted
        ranking = score_ranking("pearson", X, y)
        np.testing.assert_array_equal(ranking[:6], select_features("pearson", X, y, 6))

    def test_random_selection_differs_from_pearson(self, planted):
        X, y = planted
        random_sel = set(select_features("random", X, y, 5, seed=0).tolist())
        pearson_sel = set(select_features("pearson", X, y, 5).tolist())
        assert random_sel != pearson_sel

    def test_invalid_method(self, planted):
        X, y = planted
        with pytest.raises(ConfigurationError, match="unknown selection"):
            select_features("chi2", X, y, 5)

    def test_invalid_k(self, planted):
        X, y = planted
        with pytest.raises(ConfigurationError):
            select_features("pearson", X, y, 0)
        with pytest.raises(ConfigurationError):
            select_features("pearson", X, y, 21)

    def test_methods_registry(self):
        assert FEATURE_SELECTION_METHODS == (
            "pearson",
            "spearman",
            "mutual_info",
            "rfe",
            "random",
        )
