"""Tests for the generated-feature registry."""

from repro.features import (
    N_GENERATED_FEATURES,
    N_GRID_FEATURES,
    SPECIAL_FEATURES,
    STAT_AXIS,
    SWLIN_AXIS,
    TYPE_AXIS,
    build_registry,
    feature_names,
    grid_feature_name,
)


class TestGridShape:
    def test_grid_size(self):
        assert N_GRID_FEATURES == len(TYPE_AXIS) * len(SWLIN_AXIS) * len(STAT_AXIS)

    def test_total_near_paper_count(self):
        # The paper reports 1490 RCC-dependent features; the default grid
        # lands within a few percent of that.
        assert 1300 <= N_GENERATED_FEATURES <= 1600

    def test_registry_length(self):
        assert len(build_registry()) == N_GENERATED_FEATURES

    def test_axis_contents(self):
        type_labels = [label for label, _ in TYPE_AXIS]
        assert type_labels == ["G", "N", "NG", "ALL"]
        scope_labels = [label for label, _ in SWLIN_AXIS]
        assert scope_labels[:9] == [str(d) for d in range(1, 10)]
        assert "ALL" in scope_labels


class TestNames:
    def test_paper_style_name(self):
        assert grid_feature_name("G", "1", "AVG_SETTLED_AMT") == "G1-AVG_SETTLED_AMT"

    def test_paper_example_feature_exists(self):
        assert "G1-AVG_SETTLED_AMT" in feature_names()

    def test_names_unique(self):
        names = feature_names()
        assert len(set(names)) == len(names)

    def test_specials_at_end(self):
        names = feature_names()
        assert tuple(names[-len(SPECIAL_FEATURES):]) == SPECIAL_FEATURES


class TestSpecs:
    def test_indices_sequential(self):
        specs = build_registry()
        assert [s.index for s in specs] == list(range(len(specs)))

    def test_spec_coordinates_consistent(self):
        for spec in build_registry():
            if spec.kind == "special":
                continue
            assert spec.name == grid_feature_name(
                spec.type_label, spec.swlin_label, spec.stat_name
            )
            assert spec.status in ("created", "settled", "active")

    def test_every_status_covered(self):
        statuses = {s.status for s in build_registry()}
        assert {"created", "settled", "active", "special"} <= statuses
