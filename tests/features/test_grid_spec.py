"""Tests for the configurable feature grid (FeatureGridSpec)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.features import (
    FeatureGridSpec,
    N_GENERATED_FEATURES,
    StatusFeatureExtractor,
    feature_names,
)


class TestSpecConstruction:
    def test_default_matches_paper_grid(self):
        spec = FeatureGridSpec.default()
        assert spec.n_features == N_GENERATED_FEATURES
        assert spec.feature_names() == feature_names()

    def test_compact_is_smaller(self):
        assert FeatureGridSpec.compact().n_features < N_GENERATED_FEATURES

    def test_deep_covers_two_digit_prefixes(self):
        spec = FeatureGridSpec.deep()
        assert spec.swlin_depth == 2
        assert spec.digit_code_range == (10, 99)
        assert spec.n_features > 9000

    def test_invalid_depth(self):
        with pytest.raises(ConfigurationError):
            FeatureGridSpec(swlin_depth=3)

    def test_unknown_stat(self):
        with pytest.raises(ConfigurationError, match="unknown statistics"):
            FeatureGridSpec(stats=("CNT_CREATED", "MAX_FOO"))

    def test_empty_axes(self):
        with pytest.raises(ConfigurationError):
            FeatureGridSpec(stats=())
        with pytest.raises(ConfigurationError):
            FeatureGridSpec(type_axis=())

    def test_scope_codes_out_of_range(self):
        with pytest.raises(ConfigurationError, match="outside depth"):
            FeatureGridSpec(swlin_axis=(("X", (42,)),), swlin_depth=1)

    def test_registry_indices_sequential(self):
        specs = FeatureGridSpec.compact().build_registry()
        assert [s.index for s in specs] == list(range(len(specs)))


class TestExtractionWithSpecs:
    def test_compact_values_match_default_subset(self, toy_dataset):
        t_stars = np.array([0.0, 50.0, 100.0])
        full = StatusFeatureExtractor(toy_dataset, t_stars).extract()
        compact = StatusFeatureExtractor(
            toy_dataset, t_stars, grid=FeatureGridSpec.compact()
        ).extract()
        for name in compact.feature_names:
            np.testing.assert_allclose(
                compact.values[:, :, compact.feature_index(name)],
                full.values[:, :, full.feature_index(name)],
            )

    def test_deep_level2_counts(self, toy_dataset):
        """Toy avail 0 has SWLINs 111..., 222..., 133... -> prefixes 11, 22, 13."""
        spec = FeatureGridSpec.deep()
        tensor = StatusFeatureExtractor(
            toy_dataset, np.array([100.0]), grid=spec
        ).extract()
        assert tensor.values[0, 0, tensor.feature_index("ALL11-CNT_CREATED")] == 1.0
        assert tensor.values[0, 0, tensor.feature_index("ALL13-CNT_CREATED")] == 1.0
        assert tensor.values[0, 0, tensor.feature_index("ALL22-CNT_CREATED")] == 1.0
        assert tensor.values[0, 0, tensor.feature_index("ALL12-CNT_CREATED")] == 0.0

    def test_deep_all_scope_equals_depth1_all(self, toy_dataset):
        t_stars = np.array([100.0])
        full = StatusFeatureExtractor(toy_dataset, t_stars).extract()
        deep = StatusFeatureExtractor(
            toy_dataset, t_stars, grid=FeatureGridSpec.deep()
        ).extract()
        np.testing.assert_allclose(
            deep.values[:, :, deep.feature_index("ALLALL-SUM_CREATED_AMT")],
            full.values[:, :, full.feature_index("ALLALL-SUM_CREATED_AMT")],
        )

    def test_custom_stat_order_respected(self, toy_dataset):
        spec = FeatureGridSpec(stats=("SUM_CREATED_AMT", "CNT_CREATED"))
        tensor = StatusFeatureExtractor(
            toy_dataset, np.array([100.0]), grid=spec
        ).extract()
        names = tensor.feature_names
        assert names.index("G1-SUM_CREATED_AMT") < names.index("G1-CNT_CREATED")

    def test_no_specials(self, toy_dataset):
        spec = FeatureGridSpec(include_specials=False)
        tensor = StatusFeatureExtractor(
            toy_dataset, np.array([50.0]), grid=spec
        ).extract()
        assert "T_STAR" not in tensor.feature_names
