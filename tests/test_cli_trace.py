"""The CLI's global ``--trace`` flag: a final JSON RunReport line."""

import io
import json

import pytest

from repro.cli import main
from repro.core import PipelineConfig
from repro.data import save_dataset
from repro.ml import GbmParams


def run_cli(*argv, stdin_text: str = "") -> tuple[int, list[dict]]:
    out = io.StringIO()
    code = main(list(argv), out=out, stdin=io.StringIO(stdin_text))
    lines = [json.loads(line) for line in out.getvalue().splitlines() if line.strip()]
    return code, lines


@pytest.fixture(scope="module")
def trace_env(request, tmp_path_factory):
    dataset = request.getfixturevalue("small_dataset")
    root = tmp_path_factory.mktemp("cli_trace")
    data_dir = root / "data"
    save_dataset(dataset, data_dir)
    return str(data_dir), str(root / "model.json")


def _span_names(trace: dict) -> set:
    names = set()
    stack = list(trace["spans"])
    while stack:
        span = stack.pop()
        names.add(span["name"])
        stack.extend(span.get("children", []))
    return names


class TestTraceFlag:
    def test_fit_trace_covers_the_pipeline_stages(self, trace_env):
        data_dir, model_path = trace_env
        code, lines = run_cli(
            "--trace", "fit", "--data", data_dir, "--out", model_path,
            "--window", "25",
        )
        assert code == 0
        assert "trace" in lines[-1]
        trace = lines[-1]["trace"]
        assert trace["meta"]["command"] == "fit"
        names = _span_names(trace)
        # the acceptance chain: extract -> select -> fit -> fuse
        assert {"extract", "select", "fit", "fuse"} <= names
        assert trace["counters"]["models.windows_fitted"] == 5

    def test_query_trace_reports_estimator_counters(self, trace_env):
        data_dir, model_path = trace_env
        code, lines = run_cli(
            "--trace", "query", "--model", model_path, "--data", data_dir,
            "--avail", "0", "--t-star", "50",
        )
        assert code == 0
        assert lines[0]["ok"]
        trace = lines[-1]["trace"]
        assert trace["counters"]["estimator.queries"] == 1
        assert "request.domd_query" in _span_names(trace)

    def test_no_trace_by_default(self, trace_env):
        data_dir, model_path = trace_env
        code, lines = run_cli(
            "query", "--model", model_path, "--data", data_dir,
            "--avail", "0", "--t-star", "50",
        )
        assert code == 0
        assert all("trace" not in line for line in lines)

    def test_trace_printed_even_on_error(self, trace_env):
        data_dir, model_path = trace_env
        code, lines = run_cli(
            "--trace", "query", "--model", model_path, "--data", data_dir,
            "--avail", "424242", "--t-star", "50",
        )
        assert code == 1
        assert not lines[0]["ok"]
        assert "trace" in lines[-1]

    def test_serve_trace(self, trace_env):
        data_dir, model_path = trace_env
        request = json.dumps(
            {"type": "domd_query", "avail_ids": [0], "t_star": 60.0, "timings": True}
        )
        code, lines = run_cli(
            "--trace", "serve", "--model", model_path, "--data", data_dir,
            stdin_text=request + "\n",
        )
        assert code == 0
        assert lines[0]["ok"]
        assert "timings" in lines[0]
        assert "request.domd_query" in _span_names(lines[-1]["trace"])
