"""The CLI's ``--trace`` / ``--trace-file`` flags and ``telemetry report``.

``--trace`` prints the final RunReport JSON line on **stderr** so command
stdout stays machine-parseable (pipeable to ``jq``); ``--trace-file``
writes the same JSON to a path instead.
"""

import io
import json

import pytest

from repro.cli import main
from repro.core import PipelineConfig
from repro.data import save_dataset
from repro.ml import GbmParams


def run_cli(*argv, stdin_text: str = "") -> tuple[int, list[dict], list[dict]]:
    out, err = io.StringIO(), io.StringIO()
    code = main(list(argv), out=out, stdin=io.StringIO(stdin_text), err=err)
    out_lines = [json.loads(line) for line in out.getvalue().splitlines() if line.strip()]
    err_lines = [json.loads(line) for line in err.getvalue().splitlines() if line.strip()]
    return code, out_lines, err_lines


@pytest.fixture(scope="module")
def trace_env(request, tmp_path_factory):
    dataset = request.getfixturevalue("small_dataset")
    root = tmp_path_factory.mktemp("cli_trace")
    data_dir = root / "data"
    save_dataset(dataset, data_dir)
    return str(data_dir), str(root / "model.json")


def _span_names(trace: dict) -> set:
    names = set()
    stack = list(trace["spans"])
    while stack:
        span = stack.pop()
        names.add(span["name"])
        stack.extend(span.get("children", []))
    return names


class TestTraceFlag:
    def test_fit_trace_covers_the_pipeline_stages(self, trace_env):
        data_dir, model_path = trace_env
        code, out_lines, err_lines = run_cli(
            "--trace", "fit", "--data", data_dir, "--out", model_path,
            "--window", "25",
        )
        assert code == 0
        assert "trace" in err_lines[-1]
        trace = err_lines[-1]["trace"]
        assert trace["meta"]["command"] == "fit"
        names = _span_names(trace)
        # the acceptance chain: extract -> select -> fit -> fuse
        assert {"extract", "select", "fit", "fuse"} <= names
        assert trace["counters"]["models.windows_fitted"] == 5

    def test_trace_goes_to_stderr_stdout_stays_pipeable(self, trace_env):
        """Regression: every stdout line must be a command payload."""
        data_dir, model_path = trace_env
        code, out_lines, err_lines = run_cli(
            "--trace", "query", "--model", model_path, "--data", data_dir,
            "--avail", "0", "--t-star", "50",
        )
        assert code == 0
        assert all("trace" not in line for line in out_lines)
        assert out_lines[0]["ok"]
        assert len(err_lines) == 1 and "trace" in err_lines[0]

    def test_query_trace_reports_estimator_counters(self, trace_env):
        data_dir, model_path = trace_env
        code, out_lines, err_lines = run_cli(
            "--trace", "query", "--model", model_path, "--data", data_dir,
            "--avail", "0", "--t-star", "50",
        )
        assert code == 0
        assert out_lines[0]["ok"]
        trace = err_lines[-1]["trace"]
        assert trace["counters"]["estimator.queries"] == 1
        assert "request.domd_query" in _span_names(trace)

    def test_no_trace_by_default(self, trace_env):
        data_dir, model_path = trace_env
        code, out_lines, err_lines = run_cli(
            "query", "--model", model_path, "--data", data_dir,
            "--avail", "0", "--t-star", "50",
        )
        assert code == 0
        assert err_lines == []
        assert all("trace" not in line for line in out_lines)

    def test_trace_printed_even_on_error(self, trace_env):
        data_dir, model_path = trace_env
        code, out_lines, err_lines = run_cli(
            "--trace", "query", "--model", model_path, "--data", data_dir,
            "--avail", "424242", "--t-star", "50",
        )
        assert code == 1
        assert not out_lines[0]["ok"]
        assert "trace" in err_lines[-1]

    def test_serve_trace(self, trace_env):
        data_dir, model_path = trace_env
        request = json.dumps(
            {"type": "domd_query", "avail_ids": [0], "t_star": 60.0, "timings": True}
        )
        code, out_lines, err_lines = run_cli(
            "--trace", "serve", "--model", model_path, "--data", data_dir,
            stdin_text=request + "\n",
        )
        assert code == 0
        assert out_lines[0]["ok"]
        assert "timings" in out_lines[0]
        assert "request.domd_query" in _span_names(err_lines[-1]["trace"])

    def test_trace_file_writes_report_to_path(self, trace_env, tmp_path):
        data_dir, model_path = trace_env
        trace_path = tmp_path / "trace.json"
        code, out_lines, err_lines = run_cli(
            "--trace-file", str(trace_path),
            "query", "--model", model_path, "--data", data_dir,
            "--avail", "0", "--t-star", "50",
        )
        assert code == 0
        assert err_lines == []  # --trace-file alone keeps stderr quiet
        trace = json.loads(trace_path.read_text())["trace"]
        assert "request.domd_query" in _span_names(trace)


class TestTelemetryCli:
    def test_events_log_and_report_round_trip(self, trace_env, tmp_path):
        data_dir, model_path = trace_env
        events_path = tmp_path / "events.jsonl"
        code, out_lines, _ = run_cli(
            "--telemetry-events", str(events_path),
            "query", "--model", model_path, "--data", data_dir,
            "--avail", "0", "--t-star", "50",
        )
        assert code == 0 and out_lines[0]["ok"]
        assert events_path.exists()

        out = io.StringIO()
        code = main(["telemetry", "report", "--events", str(events_path)], out=out)
        assert code == 0
        assert out.getvalue().strip()

    def test_report_text_contains_trace_and_histograms(self, trace_env, tmp_path, capsys):
        data_dir, model_path = trace_env
        events_path = tmp_path / "events.jsonl"
        run_cli(
            "--telemetry-events", str(events_path),
            "query", "--model", model_path, "--data", data_dir,
            "--avail", "0", "--t-star", "50",
        )
        out = io.StringIO()
        code = main(
            ["telemetry", "report", "--events", str(events_path)], out=out
        )
        assert code == 0
        text = out.getvalue()
        assert "trace " in text
        assert "request.domd_query" in text
        assert "p50 ms" in text and "p99 ms" in text

    def test_report_json_is_machine_readable(self, trace_env, tmp_path):
        data_dir, model_path = trace_env
        events_path = tmp_path / "events.jsonl"
        run_cli(
            "--telemetry-events", str(events_path),
            "query", "--model", model_path, "--data", data_dir,
            "--avail", "0", "--t-star", "50",
        )
        code, out_lines, _ = run_cli(
            "telemetry", "report", "--events", str(events_path), "--format", "json"
        )
        assert code == 0
        payload = out_lines[0]
        assert payload["counters"]["service.requests"] == 1
        assert any(t["name"] == "request" for t in payload["traces"])
        assert "request.domd_query" in payload["histograms"]


class TestExplainCli:
    def _text(self, *argv) -> tuple[int, str]:
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_point_explain_prints_a_plan(self, trace_env):
        data_dir, _ = trace_env
        code, text = self._text("explain", "--data", data_dir, "--t-star", "50")
        assert code == 0
        assert text.startswith("QueryPlan mode=point")
        assert "group_assignment" in text and "index_lookup" in text
        assert "cost model" in text and "operators cover" in text

    def test_default_design_is_auto(self, trace_env):
        data_dir, _ = trace_env
        code, text = self._text("explain", "--data", data_dir, "--t-star", "50")
        assert code == 0
        assert "planner: auto chose" in text

    def test_sweep_explain_json(self, trace_env):
        data_dir, _ = trace_env
        code, out_lines, _ = run_cli(
            "explain", "--data", data_dir, "--sweep", "0,50,100",
            "--design", "sorted_array", "--format", "json",
        )
        assert code == 0
        plan = out_lines[0]["plan"]
        assert plan["mode"] == "sweep" and plan["n_timestamps"] == 3
        assert plan["design"] == "sorted_array"
        ops = {row["op"] for row in plan["operators"]}
        assert {"group_assignment", "stat_build", "advance", "aggregate"} <= ops

    def test_redacted_output_is_host_stable(self, trace_env):
        data_dir, _ = trace_env
        _, first = self._text(
            "explain", "--data", data_dir, "--t-star", "50",
            "--design", "avl", "--redact-timings",
        )
        _, second = self._text(
            "explain", "--data", data_dir, "--t-star", "50",
            "--design", "avl", "--redact-timings",
        )
        assert "***" in first
        assert first == second

    def test_exports_flamegraph_and_chrome_trace(self, trace_env, tmp_path):
        data_dir, _ = trace_env
        flame = tmp_path / "profile.collapsed"
        chrome = tmp_path / "trace.json"
        code, _ = self._text(
            "explain", "--data", data_dir, "--t-star", "50",
            "--flamegraph", str(flame), "--chrome-trace", str(chrome),
        )
        assert code == 0
        lines = flame.read_text().strip().splitlines()
        assert lines and all(int(line.rsplit(" ", 1)[1]) >= 0 for line in lines)
        assert any("explain.query" in line for line in lines)
        payload = json.loads(chrome.read_text())
        assert payload["traceEvents"]
        assert any(e.get("ph") == "X" for e in payload["traceEvents"])

    def test_unknown_design_is_a_clean_error(self, trace_env):
        data_dir, _ = trace_env
        code, out_lines, _ = run_cli(
            "explain", "--data", data_dir, "--t-star", "50", "--design", "btree"
        )
        assert code == 1
        assert not out_lines[0]["ok"]
        assert out_lines[0]["error"]["code"] == "domain_error"


class TestTelemetryProfileCli:
    def _events_path(self, trace_env, tmp_path) -> str:
        data_dir, model_path = trace_env
        events_path = tmp_path / "events.jsonl"
        code, out_lines, _ = run_cli(
            "--telemetry-events", str(events_path),
            "query", "--model", model_path, "--data", data_dir,
            "--avail", "0", "--t-star", "50",
        )
        assert code == 0 and out_lines[0]["ok"]
        return str(events_path)

    def test_collapsed_profile_to_stdout(self, trace_env, tmp_path):
        events_path = self._events_path(trace_env, tmp_path)
        out = io.StringIO()
        code = main(["telemetry", "profile", "--events", events_path], out=out)
        assert code == 0
        lines = out.getvalue().strip().splitlines()
        assert lines
        for line in lines:
            stack, _, value = line.rpartition(" ")
            assert stack and int(value) >= 0
        assert any("request.domd_query" in line for line in lines)

    def test_chrome_profile_to_file(self, trace_env, tmp_path):
        events_path = self._events_path(trace_env, tmp_path)
        target = tmp_path / "chrome.json"
        code, out_lines, _ = run_cli(
            "telemetry", "profile", "--events", events_path,
            "--format", "chrome", "--out", str(target),
        )
        assert code == 0
        assert out_lines[0] == {"written": str(target), "format": "chrome"}
        payload = json.loads(target.read_text())
        names = {e["name"] for e in payload["traceEvents"] if e.get("ph") == "X"}
        assert "request.domd_query" in names

    def test_profile_rejects_report_formats(self, trace_env, tmp_path):
        events_path = self._events_path(trace_env, tmp_path)
        code, out_lines, _ = run_cli(
            "telemetry", "profile", "--events", events_path, "--format", "json"
        )
        assert code == 1
        assert out_lines[0]["error"]["code"] == "domain_error"

    def test_report_skips_and_counts_corrupt_lines(self, trace_env, tmp_path):
        events_path = self._events_path(trace_env, tmp_path)
        with open(events_path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "truncat\n')
            handle.write("not json at all\n")
        out = io.StringIO()
        code = main(["telemetry", "report", "--events", events_path], out=out)
        assert code == 0
        text = out.getvalue()
        assert "request.domd_query" in text  # intact events still render
        assert "skipped 2 corrupt event-log line(s)" in text

    def test_report_json_carries_dropped_count(self, trace_env, tmp_path):
        events_path = self._events_path(trace_env, tmp_path)
        with open(events_path, "a", encoding="utf-8") as handle:
            handle.write("garbage{{{\n")
        code, out_lines, _ = run_cli(
            "telemetry", "report", "--events", events_path, "--format", "json"
        )
        assert code == 0
        assert out_lines[0]["dropped_lines"] == 1


class TestPlannerDoctorCli:
    def test_doctor_reports_every_backend(self, trace_env):
        data_dir, _ = trace_env
        out = io.StringIO()
        code = main(
            ["planner", "doctor", "--data", data_dir, "--threshold", "1e9"], out=out
        )
        assert code == 0
        text = out.getvalue()
        assert "planner doctor" in text
        for backend in ("naive", "avl", "interval", "sorted_array"):
            assert backend in text
        assert "all backends within" in text

    def test_doctor_json_flags_with_tight_threshold(self, trace_env):
        data_dir, _ = trace_env
        code, out_lines, _ = run_cli(
            "planner", "doctor", "--data", data_dir,
            "--threshold", "1.0000001", "--format", "json",
        )
        assert code == 0
        payload = out_lines[0]
        assert set(payload["measurements"]) == {
            "naive", "avl", "interval", "sorted_array",
        }
        for row in payload["measurements"].values():
            assert {"measured", "modelled", "ratio"} <= row.keys()
        # measured never equals modelled to 1e-7 — everything flags
        assert sorted(payload["flagged"]) == sorted(payload["measurements"])
