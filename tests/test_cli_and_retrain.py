"""Tests for the CLI and the champion/challenger retraining loop."""

import io
import json

import numpy as np
import pytest

from repro.cli import main
from repro.core import PipelineConfig
from repro.core.retrain import RetrainManager
from repro.data import save_dataset
from repro.errors import ConfigurationError
from repro.ml import GbmParams


def run_cli(*argv, stdin_text: str = "") -> tuple[int, list[dict]]:
    out = io.StringIO()
    code = main(list(argv), out=out, stdin=io.StringIO(stdin_text))
    lines = [json.loads(line) for line in out.getvalue().splitlines() if line.strip()]
    return code, lines


@pytest.fixture(scope="module")
def cli_env(request, tmp_path_factory):
    """Dataset directory + fitted model artefact for CLI tests."""
    dataset = request.getfixturevalue("small_dataset")
    root = tmp_path_factory.mktemp("cli")
    data_dir = root / "data"
    save_dataset(dataset, data_dir)
    from repro.core import DomdEstimator
    from repro.data import split_dataset
    from repro.persistence import save_estimator

    splits = split_dataset(dataset)
    config = PipelineConfig(window_pct=25.0, k=8, fusion="average", gbm=GbmParams(n_estimators=15))
    estimator = DomdEstimator(config).fit(dataset, splits.train_ids)
    model_path = root / "model.json"
    save_estimator(estimator, model_path)
    return str(data_dir), str(model_path)


class TestCliGenerate:
    def test_generate_writes_dataset(self, tmp_path):
        code, lines = run_cli(
            "generate", "--out", str(tmp_path / "nmd"), "--seed", "3"
        )
        assert code == 0
        assert lines[0]["n_ships"] == 73
        assert (tmp_path / "nmd" / "rccs.csv").exists()

    def test_generate_with_scaling(self, tmp_path):
        code, lines = run_cli(
            "generate", "--out", str(tmp_path / "nmd"), "--scale", "2"
        )
        assert code == 0
        assert lines[0]["n_rccs"] == 52_959 * 2


class TestCliQueryEvaluateServe:
    def test_query_by_t_star(self, cli_env):
        data_dir, model_path = cli_env
        code, lines = run_cli(
            "query", "--model", model_path, "--data", data_dir,
            "--avail", "0", "--t-star", "50",
        )
        assert code == 0
        assert lines[0]["ok"]
        assert lines[0]["result"][0]["avail_id"] == 0

    def test_query_with_explain(self, cli_env):
        data_dir, model_path = cli_env
        code, lines = run_cli(
            "query", "--model", model_path, "--data", data_dir,
            "--avail", "0", "--t-star", "50", "--explain",
        )
        assert code == 0
        assert len(lines) == 2
        assert lines[1]["result"]["contributions"]

    def test_query_unknown_avail_fails(self, cli_env):
        data_dir, model_path = cli_env
        code, lines = run_cli(
            "query", "--model", model_path, "--data", data_dir,
            "--avail", "424242", "--t-star", "50",
        )
        assert code == 1
        assert not lines[0]["ok"]

    def test_evaluate(self, cli_env):
        data_dir, model_path = cli_env
        code, lines = run_cli("evaluate", "--model", model_path, "--data", data_dir)
        assert code == 0
        assert "average" in lines[0]

    def test_serve_loop(self, cli_env):
        data_dir, model_path = cli_env
        requests = "\n".join(
            [
                json.dumps({"type": "domd_query", "avail_ids": [0], "t_star": 25.0}),
                "not json",
                json.dumps({"type": "teleport"}),
            ]
        )
        code, lines = run_cli(
            "serve", "--model", model_path, "--data", data_dir, stdin_text=requests
        )
        assert code == 0
        assert lines[0]["ok"]
        assert lines[1]["error"]["code"] == "bad_json"
        assert lines[2]["error"]["code"] == "unknown_type"

    def test_missing_dataset_dir(self, cli_env):
        _, model_path = cli_env
        code, lines = run_cli(
            "query", "--model", model_path, "--data", "/nonexistent",
            "--avail", "0", "--t-star", "5",
        )
        assert code == 1


class TestCliFit:
    def test_fit_final_config(self, cli_env, tmp_path):
        data_dir, _ = cli_env
        out_model = tmp_path / "fitted.json"
        code, lines = run_cli(
            "fit", "--data", data_dir, "--out", str(out_model), "--window", "25",
        )
        assert code == 0
        assert lines[-1]["saved"] == str(out_model)
        assert lines[-1]["test_metrics"]["mae_100"] > 0
        assert out_model.exists()


class TestRetrainManager:
    @pytest.fixture()
    def manager(self):
        return RetrainManager(
            config=PipelineConfig(window_pct=50.0, k=6, gbm=GbmParams(n_estimators=10)),
            tolerance=0.05,
        )

    def test_bootstrap_installs_champion(self, manager, small_dataset, small_splits):
        manager.bootstrap(small_dataset, small_splits.train_ids)
        assert manager.champion is not None

    def test_consider_without_bootstrap(self, manager, small_dataset, small_splits):
        with pytest.raises(ConfigurationError, match="bootstrap"):
            manager.consider(
                small_dataset, small_splits.train_ids, small_splits.test_ids
            )

    def test_no_new_data_skips(self, manager, small_dataset, small_splits):
        manager.bootstrap(small_dataset, small_splits.train_ids)
        decision = manager.consider(
            small_dataset, small_splits.train_ids, small_splits.test_ids
        )
        assert not decision.promoted
        assert "new training avails" in decision.reason
        assert manager.history[-1] is decision

    def test_more_data_promotes(self, manager, small_dataset, small_splits):
        manager.bootstrap(small_dataset, small_splits.train_ids)
        bigger = np.sort(
            np.concatenate([small_splits.train_ids, small_splits.validation_ids])
        )
        decision = manager.consider(small_dataset, bigger, small_splits.test_ids)
        assert decision.promoted or "regressed" in decision.reason
        assert np.isfinite(decision.candidate_mae)
        if decision.promoted:
            np.testing.assert_array_equal(manager._champion_train_ids, bigger)

    def test_zero_tolerance_ratchet(self, small_dataset, small_splits):
        manager = RetrainManager(
            config=PipelineConfig(window_pct=50.0, k=6, gbm=GbmParams(n_estimators=10)),
            tolerance=0.0,
        )
        manager.bootstrap(small_dataset, small_splits.train_ids)
        bigger = np.sort(
            np.concatenate([small_splits.train_ids, small_splits.validation_ids])
        )
        decision = manager.consider(small_dataset, bigger, small_splits.test_ids)
        if not decision.promoted:
            assert decision.candidate_mae > decision.champion_mae

    def test_decision_serialisable(self, manager, small_dataset, small_splits):
        manager.bootstrap(small_dataset, small_splits.train_ids)
        decision = manager.consider(
            small_dataset, small_splits.train_ids, small_splits.test_ids
        )
        json.dumps(decision.as_dict())

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            RetrainManager(config=PipelineConfig(), tolerance=-1.0)
        with pytest.raises(ConfigurationError):
            RetrainManager(config=PipelineConfig(), min_new_avails=-1)
