"""Run the doctest examples embedded in module/class docstrings."""

import doctest

import pytest

import repro.core.fusion
import repro.core.timeline
import repro.data.dates
import repro.features.transform
import repro.index.hierarchy
import repro.index.interval_tree
import repro.ml.gbm
import repro.table.column
import repro.table.table

MODULES = [
    repro.table.table,
    repro.table.column,
    repro.index.interval_tree,
    repro.index.hierarchy,
    repro.ml.gbm,
    repro.features.transform,
    repro.data.dates,
    repro.core.fusion,
    repro.core.timeline,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
