"""Snapshot + WAL-tail replay: the streaming recovery contract.

The acceptance bar: recovery from a snapshot plus the WAL tail equals a
full replay, and a crash that tears the WAL's unsynced suffix loses no
*acknowledged* batch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.persistence import load_stream_snapshot, save_stream_snapshot
from repro.stream import StreamIngestor, StreamingRccStore, WalWriter, read_wal
from tests.stream.test_ingest_differential import (
    AVAILS,
    DESIGNS,
    OPS,
    PROBES,
    SHIPS,
    random_event_dicts,
)


def fresh_store():
    return StreamingRccStore(ships=SHIPS, avails=AVAILS.select(AVAILS.column_names))


def assert_same_state(a: StreamIngestor, b: StreamIngestor):
    assert a.watermark == b.watermark
    table_a, table_b = a.store.rcc_table(), b.store.rcc_table()
    for column in table_a.column_names:
        assert list(table_a[column]) == list(table_b[column]), column
    for design in a.adapters:
        for t in PROBES:
            for op in OPS:
                got = getattr(a.adapters[design], op)(t)
                want = getattr(b.adapters[design], op)(t)
                assert np.array_equal(got, want), (design, op, t)


class TestSnapshotRestore:
    def test_snapshot_plus_tail_equals_full_replay(self, tmp_path):
        events = random_event_dicts(21, n=80)
        wal = tmp_path / "wal.jsonl"
        with WalWriter(wal) as writer:
            writer.append_batch(events)

        # replay half, snapshot, restore, replay the rest
        half_seq = len(events) // 2
        partial = StreamIngestor(fresh_store(), designs=DESIGNS, rebuild_threshold=4)
        records = read_wal(wal).records
        partial.apply_batch(records[:half_seq])
        snapshot = tmp_path / "snap.json"
        save_stream_snapshot(partial, snapshot)

        restored = load_stream_snapshot(snapshot, rebuild_threshold=4)
        assert restored.watermark == half_seq
        assert sorted(restored.adapters) == sorted(DESIGNS)
        restored.replay(str(wal))

        full = StreamIngestor(fresh_store(), designs=DESIGNS, rebuild_threshold=4)
        full.replay(str(wal))
        assert_same_state(restored, full)

    def test_snapshot_preserves_orphan_buffer(self, tmp_path):
        # a settle whose create never arrived must survive the snapshot
        events = [
            {"kind": "rcc_settled", "rcc_id": 99, "settle_date": 1050},
            {"kind": "rcc_created", "rcc_id": 0, "avail_id": 1,
             "rcc_type": "G", "swlin": "111-11-001", "create_date": 1010,
             "amount": 5.0},
        ]
        ingestor = StreamIngestor(fresh_store(), designs=("avl",))
        ingestor.apply_events(events)
        assert 99 in ingestor.store.orphans
        snapshot = tmp_path / "snap.json"
        save_stream_snapshot(ingestor, snapshot)
        restored = load_stream_snapshot(snapshot)
        assert 99 in restored.store.orphans
        # the create finally arrives and the buffered settle drains
        restored.apply_events(
            [{"kind": "rcc_created", "rcc_id": 99, "avail_id": 1,
              "rcc_type": "N", "swlin": "123-45-002", "create_date": 1040,
              "amount": 2.0}]
        )
        assert not restored.store.orphans
        rccs = restored.store.rcc_table()
        row = list(rccs["rcc_id"]).index(99)
        assert rccs["status"][row] == "settled"

    def test_bad_snapshot_version_rejected(self, tmp_path):
        ingestor = StreamIngestor(fresh_store(), designs=("avl",))
        snapshot = tmp_path / "snap.json"
        save_stream_snapshot(ingestor, snapshot)
        text = snapshot.read_text(encoding="utf-8")
        snapshot.write_text(
            text.replace('"stream_format_version": 1', '"stream_format_version": 9'),
            encoding="utf-8",
        )
        with pytest.raises(ConfigurationError, match="snapshot format"):
            load_stream_snapshot(snapshot)


class TestCrashRecovery:
    def test_truncated_unsynced_tail_loses_no_acknowledged_batch(self, tmp_path):
        """Kill -9 simulation: torn unsynced suffix, acknowledged data survives."""
        events = random_event_dicts(31, n=60)
        wal = tmp_path / "wal.jsonl"
        writer = WalWriter(wal, fsync_batches=2)
        acknowledged_through = 0
        for lo in range(0, len(events), 10):
            result = writer.append_batch(events[lo : lo + 10])
            if result.synced:
                acknowledged_through = result.last_seq
        # crash WITHOUT close(): tear the final (possibly unsynced) record
        writer._handle.flush()
        raw = wal.read_bytes()
        wal.write_bytes(raw[: len(raw) - 17])

        read = read_wal(wal)
        assert read.dropped_tail >= 1
        # every acknowledged seq is still intact
        assert read.last_seq >= acknowledged_through
        recovered = {r.seq for r in read.records}
        assert set(range(1, acknowledged_through + 1)) <= recovered

        # recovery replays cleanly and matches a replay of the intact prefix
        recovered_ingestor = StreamIngestor(fresh_store(), designs=("avl",))
        recovered_ingestor.replay(str(wal))
        reference = StreamIngestor(fresh_store(), designs=("avl",))
        reference.apply_batch(read.records)
        assert_same_state(recovered_ingestor, reference)

        # a resumed writer truncates the torn tail and continues the seq
        with WalWriter(wal) as resumed:
            assert resumed.next_seq == read.last_seq + 1
            resumed.append_batch([events[0]])
        assert read_wal(wal).dropped_tail == 0

    def test_recovery_is_idempotent_over_snapshot_overlap(self, tmp_path):
        """Replaying a WAL range the snapshot already covers is harmless."""
        events = random_event_dicts(7, n=40)
        wal = tmp_path / "wal.jsonl"
        with WalWriter(wal) as writer:
            writer.append_batch(events)
        ingestor = StreamIngestor(fresh_store(), designs=("avl", "naive"))
        ingestor.replay(str(wal))
        snapshot = tmp_path / "snap.json"
        save_stream_snapshot(ingestor, snapshot)
        restored = load_stream_snapshot(snapshot)
        # replay the ENTIRE wal again: everything at/below the watermark
        # must be skipped, nothing double-applied
        summary = restored.replay(str(wal))
        assert summary["applied"] == 0
        assert_same_state(restored, ingestor)
