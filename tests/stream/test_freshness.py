"""Freshness SLIs: event-to-queryable latency, pending lag, stall alerts.

Two complementary signals, both exercised here with fake clocks:

* the ``freshness.event_to_queryable`` **histogram** — observed on the
  apply side for every record carrying an append timestamp (``at``);
* the ``ingest.freshness_lag_seconds`` **gauge** — age of the oldest
  unapplied WAL record.  A stalled follower applies nothing, so the
  histogram goes silent; the gauge keeps rising and is what drives the
  ``slo:freshness`` burn-rate alert through the sampler.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.runtime import ExecutionContext, TraceContext
from repro.runtime.concurrency import ReadWriteGate
from repro.runtime.telemetry import (
    SloEngine,
    TelemetrySampler,
    TimeSeriesStore,
    default_objectives,
)
from repro.runtime.telemetry.slo import BurnRateRule
from repro.stream import StreamIngestor, StreamingRccStore, WalFollower, WalWriter
from repro.stream.ingest import FRESHNESS_HISTOGRAM


class FakeClock:
    def __init__(self, now: float):
        self.now = float(now)

    def __call__(self) -> float:
        return self.now


def live_events(dataset, n: int = 4) -> list[dict]:
    avails = dataset.avails
    avail_id = int(avails["avail_id"][0])
    act_start = int(avails["act_start"][0])
    next_id = int(np.max(dataset.rccs["rcc_id"])) + 1
    return [
        {
            "kind": "rcc_created",
            "rcc_id": next_id + i,
            "avail_id": avail_id,
            "rcc_type": "G",
            "swlin": "111-11-001",
            "create_date": act_start + 3 + i,
            "amount": 10.0 + i,
        }
        for i in range(n)
    ]


def make_ingestor(dataset, clock=time.time) -> StreamIngestor:
    return StreamIngestor(
        StreamingRccStore.from_dataset(dataset),
        designs=("avl",),
        context=ExecutionContext(seed=0),
        clock=clock,
    )


class TestFreshnessHistogram:
    def test_replay_observes_event_to_queryable_latency(
        self, small_dataset, tmp_path
    ):
        wal = tmp_path / "wal.jsonl"
        with WalWriter(wal, clock=lambda: 100.0) as writer:
            writer.append_batch(live_events(small_dataset, n=4))
        ingestor = make_ingestor(small_dataset, clock=FakeClock(102.5))
        ingestor.replay(wal)
        histogram = ingestor.context.telemetry.histogram(FRESHNESS_HISTOGRAM)
        assert histogram is not None
        assert histogram.count == 4
        assert histogram.total == pytest.approx(4 * 2.5)
        assert histogram.max == pytest.approx(2.5)

    def test_clock_skew_clamps_at_zero(self, small_dataset, tmp_path):
        # appender clock ahead of the applier: never observe negatives
        wal = tmp_path / "wal.jsonl"
        with WalWriter(wal, clock=lambda: 500.0) as writer:
            writer.append_batch(live_events(small_dataset, n=2))
        ingestor = make_ingestor(small_dataset, clock=FakeClock(100.0))
        ingestor.replay(wal)
        histogram = ingestor.context.telemetry.histogram(FRESHNESS_HISTOGRAM)
        assert histogram.count == 2
        assert histogram.total == pytest.approx(0.0)

    def test_synthetic_batches_observe_nothing(self, small_dataset):
        # apply_events fabricates records with no append timestamp
        ingestor = make_ingestor(small_dataset)
        ingestor.apply_events(live_events(small_dataset, n=3))
        assert ingestor.context.telemetry.histogram(FRESHNESS_HISTOGRAM) is None


class TestFreshnessLagGauge:
    def test_caught_up_reports_zero(self, small_dataset):
        ingestor = make_ingestor(small_dataset, clock=FakeClock(100.0))
        assert ingestor.status()["freshness_lag_seconds"] == 0.0
        ingestor.apply_events(live_events(small_dataset, n=2))
        assert ingestor.status()["freshness_lag_seconds"] == 0.0

    def test_pending_anchor_drives_the_lag(self, small_dataset):
        clock = FakeClock(130.0)
        ingestor = make_ingestor(small_dataset, clock=clock)
        ingestor.note_wal_end(10, oldest_pending_at=100.0)
        assert ingestor.status()["freshness_lag_seconds"] == pytest.approx(30.0)
        clock.now = 190.0  # a stalled follower: lag keeps rising
        assert ingestor.status()["freshness_lag_seconds"] == pytest.approx(90.0)

    def test_unknown_pending_falls_back_to_watermark_age(self, small_dataset):
        clock = FakeClock(100.0)
        ingestor = make_ingestor(small_dataset, clock=clock)
        ingestor.apply_events(live_events(small_dataset, n=2))
        ingestor.note_wal_end(9)  # behind, but no append time known
        clock.now = 107.0
        assert ingestor.status()["freshness_lag_seconds"] == pytest.approx(7.0)

    def test_gauges_expose_the_lag(self, small_dataset):
        gauges = make_ingestor(small_dataset).gauges()
        assert gauges["freshness_lag_seconds"] == 0.0


class TestWalCausalLinks:
    def test_apply_link_carries_the_appender_context(
        self, small_dataset, tmp_path
    ):
        # appender and applier share one hub here; the stitch goes
        # through the serialised traceparent either way
        wal = tmp_path / "wal.jsonl"
        context = ExecutionContext(seed=0)
        hub = context.telemetry
        with hub.trace("ingest.append", wal=str(wal)) as append_trace:
            with WalWriter(wal, telemetry=hub) as writer:
                writer.append_batch(live_events(small_dataset, n=3))
        appends = [
            e
            for e in hub.events()
            if e["kind"] == "link" and e["relation"] == "wal_append"
        ]
        assert len(appends) == 1
        assert appends[0]["trace_id"] == append_trace
        assert (appends[0]["first_seq"], appends[0]["last_seq"]) == (1, 3)

        ingestor = StreamIngestor(
            StreamingRccStore.from_dataset(small_dataset),
            designs=("avl",),
            context=context,
        )
        ingestor.replay(wal)
        applies = [
            e
            for e in hub.events()
            if e["kind"] == "link" and e["relation"] == "wal_apply"
        ]
        assert len(applies) == 1
        parent = TraceContext.from_traceparent(applies[0]["traceparent"])
        assert parent is not None and parent.trace_id == append_trace
        assert applies[0]["watermark"] == 3


class TestStalledFollower:
    def test_stall_fires_the_freshness_slo_and_recovery_resolves(
        self, small_dataset, tmp_path
    ):
        clock = FakeClock(100.0)
        wal = tmp_path / "wal.jsonl"
        with WalWriter(wal, clock=clock) as writer:
            writer.append_batch(live_events(small_dataset, n=4))

        context = ExecutionContext(seed=0)
        hub = context.telemetry
        ingestor = StreamIngestor(
            StreamingRccStore.from_dataset(small_dataset),
            designs=("avl",),
            context=context,
            clock=clock,
        )
        gate = ReadWriteGate()
        follower = WalFollower(ingestor, wal, gate=gate)

        store = TimeSeriesStore()
        objectives = default_objectives(
            include_ingest=True,
            freshness_lag_s=5.0,
            rules=(BurnRateRule(20.0, 40.0, 1.0),),
        )
        sampler = TelemetrySampler(
            context.metrics, store=store, slo=SloEngine(objectives, store),
            clock=clock,
        )
        sampler.add_source("ingest", ingestor.gauges)

        poller = threading.Thread(target=follower.poll_once)
        with gate.read():  # fault injection: the write gate never opens
            poller.start()
            deadline = time.time() + 5.0
            while (
                ingestor.status()["wal_end_seq"] < 4 and time.time() < deadline
            ):
                time.sleep(0.01)
            # the stalled follower noted the pending tail *before*
            # blocking on the gate: nothing applied, lag visible
            assert ingestor.watermark == 0
            assert ingestor.status()["wal_end_seq"] == 4
            assert ingestor.status()["freshness_lag_seconds"] == pytest.approx(
                0.0
            )  # clock still at append time
            for now in (200.0, 210.0, 220.0):
                clock.now = now
                sampler.tick(now)
            assert "slo:freshness" in hub.alerts.firing()
            # the histogram stayed silent through the stall — only the
            # pending-side gauge could have raised this alert
            assert hub.histogram(FRESHNESS_HISTOGRAM) is None
        poller.join(timeout=5.0)
        assert not poller.is_alive()
        assert ingestor.watermark == 4

        for now in (290.0, 300.0):
            clock.now = now
            sampler.tick(now)
        assert "slo:freshness" not in hub.alerts.firing()
        states = [
            (e["name"], e["state"])
            for e in hub.events()
            if e["kind"] == "alert" and e["name"] == "slo:freshness"
        ]
        assert ("slo:freshness", "firing") in states
        assert ("slo:freshness", "resolved") in states
