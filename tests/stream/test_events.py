"""Event model validation and dataset↔stream round trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generator import SyntheticNmdConfig, generate_dataset
from repro.errors import SchemaError
from repro.stream import (
    AmountRevised,
    AvailExtended,
    RccCreated,
    RccSettled,
    dataset_from_stream,
    dataset_to_events,
    event_from_dict,
    event_to_dict,
    read_event_stream,
    write_event_stream,
)


@pytest.fixture(scope="module")
def tiny_dataset():
    return generate_dataset(
        SyntheticNmdConfig(
            n_ships=4, n_closed_avails=8, n_ongoing_avails=2,
            target_n_rccs=400, seed=11,
        )
    )


class TestEventModel:
    def test_round_trip_each_kind(self):
        events = [
            RccCreated(rcc_id=1, avail_id=2, rcc_type="G",
                       swlin="111-11-001", create_date=100, amount=5.0),
            RccSettled(rcc_id=1, settle_date=150),
            RccSettled(rcc_id=1, settle_date=150, amount=9.5),
            AmountRevised(rcc_id=1, amount=7.25),
            AvailExtended(avail_id=2, new_plan_end=900),
        ]
        for event in events:
            assert event_from_dict(event_to_dict(event)) == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError, match="unknown event kind"):
            event_from_dict({"kind": "rcc_teleported", "rcc_id": 1})

    def test_extra_field_rejected(self):
        with pytest.raises(SchemaError, match="unknown fields"):
            event_from_dict(
                {"kind": "amount_revised", "rcc_id": 1, "amount": 2.0, "oops": 3}
            )

    def test_missing_required_field_rejected(self):
        with pytest.raises(SchemaError, match="malformed"):
            event_from_dict({"kind": "rcc_settled", "settle_date": 10})

    def test_bad_types_rejected(self):
        with pytest.raises(SchemaError, match="must be an integer"):
            event_from_dict(
                {"kind": "rcc_settled", "rcc_id": "7", "settle_date": 10}
            )
        with pytest.raises(SchemaError, match="must be an integer"):
            event_from_dict(
                {"kind": "rcc_settled", "rcc_id": True, "settle_date": 10}
            )
        with pytest.raises(SchemaError, match="non-empty string"):
            event_from_dict(
                {
                    "kind": "rcc_created", "rcc_id": 1, "avail_id": 2,
                    "rcc_type": "", "swlin": "111-11-001", "create_date": 5,
                }
            )

    def test_settled_amount_optional(self):
        event = event_from_dict({"kind": "rcc_settled", "rcc_id": 3, "settle_date": 9})
        assert event.amount is None


class TestStreamRoundTrip:
    def test_events_are_time_ordered(self, tiny_dataset):
        _, events = dataset_to_events(tiny_dataset)
        dates = [
            e.create_date if isinstance(e, RccCreated) else e.settle_date
            for e in events
        ]
        assert dates == sorted(dates)

    def test_dataset_tables_reconstructed_exactly(self, tiny_dataset, tmp_path):
        path = tmp_path / "stream.jsonl"
        n_events = write_event_stream(tiny_dataset, path)
        assert n_events >= tiny_dataset.rccs.n_rows
        header, events = read_event_stream(path)
        assert header is not None and len(events) == n_events
        rebuilt = dataset_from_stream(header, events)
        for table_name in ("ships", "avails", "rccs"):
            original = getattr(tiny_dataset, table_name)
            copy = getattr(rebuilt, table_name)
            assert original.column_names == copy.column_names
            for column in original.column_names:
                a, b = original[column], copy[column]
                assert a.dtype == b.dtype, (table_name, column)
                if a.dtype.kind == "f":
                    # ongoing avails carry NaN delay; nan == nan here
                    assert np.array_equal(a, b, equal_nan=True), (table_name, column)
                else:
                    assert list(a) == list(b), (table_name, column)
        assert rebuilt.seed == tiny_dataset.seed
        assert rebuilt.scaling_factor == tiny_dataset.scaling_factor

    def test_bad_version_rejected(self, tiny_dataset, tmp_path):
        path = tmp_path / "stream.jsonl"
        write_event_stream(tiny_dataset, path)
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[0] = lines[0].replace('"version": 1', '"version": 99')
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(SchemaError, match="stream format"):
            read_event_stream(path)

    def test_headerless_stream_parses(self, tmp_path):
        path = tmp_path / "bare.jsonl"
        import json

        payloads = [
            {"kind": "rcc_created", "rcc_id": 1, "avail_id": 2, "rcc_type": "G",
             "swlin": "111-11-001", "create_date": 10, "amount": 1.0},
            {"kind": "rcc_settled", "rcc_id": 1, "settle_date": 12},
        ]
        path.write_text(
            "\n".join(json.dumps(p) for p in payloads) + "\n", encoding="utf-8"
        )
        header, events = read_event_stream(path)
        assert header is None
        assert [type(e).__name__ for e in events] == ["RccCreated", "RccSettled"]
