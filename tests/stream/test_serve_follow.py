"""Live serving: watermark envelopes, ingestion gauges, WAL following.

Ties the streaming subsystem into the serving stack: ok responses carry
the watermark they answered at, ``metrics``/``health`` expose
``repro_ingest_*`` gauges, and a :class:`WalFollower` tails a WAL into a
running service under the read/write gate, rebinding the estimator so
later queries see the refreshed dataset.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import DomdEstimator, DomdService, paper_final_config
from repro.runtime import ExecutionContext
from repro.runtime.concurrency import ReadWriteGate
from repro.stream import (
    StreamIngestor,
    StreamingRccStore,
    WalFollower,
    WalWriter,
)


@pytest.fixture(scope="module")
def fitted(request):
    dataset = request.getfixturevalue("small_dataset")
    splits = request.getfixturevalue("small_splits")
    context = ExecutionContext(seed=0)
    estimator = DomdEstimator(
        paper_final_config(window_pct=25), context=context
    ).fit(dataset, splits.train_ids)
    return dataset, splits, estimator


def live_events(dataset, n: int = 6) -> list[dict]:
    """Fresh rcc_created events against the dataset's first avail."""
    avails = dataset.avails
    avail_id = int(avails["avail_id"][0])
    act_start = int(avails["act_start"][0])
    next_id = int(np.max(dataset.rccs["rcc_id"])) + 1
    return [
        {
            "kind": "rcc_created",
            "rcc_id": next_id + i,
            "avail_id": avail_id,
            "rcc_type": "G",
            "swlin": "111-11-001",
            "create_date": act_start + 3 + i,
            "amount": 10.0 + i,
        }
        for i in range(n)
    ]


def make_service(dataset, splits, estimator):
    context = ExecutionContext(seed=0)
    served = estimator.serve(dataset)
    served.context = context
    service = DomdService(served, context=context)
    ingestor = StreamIngestor(
        StreamingRccStore.from_dataset(dataset), designs=("avl",)
    )
    service.ingest = ingestor
    return service, ingestor, context


class TestWatermarkEnvelope:
    def test_ok_responses_carry_current_watermark(self, fitted):
        dataset, splits, estimator = fitted
        service, ingestor, _ = make_service(dataset, splits, estimator)
        query = {
            "type": "domd_query",
            "avail_ids": [int(splits.test_ids[0])],
            "t_star": 50.0,
        }
        response = service.handle(query)
        assert response["ok"] and response["watermark"] == 0
        ingestor.apply_events(live_events(dataset, n=4))
        response = service.handle(query)
        assert response["ok"] and response["watermark"] == 4

    def test_error_envelope_has_no_watermark(self, fitted):
        dataset, splits, estimator = fitted
        service, _, _ = make_service(dataset, splits, estimator)
        response = service.handle({"type": "no_such_op"})
        assert not response["ok"]
        assert "watermark" not in response


class TestIngestExpositions:
    def test_prometheus_gauges(self, fitted):
        dataset, splits, estimator = fitted
        service, ingestor, _ = make_service(dataset, splits, estimator)
        ingestor.apply_events(live_events(dataset, n=3))
        ingestor.note_wal_end(5)
        text = service.handle({"type": "metrics", "format": "prometheus"})[
            "result"
        ]["exposition"]
        assert "repro_ingest_watermark_seq 3" in text
        assert "repro_ingest_wal_end_seq 5" in text
        assert "repro_ingest_lag_events 2" in text
        assert 'repro_ingest_rebuilds{design="avl"} 0' in text

    def test_json_snapshot_and_health_blocks(self, fitted):
        dataset, splits, estimator = fitted
        service, ingestor, _ = make_service(dataset, splits, estimator)
        ingestor.apply_events(live_events(dataset, n=2))
        snapshot = service.handle({"type": "metrics", "format": "json"})["result"]
        assert snapshot["ingest"]["watermark_seq"] == 2
        assert snapshot["ingest"]["applied_events"] == 2
        health = service.handle({"type": "health"})["result"]
        assert health["ingest"]["watermark_seq"] == 2
        assert health["ingest"]["designs"] == ["avl"]

    def test_expositions_without_ingest_unchanged(self, fitted):
        dataset, splits, estimator = fitted
        context = ExecutionContext(seed=0)
        service = DomdService(estimator.serve(dataset), context=context)
        text = service.handle({"type": "metrics", "format": "prometheus"})[
            "result"
        ]["exposition"]
        assert "repro_ingest_" not in text
        assert "ingest" not in service.handle({"type": "health"})["result"]


class TestWalFollowing:
    def test_poll_once_applies_and_rebinds_under_gate(self, fitted, tmp_path):
        dataset, splits, estimator = fitted
        service, ingestor, _ = make_service(dataset, splits, estimator)
        gate = ReadWriteGate()
        wal = tmp_path / "wal.jsonl"
        events = live_events(dataset, n=5)
        with WalWriter(wal) as writer:
            writer.append_batch(events)

        follower = WalFollower(
            ingestor,
            wal,
            gate=gate,
            on_batch=lambda ing: service.rebind(ing.dataset()),
        )
        applied = follower.poll_once()
        assert applied == 5
        assert ingestor.watermark == 5
        assert gate.writes == 1
        # the rebound estimator serves the grown dataset
        n_before = dataset.rccs.n_rows
        assert service._estimator._dataset.rccs.n_rows == n_before + 5
        with gate.read():
            response = service.handle(
                {
                    "type": "domd_query",
                    "avail_ids": [int(splits.test_ids[0])],
                    "t_star": 50.0,
                }
            )
        assert response["ok"] and response["watermark"] == 5
        # nothing new: the next poll is a no-op and takes no write lock
        assert follower.poll_once() == 0
        assert gate.writes == 1

    def test_follower_thread_tails_a_growing_wal(self, fitted, tmp_path):
        dataset, splits, estimator = fitted
        service, ingestor, _ = make_service(dataset, splits, estimator)
        gate = ReadWriteGate()
        wal = tmp_path / "wal.jsonl"
        events = live_events(dataset, n=6)
        writer = WalWriter(wal)
        writer.append_batch(events[:2])
        writer.sync()

        follower = WalFollower(
            ingestor, wal, gate=gate, poll_interval=0.02
        )
        follower.start()
        try:
            deadline = time.time() + 5.0
            while ingestor.watermark < 2 and time.time() < deadline:
                time.sleep(0.01)
            assert ingestor.watermark == 2
            writer.append_batch(events[2:])
            writer.sync()
            while ingestor.watermark < 6 and time.time() < deadline:
                time.sleep(0.01)
            assert ingestor.watermark == 6
        finally:
            writer.close()
            follower.stop()
        assert follower.errors == 0
        assert not follower.is_alive()

    def test_follower_survives_apply_errors(self, fitted, tmp_path):
        dataset, splits, estimator = fitted
        _, ingestor, _ = make_service(dataset, splits, estimator)
        wal = tmp_path / "wal.jsonl"
        create = live_events(dataset, n=1)[0]
        bad_settle = {
            "kind": "rcc_settled",
            "rcc_id": create["rcc_id"],
            "settle_date": create["create_date"] - 30,
        }
        with WalWriter(wal) as writer:
            writer.append_batch([create, bad_settle])
        follower = WalFollower(ingestor, wal, poll_interval=0.01)
        follower.start()
        try:
            deadline = time.time() + 5.0
            while follower.errors == 0 and time.time() < deadline:
                time.sleep(0.01)
        finally:
            follower.stop()
        # the loop recorded the poison pill but kept running; the valid
        # create ahead of it was applied
        assert follower.errors >= 1
        assert "StreamStateError" in follower.last_error
        assert ingestor.watermark == 1
