"""WAL durability: crc, sequencing, torn tails, fsync batching."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError, WalCorruptionError
from repro.stream import RccSettled, WalWriter, read_wal
from repro.stream.wal import _parse_record, event_crc


def _events(n, start=0):
    return [
        {"kind": "rcc_settled", "rcc_id": start + i, "settle_date": 100 + i}
        for i in range(n)
    ]


class TestAppendAndRead:
    def test_round_trip(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        with WalWriter(wal) as writer:
            result = writer.append_batch(_events(5))
        assert (result.first_seq, result.last_seq, result.synced) == (1, 5, True)
        read = read_wal(wal)
        assert [r.seq for r in read.records] == [1, 2, 3, 4, 5]
        assert read.dropped_tail == 0
        assert read.records[2].event["rcc_id"] == 2

    def test_event_objects_accepted(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        with WalWriter(wal) as writer:
            writer.append_batch([RccSettled(rcc_id=9, settle_date=77)])
        record = read_wal(wal).records[0]
        assert record.event == {"kind": "rcc_settled", "rcc_id": 9,
                                "settle_date": 77, "amount": None}

    def test_after_seq_filter(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        with WalWriter(wal) as writer:
            writer.append_batch(_events(10))
        read = read_wal(wal, after_seq=7)
        assert [r.seq for r in read.records] == [8, 9, 10]
        assert read.last_seq == 10

    def test_missing_file_reads_empty(self, tmp_path):
        read = read_wal(tmp_path / "nope.jsonl")
        assert read.records == [] and read.last_seq == 0

    def test_writer_resumes_sequence(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        with WalWriter(wal) as writer:
            writer.append_batch(_events(3))
        with WalWriter(wal) as writer:
            assert writer.next_seq == 4
            result = writer.append_batch(_events(2, start=3))
        assert (result.first_seq, result.last_seq) == (4, 5)
        assert [r.seq for r in read_wal(wal).records] == [1, 2, 3, 4, 5]

    def test_empty_batch_is_noop(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        with WalWriter(wal) as writer:
            result = writer.append_batch([])
        assert result.last_seq < result.first_seq and not result.synced
        assert read_wal(wal).records == []


class TestCorruption:
    def test_crc_mismatch_detected(self):
        event = {"kind": "rcc_settled", "rcc_id": 1, "settle_date": 5}
        line = json.dumps({"seq": 1, "crc": event_crc(event) ^ 0xFF, "event": event})
        with pytest.raises(WalCorruptionError, match="CRC"):
            _parse_record(line, expected_seq=1)

    def test_sequence_break_detected(self):
        event = {"kind": "rcc_settled", "rcc_id": 1, "settle_date": 5}
        line = json.dumps({"seq": 4, "crc": event_crc(event), "event": event})
        with pytest.raises(WalCorruptionError, match="sequence break"):
            _parse_record(line, expected_seq=2)

    def test_bit_flip_mid_log_drops_tail(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        with WalWriter(wal) as writer:
            writer.append_batch(_events(6))
        lines = wal.read_text(encoding="utf-8").splitlines()
        lines[3] = lines[3].replace("settle_date", "settle_dats")
        wal.write_text("\n".join(lines) + "\n", encoding="utf-8")
        read = read_wal(wal)
        assert [r.seq for r in read.records] == [1, 2, 3]
        assert read.dropped_tail == 3  # the corrupt record and everything after

    def test_torn_final_record_dropped(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        with WalWriter(wal) as writer:
            writer.append_batch(_events(4))
        raw = wal.read_bytes()
        wal.write_bytes(raw[:-10])  # crash mid-write of record 4
        read = read_wal(wal)
        assert [r.seq for r in read.records] == [1, 2, 3]
        assert read.dropped_tail == 1
        assert read.good_bytes < len(raw)

    def test_writer_truncates_torn_tail_before_appending(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        with WalWriter(wal) as writer:
            writer.append_batch(_events(4))
        wal.write_bytes(wal.read_bytes()[:-10])
        with WalWriter(wal) as writer:
            assert writer.next_seq == 4  # record 4 was torn away
            writer.append_batch(_events(1, start=100))
        read = read_wal(wal)
        assert [r.seq for r in read.records] == [1, 2, 3, 4]
        assert read.dropped_tail == 0
        assert read.records[-1].event["rcc_id"] == 100


class TestFsyncBatching:
    def test_every_batch_acknowledged_by_default(self, tmp_path):
        with WalWriter(tmp_path / "wal.jsonl") as writer:
            assert writer.append_batch(_events(2)).synced
            assert writer.append_batch(_events(2, start=2)).synced

    def test_batched_fsync_acknowledges_every_nth(self, tmp_path):
        with WalWriter(tmp_path / "wal.jsonl", fsync_batches=3) as writer:
            assert not writer.append_batch(_events(1)).synced
            assert not writer.append_batch(_events(1, start=1)).synced
            assert writer.append_batch(_events(1, start=2)).synced
            assert not writer.append_batch(_events(1, start=3)).synced

    def test_bad_fsync_batches_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="fsync_batches"):
            WalWriter(tmp_path / "wal.jsonl", fsync_batches=0)
