"""Property-based differential test: replay == batch rebuild, everywhere.

Random RCC event streams — including zero-duration RCCs, settle-before-
create arrivals, duplicates and avail extensions — are replayed through
the full WAL → store → MutableIndexAdapter path.  At *every* watermark,
each live-maintained backend must answer the four retrieval sets
byte-identically to an index built from scratch over the store's
current table.  On failure the stream is ddmin-shrunk (reusing the
fuzzer harness of ``tests/index/test_differential_fuzz.py``) so the bug
arrives as a minimal event-list reproducer.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.index.status_query import StatusQueryEngine
from repro.stream import StreamIngestor, StreamingRccStore, UNSETTLED_T
from repro.stream.mutable import _DESIGNS
from repro.table.table import ColumnTable
from tests.index.test_differential_fuzz import shrink

DESIGNS = tuple(_DESIGNS)
OPS = ("active_ids", "settled_ids", "created_ids", "pending_ids")
PROBES = (-5.0, 0.0, 20.0, 45.0, 70.0, 100.0, 140.0, UNSETTLED_T)

RCC_TYPES = ("G", "N", "NG")
SWLINS = ("111-11-001", "123-45-002", "222-22-003")

#: One avail frame: plan day 1000..1100, so logical t = day - 1000.
AVAILS = ColumnTable(
    {
        "avail_id": np.array([1, 2], dtype=np.int64),
        "ship_id": np.array([1, 1], dtype=np.int64),
        "plan_start": np.array([1000, 1000], dtype=np.int64),
        "plan_end": np.array([1100, 1100], dtype=np.int64),
        "act_start": np.array([1000, 1000], dtype=np.int64),
        "act_end": np.array([1100, -1], dtype=np.int64),
        "planned_duration": np.array([100, 100], dtype=np.int64),
        "status": np.array(["closed", "ongoing"], dtype=object),
        "delay": np.array([0.0, np.nan]),
    }
)
SHIPS = ColumnTable(
    {
        "ship_id": np.array([1], dtype=np.int64),
        "ship_class": np.array(["DDG"], dtype=object),
    }
)


def random_event_dicts(seed: int, n: int = 90) -> list[dict]:
    """A seeded raw-event stream with adversarial orderings."""
    rng = np.random.default_rng(seed)
    events: list[dict] = []
    next_id = 0
    created: list[int] = []
    settled: set[int] = set()
    for _ in range(n):
        shape = int(rng.integers(0, 12))
        if shape <= 4 or not created:  # create
            day = int(rng.integers(1000, 1120))
            create = {
                "kind": "rcc_created",
                "rcc_id": next_id,
                "avail_id": int(rng.choice([1, 2])),
                "rcc_type": str(rng.choice(RCC_TYPES)),
                "swlin": str(rng.choice(SWLINS)),
                "create_date": day,
                "amount": float(np.round(rng.uniform(10, 500), 2)),
            }
            if shape == 0:
                # settle-before-create: the settle event goes FIRST and
                # must be buffered until the create lands
                events.append(
                    {"kind": "rcc_settled", "rcc_id": next_id,
                     "settle_date": day + int(rng.integers(0, 40))}
                )
                settled.add(next_id)
            events.append(create)
            created.append((next_id, day))
            next_id += 1
        elif shape <= 7:  # settle an open RCC (zero-duration allowed)
            candidates = [(i, d) for i, d in created if i not in settled]
            if not candidates:
                continue
            rcc_id, day = candidates[int(rng.integers(0, len(candidates)))]
            events.append(
                {"kind": "rcc_settled", "rcc_id": rcc_id,
                 "settle_date": day + int(rng.integers(0, 50))}
            )
            settled.add(rcc_id)
        elif shape == 8:  # duplicate create (idempotent skip)
            rcc_id, day = created[int(rng.integers(0, len(created)))]
            events.append(
                {"kind": "rcc_created", "rcc_id": rcc_id, "avail_id": 1,
                 "rcc_type": "G", "swlin": SWLINS[0], "create_date": day,
                 "amount": 1.0}
            )
        elif shape <= 10:  # amount revision (no index effect)
            rcc_id, _ = created[int(rng.integers(0, len(created)))]
            events.append(
                {"kind": "amount_revised", "rcc_id": rcc_id,
                 "amount": float(np.round(rng.uniform(1, 900), 2))}
            )
        else:  # avail extension: rescales logical times of that avail
            events.append(
                {"kind": "avail_extended", "avail_id": int(rng.choice([1, 2])),
                 "new_plan_end": int(rng.integers(1080, 1200))}
            )
    return events


def replay_disagreement(events: list[dict], check_every: int = 7) -> str | None:
    """None when live == batch at every checked watermark, else a label."""
    store = StreamingRccStore(ships=SHIPS, avails=AVAILS.select(AVAILS.column_names))
    ingestor = StreamIngestor(store, designs=DESIGNS, rebuild_threshold=4)
    for position, event in enumerate(events):
        try:
            ingestor.apply_events([event])
        except Exception as exc:  # noqa: BLE001 — a crash is a failure too
            return f"apply crashed at event {position}: {type(exc).__name__}: {exc}"
        at_watermark = position % check_every == check_every - 1
        if not at_watermark and position != len(events) - 1:
            continue
        table = store.engine_table()
        for design in DESIGNS:
            batch = StatusQueryEngine(table, design=design).index
            live = ingestor.adapters[design]
            for t in PROBES:
                for op in OPS:
                    got = getattr(live, op)(t)
                    want = getattr(batch, op)(t)
                    if not np.array_equal(got, want):
                        return (
                            f"{design}.{op}(t={t}) diverges from batch build "
                            f"at watermark {ingestor.watermark}"
                        )
    return None


def assert_replay_agreement(events: list[dict]) -> None:
    label = replay_disagreement(events)
    if label is None:
        return
    minimal = shrink(events, predicate=replay_disagreement)
    pytest.fail(
        f"replay disagreement: {label}\n"
        f"minimal reproducer ({len(minimal)} of {len(events)} events):\n"
        f"{json.dumps(minimal, indent=2)}"
    )


class TestReplayDifferential:
    @pytest.mark.parametrize("seed", [0, 1, 2, 5, 13, 2025])
    def test_random_streams_agree_at_every_watermark(self, seed):
        assert_replay_agreement(random_event_dicts(seed))

    def test_zero_duration_and_settle_before_create(self):
        events = [
            # settle arrives before its create: buffered, then applied
            {"kind": "rcc_settled", "rcc_id": 0, "settle_date": 1010},
            {"kind": "rcc_created", "rcc_id": 0, "avail_id": 1,
             "rcc_type": "G", "swlin": SWLINS[0], "create_date": 1010,
             "amount": 5.0},  # zero duration: settles its creation day
            {"kind": "rcc_created", "rcc_id": 1, "avail_id": 1,
             "rcc_type": "N", "swlin": SWLINS[1], "create_date": 1020,
             "amount": 7.0},
            {"kind": "rcc_settled", "rcc_id": 1, "settle_date": 1020},
        ]
        assert_replay_agreement(events)
        # semantics: both stand settled at their (identical) instant
        store = StreamingRccStore(
            ships=SHIPS, avails=AVAILS.select(AVAILS.column_names)
        )
        ingestor = StreamIngestor(store, designs=("avl",))
        ingestor.apply_events(events)
        assert store.counts["deferred"] == 1
        assert len(store.orphans) == 0
        rccs = store.rcc_table()
        assert list(rccs["status"]) == ["settled", "settled"]

    def test_avail_extension_rescales_whole_avail(self):
        events = [
            {"kind": "rcc_created", "rcc_id": 0, "avail_id": 1,
             "rcc_type": "G", "swlin": SWLINS[0], "create_date": 1050,
             "amount": 5.0},
            {"kind": "rcc_settled", "rcc_id": 0, "settle_date": 1080},
            # plan 100 -> 160 days: logical times shrink by 100/160
            {"kind": "avail_extended", "avail_id": 1, "new_plan_end": 1160},
        ]
        assert_replay_agreement(events)
        store = StreamingRccStore(
            ships=SHIPS, avails=AVAILS.select(AVAILS.column_names)
        )
        ingestor = StreamIngestor(store, designs=("sorted_array",))
        ingestor.apply_events(events)
        starts, ends, _ = store.logical_triples()
        assert starts[0] == pytest.approx(50 / 160 * 100)
        assert ends[0] == pytest.approx(80 / 160 * 100)

    def test_duplicate_events_are_idempotent(self):
        base = {"kind": "rcc_created", "rcc_id": 0, "avail_id": 1,
                "rcc_type": "G", "swlin": SWLINS[0], "create_date": 1010,
                "amount": 5.0}
        settle = {"kind": "rcc_settled", "rcc_id": 0, "settle_date": 1030}
        assert_replay_agreement([base, base, settle, settle, base])

    def test_shrinker_integration_on_planted_failure(self):
        """The ddmin predicate plumbing minimizes a planted failure."""
        events = random_event_dicts(3, n=30)
        poison = events[11]

        def planted(candidate):
            return "planted" if poison in candidate else None

        minimal = shrink(events, predicate=planted)
        assert minimal == [poison]


class TestLateArrivalRoundTrip:
    """dataset -> out-of-order stream -> replay == original dataset."""

    @pytest.fixture(scope="class")
    def dataset(self):
        from repro.data import SyntheticNmdConfig, generate_dataset

        return generate_dataset(
            SyntheticNmdConfig(
                n_ships=4,
                n_closed_avails=12,
                n_ongoing_avails=1,
                target_n_rccs=400,
                seed=17,
            )
        )

    def test_perturbed_stream_reconstructs_identical_dataset(self, dataset):
        from repro.stream import dataset_from_stream, dataset_to_events
        from repro.stream.events import perturb_event_order

        header, events = dataset_to_events(dataset)
        shuffled = perturb_event_order(
            events, seed=99, late_fraction=0.3, max_displacement=400
        )
        # the perturbation genuinely reorders ...
        assert shuffled != events
        assert sorted(map(repr, shuffled)) == sorted(map(repr, events))
        rebuilt = dataset_from_stream(header, shuffled)
        # ... yet the replay converges to the exact same snapshot
        assert rebuilt.fingerprint() == dataset.fingerprint()

    def test_perturbed_replay_agrees_with_batch(self, dataset):
        """Live index maintenance survives out-of-order delivery."""
        from repro.index.status_query import StatusQueryEngine
        from repro.stream import (
            StreamingRccStore,
            dataset_to_events,
            event_to_dict,
        )
        from repro.stream.events import perturb_event_order

        header, events = dataset_to_events(dataset)
        shuffled = perturb_event_order(
            events, seed=7, late_fraction=0.25, max_displacement=200
        )
        store = StreamingRccStore.from_header(header)
        ingestor = StreamIngestor(store, designs=DESIGNS)
        event_dicts = [event_to_dict(event) for event in shuffled]

        def late_disagreement(candidate):
            probe_store = StreamingRccStore.from_header(header)
            probe = StreamIngestor(probe_store, designs=DESIGNS)
            try:
                probe.apply_events(candidate)
            except Exception as exc:  # noqa: BLE001
                return f"apply crashed: {type(exc).__name__}: {exc}"
            table = probe_store.engine_table()
            for design in DESIGNS:
                batch = StatusQueryEngine(table, design=design).index
                live = probe.adapters[design]
                for t in PROBES:
                    for op in OPS:
                        if not np.array_equal(
                            getattr(live, op)(t), getattr(batch, op)(t)
                        ):
                            return f"{design}.{op}(t={t}) diverges"
            return None

        label = late_disagreement(event_dicts)
        if label is not None:
            minimal = shrink(event_dicts, predicate=late_disagreement)
            pytest.fail(
                f"late-arrival replay disagreement: {label}\n"
                f"minimal reproducer ({len(minimal)} of {len(event_dicts)} "
                f"events):\n{json.dumps(minimal, indent=2)}"
            )
        # the orphan path was actually exercised
        ingestor.apply_events(event_dicts)
        assert store.counts["deferred"] > 0
        assert not store.orphans
