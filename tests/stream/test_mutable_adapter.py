"""MutableIndexAdapter: live maintenance equals build-from-scratch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, StreamStateError
from repro.index.status_query import StatusQueryEngine
from repro.stream import MutableIndexAdapter, UNSETTLED_T
from repro.stream.mutable import _DESIGNS, default_rebuild_threshold

DESIGNS = tuple(_DESIGNS)
OPS = ("active_ids", "settled_ids", "created_ids", "pending_ids")
PROBES = (-5.0, 0.0, 10.0, 33.3, 50.0, 75.0, 100.0, 130.0, UNSETTLED_T)


def fresh_reference(adapter):
    """An immutable index built from the adapter's current triples."""
    starts, ends, ids = adapter.triples()
    return _DESIGNS[adapter.design](starts, ends, ids)


def assert_matches_reference(adapter):
    reference = fresh_reference(adapter)
    for t in PROBES:
        for op in OPS:
            live = getattr(adapter, op)(t)
            want = getattr(reference, op)(t)
            assert np.array_equal(live, want), (adapter.design, op, t)


@pytest.mark.parametrize("design", DESIGNS)
class TestAdapterMaintenance:
    def test_insert_settle_update_sequence(self, design):
        rng = np.random.default_rng(42)
        adapter = MutableIndexAdapter(
            design,
            np.array([0.0, 10.0, 20.0]),
            np.array([5.0, UNSETTLED_T, 25.0]),
            np.array([0, 1, 2]),
            rebuild_threshold=4,
        )
        next_id = 3
        open_ids = [1]
        for step in range(60):
            action = rng.integers(0, 3)
            if action == 0 or not open_ids:
                start = float(np.round(rng.uniform(0, 100), 1))
                adapter.insert(start, UNSETTLED_T, next_id)
                open_ids.append(next_id)
                next_id += 1
            elif action == 1:
                rcc = open_ids.pop(int(rng.integers(0, len(open_ids))))
                row = np.flatnonzero(adapter.triples()[2] == rcc)[0]
                start = adapter.triples()[0][row]
                adapter.settle(rcc, start + float(rng.uniform(0, 30)))
            else:
                rcc = int(rng.integers(0, next_id))
                starts, ends, ids = adapter.triples()
                row = int(np.flatnonzero(ids == rcc)[0])
                shift = float(np.round(rng.uniform(-3, 3), 1))
                new_start = starts[row] + shift
                new_end = max(ends[row] + shift, new_start)
                adapter.update_interval(rcc, new_start, new_end)
            if step % 10 == 9:
                assert_matches_reference(adapter)
        assert_matches_reference(adapter)
        assert len(adapter) == next_id

    def test_zero_duration_insert(self, design):
        adapter = MutableIndexAdapter(
            design, np.array([]), np.array([]), np.array([], dtype=np.int64)
        )
        adapter.insert(50.0, 50.0, 0)
        assert list(adapter.settled_ids(50.0)) == [0]
        assert list(adapter.created_ids(50.0)) == [0]
        assert list(adapter.active_ids(50.0)) == []
        assert_matches_reference(adapter)

    def test_duplicate_id_rejected(self, design):
        adapter = MutableIndexAdapter(
            design, np.array([1.0]), np.array([2.0]), np.array([7])
        )
        with pytest.raises(StreamStateError, match="already holds"):
            adapter.insert(3.0, 4.0, 7)

    def test_inverted_interval_rejected(self, design):
        adapter = MutableIndexAdapter(
            design, np.array([1.0]), np.array([2.0]), np.array([0])
        )
        with pytest.raises(ConfigurationError, match="settle"):
            adapter.insert(9.0, 3.0, 1)
        with pytest.raises(ConfigurationError, match="settle"):
            adapter.settle(0, 0.5)

    def test_unknown_id_rejected(self, design):
        adapter = MutableIndexAdapter(
            design, np.array([1.0]), np.array([2.0]), np.array([0])
        )
        with pytest.raises(StreamStateError, match="no RCC id"):
            adapter.settle(99, 5.0)

    def test_engine_injection(self, design):
        adapter = MutableIndexAdapter(
            design,
            np.array([0.0, 40.0]),
            np.array([30.0, UNSETTLED_T]),
            np.array([0, 1]),
        )
        from repro.table.table import ColumnTable

        table = ColumnTable(
            {
                "rcc_type": np.array(["G", "N"], dtype=object),
                "swlin": np.array(["111-11-001", "222-22-003"], dtype=object),
                "t_start": np.array([0.0, 40.0]),
                "t_end": np.array([30.0, UNSETTLED_T]),
                "amount": np.array([10.0, 20.0]),
                "avail_id": np.array([1, 1], dtype=np.int64),
            }
        )
        engine = StatusQueryEngine(table, index=adapter)
        assert engine.design == design
        assert engine.index is adapter


class TestStagedStrategy:
    def test_rebuild_triggers_at_threshold(self):
        adapter = MutableIndexAdapter(
            "naive", np.array([0.0]), np.array([1.0]), np.array([0]),
            rebuild_threshold=5,
        )
        for i in range(1, 5):
            adapter.insert(float(i), float(i) + 1.0, i)
        assert adapter.rebuilds == 0 and adapter.staged_count == 4
        adapter.insert(5.0, 6.0, 5)  # 5th staged row trips the threshold
        assert adapter.rebuilds == 1 and adapter.staged_count == 0
        assert adapter.ingest_stats["rebuild"]["calls"] == 1
        assert_matches_reference(adapter)

    def test_incremental_designs_never_rebuild(self):
        adapter = MutableIndexAdapter(
            "avl", np.array([0.0]), np.array([1.0]), np.array([0]),
            rebuild_threshold=2,
        )
        for i in range(1, 20):
            adapter.insert(float(i), float(i) + 1.0, i)
        assert adapter.rebuilds == 0
        assert adapter.staged_count == 0
        stats = adapter.combined_ingest_stats()
        assert stats["insert"]["calls"] == 19

    def test_default_threshold_scales_with_sqrt(self):
        assert default_rebuild_threshold(0) == 64
        assert default_rebuild_threshold(100) == 64
        assert default_rebuild_threshold(1_000_000) == 1000
