"""Telemetry sampler: rates, delta percentiles, sources, SLO feed."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.runtime import MetricsSink
from repro.runtime.telemetry import (
    BurnRateRule,
    SloEngine,
    SloObjective,
    TelemetryHub,
    TelemetrySampler,
    TimeSeriesStore,
    timeseries_from_events,
)


def make_sampler(**kwargs):
    sink = MetricsSink(telemetry=TelemetryHub())
    sampler = TelemetrySampler(sink, **kwargs)
    return sampler, sink, sink.telemetry


class TestCounters:
    def test_totals_and_rates(self):
        sampler, sink, _hub = make_sampler()
        sink.counter("service.requests", by=10)
        sampler.tick(now=100.0)
        # First tick has no dt: totals only.
        assert sampler.store.latest("counter.service.requests") == (100.0, 10.0)
        assert sampler.store.latest("rate.service.requests") is None
        sink.counter("service.requests", by=5)
        sampler.tick(now=102.0)
        # 5 new requests over 2 seconds.
        assert sampler.store.latest("rate.service.requests") == (102.0, 2.5)

    def test_error_ratio_only_with_fresh_traffic(self):
        sampler, sink, _hub = make_sampler()
        sink.counter("service.requests", by=4)
        sink.counter("service.errors", by=1)
        sampler.tick(now=100.0)
        sink.counter("service.requests", by=4)
        sink.counter("service.errors", by=2)
        sampler.tick(now=101.0)
        assert sampler.store.latest("ratio.service.error_rate") == (101.0, 0.5)
        # No traffic this tick: no ratio point (instead of a stale 0/0).
        sampler.tick(now=102.0)
        assert sampler.store.latest("ratio.service.error_rate") == (101.0, 0.5)


class TestHistogramDeltas:
    def test_windowed_percentiles_decay(self):
        sampler, _sink, hub = make_sampler()
        for _ in range(20):
            hub.observe("span.request", 1.0)  # slow tick
        sampler.tick(now=100.0)
        slow_p99 = sampler.store.latest("hist.span.request.p99")[1]
        assert slow_p99 >= 0.9
        for _ in range(20):
            hub.observe("span.request", 0.001)  # fast tick
        sampler.tick(now=101.0)
        fast_p99 = sampler.store.latest("hist.span.request.p99")[1]
        # Delta semantics: the new tick reflects only fresh traffic, so
        # the spike decays (a cumulative histogram would stay ~1s).
        assert fast_p99 < 0.01
        assert sampler.store.latest("hist.span.request.count") == (101.0, 20.0)

    def test_request_family_aggregates_per_type_histograms(self):
        sampler, _sink, hub = make_sampler()
        for _ in range(10):
            hub.observe("span.request.domd_query", 1.0)
        for _ in range(10):
            hub.observe("span.request.health", 0.001)
        metrics = sampler.tick(now=100.0)
        # Synthetic family series spans both request types.
        assert metrics["hist.span.request.count"] == 20.0
        assert metrics["hist.span.request.p99"] >= 0.9
        assert metrics["hist.span.request.p50"] <= 0.01
        # Per-type series still emitted alongside.
        assert metrics["hist.span.request.domd_query.count"] == 10.0

    def test_zero_delta_tick_emits_nothing(self):
        sampler, _sink, hub = make_sampler()
        hub.observe("span.request", 0.5)
        sampler.tick(now=100.0)
        sampler.tick(now=101.0)  # no fresh observations
        points = sampler.store.series("hist.span.request.p99")
        assert [ts for ts, _ in points] == [100.0]


class TestSourcesAndEvents:
    def test_sources_flatten_and_survive_errors(self):
        sampler, _sink, _hub = make_sampler()
        sampler.add_source("pool", lambda: {"queue_depth": 3, "saturated": False})

        def broken():
            raise RuntimeError("dead source")

        sampler.add_source("bad", broken)
        metrics = sampler.tick(now=100.0)
        assert metrics["pool.queue_depth"] == 3.0
        assert metrics["pool.saturated"] == 0.0
        assert not any(k.startswith("bad.") for k in metrics)

    def test_sample_events_reconstruct_store(self):
        sampler, sink, hub = make_sampler()
        sink.counter("service.requests", by=3)
        sampler.tick(now=100.0)
        sink.counter("service.requests", by=3)
        sampler.tick(now=101.0)
        rebuilt = timeseries_from_events(hub.events())
        assert rebuilt.series("counter.service.requests") == sampler.store.series(
            "counter.service.requests"
        )
        assert rebuilt.series("rate.service.requests") == sampler.store.series(
            "rate.service.requests"
        )

    def test_emit_events_false_keeps_log_clean(self):
        sampler, _sink, hub = make_sampler(emit_events=False)
        sampler.tick(now=100.0)
        assert not any(e["kind"] == "sample" for e in hub.events())
        assert sampler.store.latest("drift.flagged") is not None


class TestSloFeed:
    def test_breach_drives_alert_and_slo_events(self):
        store = TimeSeriesStore()
        objective = SloObjective(
            name="lat",
            series="hist.span.request.p99",
            threshold=0.1,
            target=0.9,
            rules=(BurnRateRule(2.0, 5.0, 2.0),),
        )
        sink = MetricsSink(telemetry=TelemetryHub())
        sampler = TelemetrySampler(
            sink, store=store, slo=SloEngine([objective], store)
        )
        hub = sink.telemetry
        for t in range(6):
            hub.observe("span.request", 1.0)  # every tick bad
            sampler.tick(now=100.0 + t)
        assert "slo:lat" in hub.alerts.firing()
        kinds = [e["kind"] for e in hub.events()]
        assert "alert" in kinds and "slo" in kinds
        slo_events = [e for e in hub.events() if e["kind"] == "slo"]
        assert slo_events[-1]["objective"] == "lat"
        assert slo_events[-1]["budget_spent"] > 1.0
        # Recovery: fast ticks clear the short+long windows.
        for t in range(8):
            hub.observe("span.request", 0.001)
            sampler.tick(now=110.0 + t)
        assert hub.alerts.firing() == []
        resolved = [
            e
            for e in hub.events()
            if e["kind"] == "alert" and e["state"] == "resolved"
        ]
        assert len(resolved) == 1


class TestLifecycle:
    def test_background_thread_ticks(self):
        sampler, sink, _hub = make_sampler(interval=0.02)
        sink.counter("service.requests", by=1)
        with sampler:
            import time

            time.sleep(0.08)
        # Immediate first tick + periodic + final tick on stop.
        assert sampler.ticks >= 3
        assert not sampler.status()["running"]
        assert sampler.store.latest("counter.service.requests") is not None

    def test_validation(self):
        sink = MetricsSink(telemetry=TelemetryHub())
        with pytest.raises(ConfigurationError):
            TelemetrySampler(sink, interval=0.0)
        with pytest.raises(ConfigurationError):
            TelemetrySampler(MetricsSink())
