"""``TraceContext``: W3C-style serialisation of hub-native ids.

Native ids (``T%08x``/``S%08x``) must round-trip exactly through the
``00-<trace>-<span>-01`` wire form; anything else must degrade safely —
foreign ids hash one-way into a well-formed header, malformed headers
parse to ``None`` (never raise on the serving path).
"""

from __future__ import annotations

import pytest

from repro.runtime.telemetry.tracecontext import TraceContext


class TestRoundTrip:
    def test_native_ids_round_trip_exactly(self):
        context = TraceContext(trace_id="T0000002a", span_id="S000000ff")
        header = context.to_traceparent()
        assert header == (
            "00-0000000000000000000000000000002a-00000000000000ff-01"
        )
        assert TraceContext.from_traceparent(header) == context

    def test_no_span_serialises_to_zero_field(self):
        header = TraceContext(trace_id="T00000001").to_traceparent()
        assert header.split("-")[2] == "0" * 16
        assert TraceContext.from_traceparent(header) == TraceContext(
            trace_id="T00000001", span_id=None
        )

    def test_wide_native_counters_round_trip(self):
        # ids past 8 hex digits (very long runs) still fit the fields
        context = TraceContext(trace_id="T123456789ab", span_id="S123456789")
        assert TraceContext.from_traceparent(context.to_traceparent()) == context

    def test_str_is_the_header(self):
        context = TraceContext(trace_id="T00000001")
        assert str(context) == context.to_traceparent()


class TestForeignIds:
    def test_foreign_id_hashes_into_a_wellformed_header(self):
        context = TraceContext(trace_id="req-7f3a")
        header = context.to_traceparent()
        assert TraceContext.from_traceparent(header) is not None
        # deterministic but one-way: the original string is not recoverable
        assert header == TraceContext(trace_id="req-7f3a").to_traceparent()
        assert TraceContext.from_traceparent(header).trace_id != "req-7f3a"

    def test_uppercase_payload_is_not_native(self):
        # native format is strictly lowercase hex; near-misses are hashed
        upper = TraceContext(trace_id="TDEADBEEF").to_traceparent()
        lower = TraceContext(trace_id="Tdeadbeef").to_traceparent()
        assert upper != lower
        parsed = TraceContext.from_traceparent(lower)
        assert parsed is not None and parsed.trace_id == "Tdeadbeef"


class TestLenientParsing:
    @pytest.mark.parametrize(
        "header",
        [
            None,
            42,
            "",
            "garbage",
            "00-xyz-span-01",
            "00-" + "0" * 32 + "-" + "0" * 16 + "-01",  # all-zero trace id
            "00-" + "1" * 31 + "-" + "0" * 16 + "-01",  # short trace field
            "ff-" + "1" * 32 + "-" + "0" * 16,  # missing flags field
        ],
    )
    def test_malformed_headers_parse_to_none(self, header):
        assert TraceContext.from_traceparent(header) is None

    def test_whitespace_and_case_are_tolerated(self):
        header = "  00-" + "0" * 24 + "0000002A" + "-" + "0" * 16 + "-01  "
        assert TraceContext.from_traceparent(header) == TraceContext(
            trace_id="T0000002a"
        )
