"""MetricsSink: counters, span nesting, aggregation and capture deltas."""

import json

import pytest

from repro.runtime import MetricsSink, RunReport, SpanRecord


class TestCounters:
    def test_counter_accumulates(self):
        sink = MetricsSink()
        assert sink.counter("hits") == 1
        assert sink.counter("hits", 4) == 5
        assert sink.counter_value("hits") == 5
        assert sink.counter_value("misses") == 0

    def test_counters_snapshot_is_a_copy(self):
        sink = MetricsSink()
        sink.counter("a")
        snapshot = sink.counters
        snapshot["a"] = 99
        assert sink.counter_value("a") == 1


class TestSpanNesting:
    def test_nested_spans_form_a_tree(self):
        sink = MetricsSink()
        with sink.span("outer"):
            with sink.span("inner"):
                pass
            with sink.span("inner2"):
                pass
        report = sink.report()
        assert [s.name for s in report.spans] == ["outer"]
        outer = report.spans[0]
        assert set(outer.children) == {"inner", "inner2"}
        assert outer.count == 1

    def test_same_name_same_parent_aggregates(self):
        sink = MetricsSink()
        with sink.span("fit"):
            for _ in range(100):
                with sink.span("fit_window"):
                    pass
        report = sink.report()
        fit = report.spans[0]
        assert fit.children["fit_window"].count == 100
        # a loop of 100 spans yields ONE record, not 100
        assert len(fit.children) == 1

    def test_same_name_different_parent_stays_separate(self):
        sink = MetricsSink()
        with sink.span("a"):
            with sink.span("fuse"):
                pass
        with sink.span("b"):
            with sink.span("fuse"):
                pass
        report = sink.report()
        assert report.span_names() == {"a", "b", "fuse"}
        assert report.spans[0].children["fuse"].count == 1
        assert report.spans[1].children["fuse"].count == 1

    def test_seconds_accumulate_and_handle_exposes_elapsed(self):
        sink = MetricsSink()
        with sink.span("stage") as handle:
            pass
        assert handle.seconds >= 0.0
        assert handle.record.seconds == pytest.approx(handle.seconds)
        with sink.span("stage"):
            pass
        assert sink.stage_seconds("stage") >= handle.seconds

    def test_span_pops_stack_on_exception(self):
        sink = MetricsSink()
        with pytest.raises(RuntimeError):
            with sink.span("boom"):
                raise RuntimeError("x")
        # the failed span is still recorded and the stack is clean
        with sink.span("after"):
            pass
        report = sink.report()
        assert [s.name for s in report.spans] == ["boom", "after"]

    def test_exception_span_records_elapsed_and_error(self):
        sink = MetricsSink()
        with pytest.raises(RuntimeError):
            with sink.span("boom"):
                sum(range(1000))
                raise RuntimeError("x")
        record = sink.report().spans[0]
        assert record.seconds > 0.0
        assert record.errors == 1
        assert record.as_dict()["errors"] == 1
        # successful spans do not carry the key at all
        with sink.span("fine"):
            pass
        assert "errors" not in sink.report().spans[1].as_dict()

    def test_child_seconds_bounded_by_parent(self):
        sink = MetricsSink()
        with sink.span("outer"):
            with sink.span("inner"):
                sum(range(1000))
        report = sink.report()
        outer = report.spans[0]
        assert outer.children["inner"].seconds <= outer.seconds


class TestRunReport:
    def test_as_dict_and_json_round_trip(self):
        sink = MetricsSink()
        sink.counter("queries", 3)
        with sink.span("extract"):
            pass
        report = sink.report(meta={"command": "fit"})
        payload = json.loads(report.to_json())
        assert payload["counters"] == {"queries": 3}
        assert payload["spans"][0]["name"] == "extract"
        assert payload["meta"] == {"command": "fit"}

    def test_span_seconds_sums_across_tree(self):
        report = RunReport(
            spans=[
                SpanRecord("a", seconds=1.0, count=1,
                           children={"x": SpanRecord("x", seconds=0.25, count=1)}),
                SpanRecord("x", seconds=0.5, count=1),
            ]
        )
        assert report.span_seconds("x") == pytest.approx(0.75)
        assert report.span_names() == {"a", "x"}

    def test_format_renders_counts(self):
        sink = MetricsSink()
        sink.counter("n", 2)
        for _ in range(3):
            with sink.span("loop"):
                pass
        text = sink.report().format()
        assert "RunReport" in text
        assert "counter n = 2" in text
        assert "loop" in text and "x3" in text

    def test_report_is_a_snapshot(self):
        sink = MetricsSink()
        with sink.span("s"):
            pass
        report = sink.report()
        with sink.span("s"):
            pass
        assert report.spans[0].count == 1
        assert sink.report().spans[0].count == 2


class TestCapture:
    def test_capture_returns_only_the_delta(self):
        sink = MetricsSink()
        sink.counter("queries", 10)
        with sink.span("warmup"):
            pass
        with sink.capture() as captured:
            sink.counter("queries", 2)
            with sink.span("request"):
                with sink.span("predict"):
                    pass
        delta = captured.report
        assert delta.counters == {"queries": 2}
        assert {s.name for s in delta.spans} == {"request"}
        assert delta.spans[0].children["predict"].count == 1

    def test_capture_of_repeated_span_counts_delta(self):
        sink = MetricsSink()
        with sink.span("request"):
            pass
        with sink.capture() as captured:
            with sink.span("request"):
                pass
            with sink.span("request"):
                pass
        assert captured.report.spans[0].count == 2

    def test_empty_capture_is_empty(self):
        sink = MetricsSink()
        sink.counter("before")
        with sink.capture() as captured:
            pass
        assert captured.report.counters == {}
        assert captured.report.spans == []

    def test_nested_capture_raises(self):
        sink = MetricsSink()
        with sink.capture():
            with pytest.raises(RuntimeError, match="does not nest"):
                with sink.capture():
                    pass

    def test_capture_usable_again_after_close(self):
        sink = MetricsSink()
        with sink.capture():
            pass
        with sink.capture() as captured:
            sink.counter("ok")
        assert captured.report.counters == {"ok": 1}

    def test_capture_reopens_after_exception(self):
        sink = MetricsSink()
        with pytest.raises(ValueError):
            with sink.capture():
                raise ValueError("x")
        with sink.capture() as captured:
            sink.counter("ok")
        assert captured.report.counters == {"ok": 1}

    def test_capture_delta_includes_error_counts(self):
        sink = MetricsSink()
        with pytest.raises(RuntimeError):
            with sink.span("request"):
                raise RuntimeError("x")
        with sink.capture() as captured:
            with pytest.raises(RuntimeError):
                with sink.span("request"):
                    raise RuntimeError("y")
        delta = captured.report.spans[0]
        assert delta.count == 1 and delta.errors == 1
