"""Alert state machines: edge triggering, dwell, hysteresis, replay."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.runtime.telemetry.alerts import (
    ALERT_STATE_CODES,
    AlertManager,
    AlertRule,
    alert_states_from_events,
    alert_timeline,
)


class FakeClock:
    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_manager(events: list | None = None, **clock_kwargs):
    clock = FakeClock(**clock_kwargs)
    emitted = events if events is not None else []

    def emit(kind, **fields):
        emitted.append({"kind": kind, "ts": clock.now, **fields})

    return AlertManager(clock=clock, emit=emit), clock, emitted


class TestTransitions:
    def test_immediate_fire_without_pending_dwell(self):
        manager, _clock, events = make_manager()
        assert manager.set_condition("a", True) == "firing"
        assert manager.firing() == ["a"]
        assert not manager.healthy()
        assert [e["state"] for e in events] == ["firing"]
        assert events[0]["previous"] == "inactive"

    def test_pending_then_firing_after_dwell(self):
        manager, clock, events = make_manager()
        manager.rule(AlertRule(name="a", pending_for=10.0))
        assert manager.set_condition("a", True) == "pending"
        assert manager.firing() == []
        clock.advance(5.0)
        assert manager.set_condition("a", True) is None  # still dwelling
        clock.advance(5.0)
        assert manager.set_condition("a", True) == "firing"
        assert [e["state"] for e in events] == ["pending", "firing"]

    def test_pending_clears_resolves_immediately(self):
        manager, _clock, events = make_manager()
        manager.rule(AlertRule(name="a", pending_for=10.0, resolve_after=30.0))
        manager.set_condition("a", True)
        assert manager.set_condition("a", False) == "resolved"
        assert manager.status()["a"]["state"] == "inactive"
        assert manager.status()["a"]["fired"] == 0
        assert [e["state"] for e in events] == ["pending", "resolved"]

    def test_resolve_after_damps_flapping(self):
        manager, clock, events = make_manager()
        manager.rule(AlertRule(name="a", resolve_after=20.0))
        manager.set_condition("a", True)
        # Condition flaps: clear, active, clear — never clear for 20s.
        clock.advance(5.0)
        assert manager.set_condition("a", False) is None
        clock.advance(5.0)
        assert manager.set_condition("a", True) is None  # still firing
        clock.advance(5.0)
        assert manager.set_condition("a", False) is None  # clear timer restarts
        clock.advance(19.0)
        assert manager.set_condition("a", False) is None
        clock.advance(1.0)
        assert manager.set_condition("a", False) == "resolved"
        # One fire, one resolve — no storm.
        assert [e["state"] for e in events] == ["firing", "resolved"]

    def test_edge_triggered_no_duplicate_events(self):
        manager, _clock, events = make_manager()
        for _ in range(5):
            manager.set_condition("a", True)
        for _ in range(5):
            manager.set_condition("a", False)
        assert [e["state"] for e in events] == ["firing", "resolved"]
        # Second episode fires again.
        manager.set_condition("a", True)
        assert [e["state"] for e in events] == ["firing", "resolved", "firing"]
        assert manager.status()["a"]["fired"] == 2

    def test_fields_carried_on_transitions(self):
        manager, _clock, events = make_manager()
        manager.set_condition("a", True, burn_short=7.5)
        assert events[0]["burn_short"] == 7.5
        assert events[0]["name"] == "a"
        assert events[0]["severity"] == "page"

    def test_explicit_now_overrides_clock(self):
        manager, _clock, events = make_manager()
        manager.rule(AlertRule(name="a", pending_for=5.0))
        manager.set_condition("a", True, now=100.0)
        manager.set_condition("a", True, now=105.0)
        assert [e["state"] for e in events] == ["pending", "firing"]

    def test_invalid_rule(self):
        with pytest.raises(ConfigurationError):
            AlertRule(name="a", pending_for=-1.0)


class TestIntrospection:
    def test_status_shape(self):
        manager, _clock, _events = make_manager()
        manager.rule(AlertRule(name="a", severity="ticket"))
        manager.set_condition("a", True, z=4.2)
        status = manager.status()
        assert status["a"]["state"] == "firing"
        assert status["a"]["severity"] == "ticket"
        assert status["a"]["fired"] == 1
        assert status["a"]["context"] == {"z": 4.2}
        assert ALERT_STATE_CODES[status["a"]["state"]] == 2

    def test_healthy_when_empty(self):
        manager, _clock, _events = make_manager()
        assert manager.healthy()
        assert manager.firing() == []


class TestReplay:
    def test_timeline_and_states_from_events(self):
        manager, clock, events = make_manager()
        manager.rule(AlertRule(name="slo:latency", pending_for=5.0))
        manager.set_condition("slo:latency", True)
        clock.advance(6.0)
        manager.set_condition("slo:latency", True)
        manager.set_condition("drift:residual:0", True)
        clock.advance(1.0)
        manager.set_condition("slo:latency", False)

        timeline = alert_timeline(events)
        assert [(t["name"], t["state"]) for t in timeline] == [
            ("slo:latency", "pending"),
            ("slo:latency", "firing"),
            ("drift:residual:0", "firing"),
            ("slo:latency", "resolved"),
        ]

        replayed = alert_states_from_events(events)
        live = manager.status()
        for name in live:
            assert replayed[name]["state"] == live[name]["state"]
            assert replayed[name]["fired"] == live[name]["fired"]

    def test_replay_ignores_other_kinds(self):
        events = [
            {"kind": "sample", "ts": 1.0, "metrics": {}},
            {"kind": "alert", "ts": 2.0, "name": "a", "state": "firing",
             "previous": "inactive", "severity": "page"},
        ]
        assert list(alert_states_from_events(events)) == ["a"]
        assert len(alert_timeline(events)) == 1
