"""Thread-safety regression tests for the shared runtime.

The :class:`ServicePool` shares one MetricsSink / TelemetryHub /
ArtifactCache across worker threads; these tests hammer each primitive
directly and assert *exact* accounting — concurrent counter increments
sum precisely, a histogram's count equals the number of observations,
the event ring drops nothing, and single-flight builds each cache key
exactly once.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.errors import ConfigurationError, DeadlineExceeded
from repro.runtime import (
    ArtifactCache,
    Deadline,
    MetricsSink,
    TelemetryHub,
    ambient_scope,
    check_deadline,
    current_deadline,
    current_rng,
    worker_rng_streams,
)
from repro.runtime.telemetry.events import MemoryEventLog

N_THREADS = 8
N_ITERS = 1_000


def hammer(fn, n_threads: int = N_THREADS):
    """Run ``fn(thread_index)`` from ``n_threads`` threads, all released
    at once by a barrier; re-raises the first worker exception."""
    barrier = threading.Barrier(n_threads)
    errors: list[BaseException] = []

    def run(index: int) -> None:
        barrier.wait()
        try:
            fn(index)
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestDeadline:
    def test_fresh_deadline_not_expired(self):
        deadline = Deadline(60.0)
        assert not deadline.expired()
        assert deadline.remaining() > 59.0
        deadline.check("anywhere")  # no raise

    def test_expired_deadline_raises_with_checkpoint(self):
        clock_now = [0.0]
        deadline = Deadline(0.5, clock=lambda: clock_now[0])
        clock_now[0] = 0.75
        with pytest.raises(DeadlineExceeded, match="estimator.query"):
            deadline.check("estimator.query")

    def test_message_carries_budget_and_overrun(self):
        clock_now = [0.0]
        deadline = Deadline(0.1, clock=lambda: clock_now[0])
        clock_now[0] = 0.2
        with pytest.raises(DeadlineExceeded, match="100 ms"):
            deadline.check()

    def test_after_ms(self):
        deadline = Deadline.after_ms(250.0)
        assert 0.2 < deadline.remaining() <= 0.25

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_non_positive_budget_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            Deadline(bad)

    def test_remaining_goes_negative(self):
        clock_now = [0.0]
        deadline = Deadline(1.0, clock=lambda: clock_now[0])
        clock_now[0] = 3.0
        assert deadline.remaining() == -2.0
        assert deadline.expired()


class TestAmbientScope:
    def test_default_is_empty(self):
        assert current_deadline() is None
        assert current_rng() is None
        check_deadline("no ambient deadline")  # no-op, no raise

    def test_scope_installs_and_restores(self):
        deadline = Deadline(60.0)
        rng = np.random.default_rng(7)
        with ambient_scope(deadline=deadline, rng=rng):
            assert current_deadline() is deadline
            assert current_rng() is rng
        assert current_deadline() is None
        assert current_rng() is None

    def test_scopes_nest_and_inner_clears(self):
        outer = Deadline(60.0)
        with ambient_scope(deadline=outer):
            with ambient_scope():  # a scope describes exactly one request
                assert current_deadline() is None
            assert current_deadline() is outer

    def test_check_deadline_raises_through_ambient(self):
        clock_now = [0.0]
        deadline = Deadline(0.1, clock=lambda: clock_now[0])
        with ambient_scope(deadline=deadline):
            check_deadline("early")  # fine
            clock_now[0] = 1.0
            with pytest.raises(DeadlineExceeded):
                check_deadline("late")

    def test_ambient_state_is_per_thread(self):
        deadline = Deadline(60.0)
        seen: list[Deadline | None] = []
        with ambient_scope(deadline=deadline):
            thread = threading.Thread(target=lambda: seen.append(current_deadline()))
            thread.start()
            thread.join()
        assert seen == [None]


class TestWorkerRngStreams:
    def test_streams_are_deterministic(self):
        a = worker_rng_streams(42, 4)
        b = worker_rng_streams(42, 4)
        for stream_a, stream_b in zip(a, b):
            assert np.array_equal(stream_a.random(16), stream_b.random(16))

    def test_streams_are_distinct(self):
        streams = worker_rng_streams(42, 4)
        draws = [tuple(s.random(8)) for s in streams]
        assert len(set(draws)) == 4

    def test_bad_worker_count(self):
        with pytest.raises(ConfigurationError):
            worker_rng_streams(0, 0)


class TestMetricsSinkThreadSafety:
    def test_concurrent_counter_increments_sum_exactly(self):
        sink = MetricsSink()

        def work(_index: int) -> None:
            for _ in range(N_ITERS):
                sink.counter("hits")

        hammer(work)
        assert sink.counter_value("hits") == N_THREADS * N_ITERS

    def test_concurrent_spans_merge_to_exact_counts(self):
        sink = MetricsSink()

        def work(_index: int) -> None:
            for _ in range(N_ITERS // 10):
                with sink.span("outer"):
                    with sink.span("inner"):
                        pass

        hammer(work)
        report = sink.report()
        outer = next(s for s in report.spans if s.name == "outer")
        assert outer.count == N_THREADS * (N_ITERS // 10)
        assert outer.children["inner"].count == N_THREADS * (N_ITERS // 10)

    def test_pooled_report_shape_matches_sequential(self):
        """Merged per-thread trees look exactly like a sequential run."""
        sequential = MetricsSink()
        pooled = MetricsSink()
        with sequential.span("a"):
            with sequential.span("b"):
                pass

        def work(_index: int) -> None:
            with pooled.span("a"):
                with pooled.span("b"):
                    pass

        hammer(work, n_threads=2)
        seq_names = {(s.name, tuple(s.children)) for s in sequential.report().spans}
        pool_names = {(s.name, tuple(s.children)) for s in pooled.report().spans}
        assert seq_names == pool_names

    def test_concurrent_captures_see_only_their_thread(self):
        sink = MetricsSink()
        deltas: dict[int, float] = {}
        barrier = threading.Barrier(4)

        def work(index: int) -> None:
            barrier.wait()
            with sink.capture() as captured:
                for _ in range(index + 1):
                    sink.counter("work")
            deltas[index] = captured.report.counters.get("work", 0)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert deltas == {0: 1, 1: 2, 2: 3, 3: 4}
        assert sink.counter_value("work") == 10

    def test_capture_still_rejects_same_thread_nesting(self):
        sink = MetricsSink()
        with sink.capture():
            with pytest.raises(RuntimeError, match="does not nest"):
                with sink.capture():
                    pass


class TestTelemetryHubThreadSafety:
    def test_histogram_count_equals_observations(self):
        hub = TelemetryHub()

        def work(_index: int) -> None:
            for _ in range(N_ITERS):
                hub.observe("latency", 0.001)

        hammer(work)
        histogram = hub.histogram("latency")
        assert histogram is not None
        assert histogram.count == N_THREADS * N_ITERS

    def test_event_ring_drops_and_duplicates_nothing(self):
        hub = TelemetryHub(buffer=MemoryEventLog(max_events=200_000))

        def work(index: int) -> None:
            for i in range(N_ITERS):
                hub.emit("tick", worker=index, i=i)

        hammer(work)
        events = [e for e in hub.events() if e["kind"] == "tick"]
        assert len(events) == N_THREADS * N_ITERS
        assert hub.buffer.total_emitted == N_THREADS * N_ITERS
        seen = {(e["worker"], e["i"]) for e in events}
        assert len(seen) == N_THREADS * N_ITERS  # no duplicates either

    def test_trace_ids_are_unique_across_threads(self):
        hub = TelemetryHub()
        ids: set[str] = set()
        lock = threading.Lock()

        def work(_index: int) -> None:
            for _ in range(100):
                with hub.trace("request") as trace_id:
                    with lock:
                        ids.add(trace_id)

        hammer(work)
        assert len(ids) == N_THREADS * 100

    def test_concurrent_traces_do_not_leak_across_threads(self):
        hub = TelemetryHub()
        barrier = threading.Barrier(2)
        observed: dict[int, str] = {}

        def work(index: int) -> None:
            with hub.trace("request") as trace_id:
                barrier.wait()  # both traces open at once
                observed[index] = hub.trace_id
                assert hub.trace_id == trace_id

        threads = [threading.Thread(target=work, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert observed[0] != observed[1]


class TestArtifactCacheSingleFlight:
    def test_single_flight_builds_each_key_once(self):
        sink = MetricsSink()
        cache = ArtifactCache(max_entries=8, metrics=sink)
        build_count = [0]
        build_lock = threading.Lock()

        def build():
            with build_lock:
                build_count[0] += 1
            time.sleep(0.05)  # keep the flight open so followers pile up
            return "tensor"

        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            results = list(
                pool.map(lambda _: cache.get_or_build("key", build), range(N_THREADS))
            )
        assert results == ["tensor"] * N_THREADS
        assert build_count[0] == 1
        assert sink.counter_value("cache.builds") == 1
        assert sink.counter_value("cache.misses") == 1
        assert sink.counter_value("cache.coalesced") == N_THREADS - 1

    def test_leader_failure_lets_a_follower_retry(self):
        cache = ArtifactCache(max_entries=8)
        attempts = [0]
        lock = threading.Lock()

        def build():
            with lock:
                attempts[0] += 1
                attempt = attempts[0]
            time.sleep(0.02)
            if attempt == 1:
                raise RuntimeError("leader dies")
            return "ok"

        def call(_):
            try:
                return cache.get_or_build("k", build)
            except RuntimeError:
                return None

        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(call, range(4)))
        # exactly one caller saw the failure; everyone else got the value
        assert results.count(None) == 1
        assert results.count("ok") == 3

    def test_concurrent_distinct_keys_build_in_parallel(self):
        cache = ArtifactCache(max_entries=16)

        def call(index: int):
            return cache.get_or_build(f"k{index}", lambda: index * 2)

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(call, range(8)))
        assert results == [i * 2 for i in range(8)]
        assert len(cache) == 8

    def test_concurrent_puts_respect_capacity(self):
        cache = ArtifactCache(max_entries=4)

        def work(index: int) -> None:
            for i in range(200):
                cache.put((index, i), i)

        hammer(work)
        assert len(cache) == 4
