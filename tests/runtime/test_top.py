"""``repro top``: snapshot reconstruction, rendering, CLI paths."""

from __future__ import annotations

import json

from repro.cli import main
from repro.runtime.telemetry.top import render_top, sparkline, top_snapshot


def synthetic_events() -> list[dict]:
    events = []
    for t in range(5):
        events.append(
            {
                "ts": 100.0 + t,
                "kind": "sample",
                "metrics": {
                    "rate.service.requests": 10.0 + t,
                    "hist.span.request.p99": 0.010 + 0.001 * t,
                    "hist.span.request.p50": 0.005,
                    "ratio.service.error_rate": 0.0,
                    "pool.queue_depth": 2.0,
                    "pool.queue_capacity": 16.0,
                    "pool.queue_peak": 6.0,
                    "pool.workers": 4.0,
                    "pool.saturated": 0.0,
                    "ingest.lag_events": float(t),
                    "ingest.watermark_seq": 100.0 + t,
                    "drift.flagged": 0.0,
                },
            }
        )
    events.append(
        {
            "ts": 104.5,
            "kind": "alert",
            "name": "slo:watermark_lag",
            "state": "firing",
            "previous": "inactive",
            "severity": "page",
        }
    )
    return events


def freshness_events() -> list[dict]:
    """Samples carrying the freshness series plus causal link events."""
    events = []
    for t in range(4):
        events.append(
            {
                "ts": 200.0 + t,
                "kind": "sample",
                "metrics": {
                    "ingest.freshness_lag_seconds": 0.5 * t,
                    "hist.freshness.event_to_queryable.p50": 0.004,
                    "hist.freshness.event_to_queryable.p99": 0.020 + 0.001 * t,
                },
            }
        )
    events.append(
        {"ts": 200.1, "kind": "link", "relation": "wal_append",
         "trace_id": "T00000001", "first_seq": 1, "last_seq": 6}
    )
    for t in range(2):
        events.append(
            {"ts": 200.5 + t, "kind": "link", "relation": "wal_apply",
             "trace_id": f"T0000000{t + 2}", "first_seq": 1 + 3 * t,
             "last_seq": 3 + 3 * t, "watermark": 3 + 3 * t}
        )
    return events


class TestSparkline:
    def test_shape(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0, 1.0]) == "▁▁▁"
        line = sparkline([0.0, 0.5, 1.0])
        assert line[0] == "▁" and line[-1] == "█"
        assert len(sparkline(list(range(100)), width=24)) == 24


class TestSnapshot:
    def test_values_from_event_log(self):
        snapshot = top_snapshot(synthetic_events())
        assert snapshot["ts"] == 104.0  # newest sample, not wall clock
        assert snapshot["samples"] == 5
        assert snapshot["qps"]["current"] == 14.0
        assert snapshot["qps"]["trend"] == [10.0, 11.0, 12.0, 13.0, 14.0]
        assert snapshot["latency_ms"]["p99"] == 14.0
        assert snapshot["latency_ms"]["p50"] == 5.0
        assert snapshot["pool"]["queue_peak"] == 6.0
        assert snapshot["ingest"]["lag_events"] == 4.0
        assert snapshot["alerts"]["firing"] == ["slo:watermark_lag"]

    def test_empty_log(self):
        snapshot = top_snapshot([])
        assert snapshot["samples"] == 0
        assert snapshot["qps"]["current"] is None
        assert snapshot["alerts"]["firing"] == []

    def test_window_clips_trends(self):
        snapshot = top_snapshot(synthetic_events(), window=2.0)
        assert snapshot["qps"]["trend"] == [12.0, 13.0, 14.0]


class TestFreshnessPanel:
    def test_snapshot_freshness_block(self):
        freshness = top_snapshot(freshness_events())["freshness"]
        assert freshness["lag_seconds"] == 1.5  # newest sample
        assert freshness["p50_ms"] == 4.0
        assert freshness["p99_ms"] == 23.0
        assert freshness["trend"] == [0.0, 0.5, 1.0, 1.5]
        assert freshness["appends"] == 1
        assert freshness["applies"] == 2

    def test_no_ingest_means_empty_panel(self):
        freshness = top_snapshot(synthetic_events())["freshness"]
        assert freshness["lag_seconds"] is None
        assert freshness["applies"] == 0

    def test_render_shows_the_freshness_row(self):
        text = render_top(top_snapshot(freshness_events()))
        assert "freshness" in text
        assert "lag_s=1.500" in text
        assert "p99_ms=23.00" in text
        assert "applies=2" in text and "appends=1" in text

    def test_render_omits_the_row_without_data(self):
        text = render_top(top_snapshot(synthetic_events()))
        assert "freshness" not in text


class TestRender:
    def test_dashboard_contains_key_rows(self):
        text = render_top(top_snapshot(synthetic_events()))
        assert "repro top" in text
        assert "ALERTS FIRING: 1" in text
        assert "qps" in text and "14.00" in text
        assert "pool" in text and "peak=6" in text
        assert "ingest" in text and "lag=4" in text
        assert "slo:watermark_lag" in text and "firing" in text

    def test_healthy_render(self):
        events = [e for e in synthetic_events() if e["kind"] == "sample"]
        text = render_top(top_snapshot(events))
        assert "[healthy]" in text


class TestCli:
    def test_top_once_json(self, tmp_path, capsys):
        log = tmp_path / "events.jsonl"
        log.write_text(
            "\n".join(json.dumps(e) for e in synthetic_events()) + "\n",
            encoding="utf-8",
        )
        code = main(["top", "--events", str(log), "--once", "--format", "json"])
        assert code == 0
        snapshot = json.loads(capsys.readouterr().out.strip())
        assert snapshot["qps"]["current"] == 14.0
        assert snapshot["alerts"]["firing"] == ["slo:watermark_lag"]

    def test_top_once_text(self, tmp_path, capsys):
        log = tmp_path / "events.jsonl"
        log.write_text(
            "\n".join(json.dumps(e) for e in synthetic_events()) + "\n",
            encoding="utf-8",
        )
        code = main(["top", "--events", str(log), "--once"])
        assert code == 0
        assert "repro top" in capsys.readouterr().out

    def test_json_requires_once(self, tmp_path, capsys):
        log = tmp_path / "events.jsonl"
        log.write_text("", encoding="utf-8")
        code = main(["top", "--events", str(log), "--format", "json"])
        assert code == 1
        envelope = json.loads(capsys.readouterr().out.strip())
        assert envelope["error"]["code"] == "domain_error"

    def test_missing_log_is_an_envelope(self, tmp_path, capsys):
        code = main(
            ["top", "--events", str(tmp_path / "nope.jsonl"), "--once"]
        )
        assert code == 1
        envelope = json.loads(capsys.readouterr().out.strip())
        assert envelope["error"]["code"] == "not_found"
