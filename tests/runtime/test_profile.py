"""Collapsed-stack and Chrome-trace rendering of runtime span trees."""

from __future__ import annotations

import json

from repro.runtime import (
    ExecutionContext,
    chrome_trace,
    chrome_trace_from_events,
    collapsed_from_events,
    collapsed_stacks,
    spans_from_report,
)


def _trace(spans, trace_id="T1", name="request"):
    return {"trace_id": trace_id, "name": name, "spans": spans}


def _span(name, seconds, children=()):
    return {"name": name, "seconds": seconds, "children": list(children)}


class TestCollapsedStacks:
    def test_self_time_excludes_children(self):
        trace = _trace([_span("a", 0.010, [_span("b", 0.004)])])
        lines = collapsed_stacks([trace])
        assert "T1 request;a 6000" in lines
        assert "T1 request;a;b 4000" in lines

    def test_negative_self_time_clamped_to_zero(self):
        # aggregated child seconds can exceed the parent on clock jitter
        trace = _trace([_span("a", 0.001, [_span("b", 0.002)])])
        lines = collapsed_stacks([trace])
        assert "T1 request;a 0" in lines

    def test_duplicate_stacks_fold_with_summed_values(self):
        t1 = _trace([_span("a", 0.001)], trace_id="T")
        t2 = _trace([_span("a", 0.002)], trace_id="T")
        lines = collapsed_stacks([t1, t2])
        assert lines == ["T request;a 3000"]

    def test_semicolons_in_frames_are_sanitised(self):
        trace = _trace([_span("a;b", 0.001)])
        (line,) = collapsed_stacks([trace])
        stack, _, value = line.rpartition(" ")
        assert stack.count(";") == 1  # root;frame — the literal ; became :
        assert "a:b" in stack and value == "1000"

    def test_open_span_renders_zero_width(self):
        trace = _trace([_span("crashed", None)])
        assert collapsed_stacks([trace]) == ["T1 request;crashed 0"]


class TestChromeTrace:
    def test_events_are_complete_events_with_int_microseconds(self):
        trace = _trace([_span("a", 0.010, [_span("b", 0.004)])])
        payload = chrome_trace([trace])
        assert payload["displayTimeUnit"] == "ms"
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in spans}
        assert by_name["a"]["dur"] == 10000 and by_name["b"]["dur"] == 4000
        assert by_name["b"]["ts"] == by_name["a"]["ts"]  # first child at parent start
        assert all(isinstance(e["ts"], int) and isinstance(e["dur"], int) for e in spans)

    def test_sibling_layout_is_sequential(self):
        trace = _trace(
            [_span("p", 0.010, [_span("c1", 0.003), _span("c2", 0.002)])]
        )
        spans = {
            e["name"]: e for e in chrome_trace([trace])["traceEvents"] if e["ph"] == "X"
        }
        assert spans["c2"]["ts"] == spans["c1"]["ts"] + spans["c1"]["dur"]

    def test_one_tid_per_trace_with_thread_names(self):
        t1 = _trace([_span("a", 0.001)], trace_id="T1")
        t2 = _trace([_span("b", 0.001)], trace_id="T2", name="other")
        payload = chrome_trace([t1, t2])
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert [m["tid"] for m in meta] == [1, 2]
        assert meta[1]["args"]["name"] == "T2 other"
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert {e["tid"] for e in spans} == {1, 2}

    def test_output_is_json_serialisable(self):
        trace = _trace([_span("a", 0.001)])
        json.dumps(chrome_trace([trace]))


class TestSpansFromReport:
    def test_wraps_run_report_as_one_trace(self):
        context = ExecutionContext(seed=0)
        with context.span("outer"):
            with context.span("inner"):
                pass
        report = context.report(meta={"command": "unit"})
        (trace,) = spans_from_report(report, label="run")
        assert trace["trace_id"] == "run" and trace["name"] == "unit"
        (outer,) = [s for s in trace["spans"] if s["name"] == "outer"]
        assert [c["name"] for c in outer["children"]] == ["inner"]
        lines = collapsed_stacks([trace])
        assert any(line.startswith("run unit;outer;inner ") for line in lines)


class TestEventLogRoundTrip:
    """Live spans -> JSONL events -> reconstructed profiler output."""

    def _events(self):
        context = ExecutionContext(seed=0)
        with context.telemetry.trace("request", request_type="unit"):
            with context.span("outer"):
                with context.span("inner"):
                    pass
        return context.telemetry.events()

    def test_collapsed_from_events(self):
        lines = collapsed_from_events(self._events())
        assert any(";outer;inner " in line for line in lines)
        for line in lines:
            stack, _, value = line.rpartition(" ")
            assert stack and int(value) >= 0

    def test_chrome_trace_from_events(self):
        payload = chrome_trace_from_events(self._events())
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert {"outer", "inner"} <= names
        json.dumps(payload)
