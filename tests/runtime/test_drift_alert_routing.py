"""Drift flags routed through the AlertManager (edge-triggered)."""

from __future__ import annotations

from repro.runtime import MetricsSink
from repro.runtime.telemetry import DriftMonitor, DriftThresholds, TelemetryHub


def make_hub() -> TelemetryHub:
    return TelemetryHub(
        drift=DriftMonitor(
            DriftThresholds(
                z_threshold=4.0,
                min_samples=5,
                baseline_samples=5,
                window_size=20,
            )
        )
    )


def alert_events(hub: TelemetryHub) -> list[tuple[str, str]]:
    return [
        (e["name"], e["state"]) for e in hub.events() if e["kind"] == "alert"
    ]


BASELINE = [0.0, 1.0, 0.0, 1.0, 0.0]  # mean 0.4, nonzero spread


class TestFireResolveHysteresis:
    def test_fire_once_then_resolve(self):
        hub = make_hub()
        hub.drift_observe_many("residual", 0, BASELINE)  # freezes baseline
        assert alert_events(hub) == []

        # Shifted regime: flags on the first verdict past min_samples.
        hub.drift_observe_many("residual", 0, [10.0] * 6)
        assert hub.drift.is_flagged("residual", 0)
        assert hub.alerts.firing() == ["drift:residual:0"]
        assert alert_events(hub) == [("drift:residual:0", "firing")]
        fired = [e for e in hub.events() if e["kind"] == "alert"]
        assert fired[0]["z"] > 4.0  # context carried from the DriftAlert

        # Still drifted: edge-triggered, no duplicate events.
        hub.drift_observe_many("residual", 0, [10.0] * 5)
        assert alert_events(hub) == [("drift:residual:0", "firing")]

        # Recovery: wash the rolling window back to the baseline mean.
        # The monitor's own hysteresis (z < threshold/2) is the damper.
        hub.drift_observe_many("residual", 0, [0.4] * 25)
        assert not hub.drift.is_flagged("residual", 0)
        assert hub.alerts.firing() == []
        assert alert_events(hub) == [
            ("drift:residual:0", "firing"),
            ("drift:residual:0", "resolved"),
        ]

    def test_refire_after_recovery(self):
        hub = make_hub()
        hub.drift_observe_many("residual", 0, BASELINE)
        hub.drift_observe_many("residual", 0, [10.0] * 6)
        hub.drift_observe_many("residual", 0, [0.4] * 25)
        hub.drift_observe_many("residual", 0, [10.0] * 25)
        assert alert_events(hub) == [
            ("drift:residual:0", "firing"),
            ("drift:residual:0", "resolved"),
            ("drift:residual:0", "firing"),
        ]
        assert hub.alerts.status()["drift:residual:0"]["fired"] == 2


class TestNonMonotoneWindows:
    def test_interleaved_windows_flag_independently(self):
        """The estimator feeds windows in whatever order queries arrive;
        each (channel, window) alert must track its own state."""
        hub = make_hub()
        # Interleave baselines for windows 1, 0, 2 out of order.
        for window in (1, 0, 2, 0, 1, 2):
            hub.drift_observe_many("residual", window, BASELINE[:3])
        # Window 1 drifts while 0 and 2 stay healthy, fed non-monotonically.
        for window in (1, 0, 1, 2, 1, 0, 1, 2, 1, 1):
            values = [10.0] * 3 if window == 1 else [0.4] * 3
            hub.drift_observe_many("residual", window, values)
        assert hub.alerts.firing() == ["drift:residual:1"]
        names = {name for name, _ in alert_events(hub)}
        assert names == {"drift:residual:1"}

    def test_single_observe_path_also_routes(self):
        hub = make_hub()
        for value in BASELINE:
            hub.drift_observe("prediction", 3, value)
        for _ in range(6):
            hub.drift_observe("prediction", 3, 50.0)
        assert hub.alerts.firing() == ["drift:prediction:3"]


class TestHealthIntegration:
    def test_sink_counters_untouched_by_alert_plumbing(self):
        # The alert manager shares the hub's emit path; make sure plain
        # counter traffic still flows beside it.
        sink = MetricsSink(telemetry=make_hub())
        sink.counter("service.requests")
        hub = sink.telemetry
        hub.drift_observe_many("residual", 0, BASELINE)
        hub.drift_observe_many("residual", 0, [10.0] * 6)
        kinds = {e["kind"] for e in hub.events()}
        assert {"counter", "drift_alert", "alert"} <= kinds
