"""Continuous stack profiler: sampling, attribution, rendering."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ConfigurationError
from repro.runtime.profile import chrome_trace, collapsed_stacks
from repro.runtime.telemetry.stackprof import StackProfiler


def _busy_beacon(stop: threading.Event) -> None:
    while not stop.is_set():
        time.sleep(0.001)


class TestSampling:
    def test_samples_named_thread_with_stack(self):
        stop = threading.Event()
        thread = threading.Thread(
            target=_busy_beacon, args=(stop,), name="repro-pool-0"
        )
        thread.start()
        profiler = StackProfiler(interval=0.005)
        try:
            for _ in range(5):
                profiler.sample_once()
                time.sleep(0.002)
        finally:
            stop.set()
            thread.join()
        counts = profiler.counts()
        pool_stacks = [
            stack for (label, stack), _ in counts.items() if label == "repro-pool-0"
        ]
        assert pool_stacks, f"worker thread not attributed: {list(counts)}"
        # Frame labels are module.function; the beacon must appear.
        assert any("_busy_beacon" in frame for stack in pool_stacks for frame in stack)
        assert profiler.samples == 5

    def test_excludes_own_worker_thread(self):
        profiler = StackProfiler(interval=0.005)
        with profiler:
            time.sleep(0.05)
        assert profiler.samples >= 2
        assert all(
            label != "repro-stackprof" for label, _ in profiler.counts()
        )
        assert not profiler.status()["running"]

    def test_max_stacks_bound(self):
        profiler = StackProfiler(interval=0.01, max_stacks=1)
        frame = next(iter(__import__("sys")._current_frames().values()))
        fake = {1: frame, 2: frame}
        names_before = profiler.sample_once(frames=fake)
        assert names_before == 2
        status = profiler.status()
        # Distinct stacks stay bounded; overflow lands in (truncated).
        assert status["distinct_stacks"] <= 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StackProfiler(interval=0.0)
        with pytest.raises(ConfigurationError):
            StackProfiler(max_depth=0)


class TestRendering:
    @staticmethod
    def _synthetic_profiler() -> StackProfiler:
        profiler = StackProfiler(interval=0.01)
        profiler._counts = {
            ("worker-0", ("mod.main", "mod.inner")): 3,
            ("worker-0", ("mod.main",)): 1,
            ("worker-1", ("mod.other",)): 2,
        }
        return profiler

    def test_collapsed_lines(self):
        lines = self._synthetic_profiler().collapsed()
        assert "worker-0;mod.main;mod.inner 30000" in lines
        assert "worker-0;mod.main 10000" in lines
        assert "worker-1;mod.other 20000" in lines

    def test_as_traces_inclusive_seconds(self):
        traces = self._synthetic_profiler().as_traces()
        by_id = {t["trace_id"]: t for t in traces}
        root = by_id["worker-0"]["spans"][0]
        assert root["name"] == "mod.main"
        # Inclusive time through mod.main: (3 + 1) * 10ms.
        assert root["seconds"] == pytest.approx(0.04)
        assert root["children"][0]["name"] == "mod.inner"
        assert root["children"][0]["seconds"] == pytest.approx(0.03)

    def test_renders_through_profile_interchange(self):
        traces = self._synthetic_profiler().as_traces()
        lines = collapsed_stacks(traces)
        assert any("mod.main;mod.inner" in line for line in lines)
        trace_json = chrome_trace(traces)
        names = {e["name"] for e in trace_json["traceEvents"]}
        assert {"mod.main", "mod.inner", "mod.other"} <= names
