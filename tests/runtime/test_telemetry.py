"""Telemetry subsystem: histograms, event logs, hub, drift, exporters."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.runtime import ExecutionContext, MetricsSink
from repro.runtime.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    DriftMonitor,
    DriftThresholds,
    Histogram,
    JsonlEventLog,
    MemoryEventLog,
    TelemetryHub,
    load_events,
    prometheus_text,
    telemetry_snapshot,
)
from repro.runtime.telemetry.events import counters_from_events
from repro.runtime.telemetry.exporters import (
    histograms_from_events,
    reconstruct_traces,
    render_report,
)


class TestHistogram:
    def test_record_and_summary(self):
        h = Histogram()
        for v in (0.001, 0.002, 0.003, 0.2):
            h.record(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["sum"] == pytest.approx(0.206)
        assert s["min"] == pytest.approx(0.001)
        assert s["max"] == pytest.approx(0.2)
        assert {"p50", "p90", "p99"} <= s.keys()

    def test_percentiles_are_monotone(self):
        h = Histogram()
        for i in range(1, 101):
            h.record(i / 1000.0)  # 1ms .. 100ms
        assert h.percentile(0.5) <= h.percentile(0.9) <= h.percentile(0.99)
        # p50 of a uniform 1..100ms spread lands in the right decade
        assert 0.001 < h.percentile(0.5) < 0.1

    def test_empty_histogram(self):
        h = Histogram()
        assert h.percentile(0.5) == 0.0
        assert h.summary() == {"count": 0, "sum": 0.0}

    def test_overflow_bucket_interpolates_toward_max(self):
        h = Histogram(bounds=(1.0,))
        h.record(5.0)
        assert h.bucket_counts == [0, 1]
        assert 1.0 <= h.percentile(0.99) <= 5.0

    def test_merge_requires_identical_bounds(self):
        a, b = Histogram(), Histogram()
        a.record(0.01)
        b.record(0.02)
        a.merge(b)
        assert a.count == 2
        with pytest.raises(ConfigurationError):
            a.merge(Histogram(bounds=(1.0, 2.0)))

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram(bounds=())
        with pytest.raises(ConfigurationError):
            Histogram(bounds=(2.0, 1.0))

    def test_as_dict_has_cumulative_le_buckets(self):
        h = Histogram(bounds=(0.01, 0.1))
        h.record(0.005)
        h.record(0.05)
        h.record(5.0)
        buckets = h.as_dict()["buckets"]
        assert [b["count"] for b in buckets] == [1, 2, 3]
        assert buckets[-1]["le"] == "+Inf"

    def test_default_buckets_cover_common_latencies(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-5)
        assert DEFAULT_LATENCY_BUCKETS[-1] == pytest.approx(10.0)


class TestEventLogs:
    def test_memory_log_bounds_retention(self):
        log = MemoryEventLog(max_events=3)
        for i in range(5):
            log.emit({"kind": "counter", "i": i})
        assert len(log) == 3
        assert [e["i"] for e in log.events()] == [2, 3, 4]
        assert log.total_emitted == 5

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = JsonlEventLog(path)
        log.emit({"kind": "span_open", "name": "x", "trace_id": "T1"})
        log.emit({"kind": "span_close", "name": "x", "trace_id": "T1"})
        log.close()
        events = load_events(path)
        assert [e["kind"] for e in events] == ["span_open", "span_close"]

    def test_jsonl_rotation_bounds_disk(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = JsonlEventLog(path, max_bytes=1024, max_files=2)
        payload = "p" * 100
        for i in range(100):
            log.emit({"kind": "counter", "i": i, "pad": payload})
        log.close()
        assert path.exists()
        assert (tmp_path / "events.jsonl.1").exists()
        assert (tmp_path / "events.jsonl.2").exists()
        assert not (tmp_path / "events.jsonl.3").exists()
        # each live file respects the byte bound
        for p in (path, tmp_path / "events.jsonl.1", tmp_path / "events.jsonl.2"):
            assert p.stat().st_size <= 1024 + 200  # one line of slack

    def test_rotated_files_shift_in_order(self, tmp_path):
        path = tmp_path / "e.jsonl"
        log = JsonlEventLog(path, max_bytes=1024, max_files=3)
        for i in range(200):
            log.emit({"kind": "counter", "i": i, "pad": "x" * 50})
        log.close()
        # the newest rotation (.1) holds more recent events than .2
        newest = load_events(tmp_path / "e.jsonl.1")
        older = load_events(tmp_path / "e.jsonl.2")
        assert newest[0]["i"] > older[0]["i"]

    def test_load_events_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "counter"}\nnot json\n')
        with pytest.raises(ConfigurationError, match="bad.jsonl:2"):
            load_events(path)

    def test_counters_from_events_sums_deltas(self):
        events = [
            {"kind": "counter", "name": "a", "delta": 1},
            {"kind": "counter", "name": "a", "delta": 4},
            {"kind": "span_open", "name": "ignored"},
            {"kind": "counter", "name": "b", "delta": 2},
        ]
        assert counters_from_events(events) == {"a": 5, "b": 2}


class TestTelemetryHub:
    def test_sink_spans_carry_trace_and_parent_ids(self):
        sink = MetricsSink(telemetry=TelemetryHub())
        hub = sink.telemetry
        with sink.span("outer"):
            with sink.span("inner"):
                pass
        events = hub.events()
        opens = [e for e in events if e["kind"] == "span_open"]
        assert [e["name"] for e in opens] == ["outer", "inner"]
        assert opens[0]["parent_id"] is None
        assert opens[1]["parent_id"] == opens[0]["span_id"]
        assert len({e["trace_id"] for e in events}) == 1

    def test_trace_blocks_isolate_span_parentage(self):
        sink = MetricsSink(telemetry=TelemetryHub())
        hub = sink.telemetry
        with sink.span("ambient"):
            with hub.trace("request"):
                with sink.span("handler"):
                    pass
        opens = {e["name"]: e for e in hub.events() if e["kind"] == "span_open"}
        # the request's span is a root of its own trace, not a child of
        # the ambient span
        assert opens["handler"]["parent_id"] is None
        assert opens["handler"]["trace_id"] != opens["ambient"]["trace_id"]

    def test_distinct_traces_get_distinct_ids(self):
        hub = TelemetryHub()
        ids = []
        for _ in range(3):
            with hub.trace("request") as trace_id:
                ids.append(trace_id)
        assert len(set(ids)) == 3

    def test_span_close_records_latency_histogram(self):
        sink = MetricsSink(telemetry=TelemetryHub())
        with sink.span("work"):
            pass
        histogram = sink.telemetry.histogram("span.work")
        assert histogram is not None and histogram.count == 1

    def test_counter_events(self):
        sink = MetricsSink(telemetry=TelemetryHub())
        sink.counter("queries", 3)
        events = [e for e in sink.telemetry.events() if e["kind"] == "counter"]
        assert events[0]["name"] == "queries"
        assert events[0]["delta"] == 3 and events[0]["total"] == 3

    def test_events_are_json_serialisable(self):
        sink = MetricsSink(telemetry=TelemetryHub())
        with sink.span("s"):
            sink.counter("c")
        for event in sink.telemetry.events():
            json.dumps(event)

    def test_extra_sink_receives_events(self, tmp_path):
        hub = TelemetryHub()
        hub.add_sink(JsonlEventLog(tmp_path / "e.jsonl"))
        hub.emit("error", code="x", message="boom")
        hub.close()
        events = load_events(tmp_path / "e.jsonl")
        assert events[0]["kind"] == "error" and events[0]["code"] == "x"


class TestDriftMonitor:
    def test_explicit_baseline_and_shift_flags(self):
        monitor = DriftMonitor(DriftThresholds(min_samples=10))
        monitor.set_baseline("residual", 0, mean=0.0, std=1.0)
        alerts = monitor.observe_many("residual", 0, [0.1] * 9)
        assert alerts == []
        # a strong sustained shift: mean 5 with baseline std 1
        alerts = monitor.observe_many("residual", 0, [5.0] * 20)
        assert len(alerts) == 1
        alert = alerts[0]
        assert alert.channel == "residual" and alert.window == 0
        assert alert.z > 4.0
        assert not monitor.healthy()
        assert monitor.flagged() == [{"channel": "residual", "window": 0}]

    def test_auto_baseline_from_first_samples(self):
        monitor = DriftMonitor(
            DriftThresholds(min_samples=5, baseline_samples=10, window_size=50)
        )
        assert monitor.observe_many("prediction", 2, [10.0] * 10) == []
        status = monitor.status()["prediction:2"]
        assert status["baseline_mean"] == pytest.approx(10.0)
        # stable regime stays quiet; a jump flags
        assert monitor.observe_many("prediction", 2, [10.0] * 10) == []
        alerts = monitor.observe_many("prediction", 2, [40.0] * 50)
        assert len(alerts) == 1

    def test_alerts_are_edge_triggered(self):
        monitor = DriftMonitor(DriftThresholds(min_samples=5, window_size=20))
        monitor.set_baseline("residual", 1, mean=0.0, std=1.0)
        alerts = monitor.observe_many("residual", 1, [8.0] * 40)
        assert len(alerts) == 1  # flag once, not once per observation

    def test_recovery_with_hysteresis(self):
        monitor = DriftMonitor(DriftThresholds(min_samples=5, window_size=10))
        monitor.set_baseline("residual", 0, mean=0.0, std=1.0)
        monitor.observe_many("residual", 0, [9.0] * 10)
        assert not monitor.healthy()
        # the rolling window refills with on-baseline values -> recovery
        monitor.observe_many("residual", 0, [0.0] * 10)
        assert monitor.healthy()

    def test_windows_are_independent(self):
        monitor = DriftMonitor(DriftThresholds(min_samples=5, window_size=20))
        monitor.set_baseline("residual", 0, mean=0.0, std=1.0)
        monitor.set_baseline("residual", 1, mean=0.0, std=1.0)
        monitor.observe_many("residual", 0, [9.0] * 20)
        assert monitor.flagged() == [{"channel": "residual", "window": 0}]

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            DriftThresholds(z_threshold=0.0)
        with pytest.raises(ConfigurationError):
            DriftThresholds(min_samples=1)


class TestExporters:
    def _context_with_activity(self):
        context = ExecutionContext(seed=0)
        with context.span("request.domd_query"):
            with context.span("query"):
                pass
        context.counter("cache.hits", 3)
        context.counter("cache.misses", 1)
        return context

    def test_prometheus_text_shape(self):
        context = self._context_with_activity()
        text = prometheus_text(context.metrics)
        assert "# TYPE repro_cache_hits_total counter" in text
        assert "repro_cache_hits_total 3" in text
        assert 'repro_span_request_domd_query_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_span_request_domd_query_seconds_count 1" in text
        assert "repro_cache_hit_ratio 0.75" in text

    def test_prometheus_drift_gauges(self):
        context = self._context_with_activity()
        hub = context.telemetry
        hub.drift.set_baseline("residual", 0, mean=0.0, std=1.0)
        hub.drift_observe_many("residual", 0, [9.0] * 30)
        text = prometheus_text(context.metrics)
        assert 'repro_drift_flagged{channel="residual",window="0"} 1' in text

    def test_snapshot_summaries(self):
        context = self._context_with_activity()
        snapshot = telemetry_snapshot(context.metrics)
        assert snapshot["counters"]["cache.hits"] == 3
        assert snapshot["cache"]["hit_ratio"] == pytest.approx(0.75)
        summary = snapshot["histograms"]["span.request.domd_query"]
        assert summary["count"] == 1
        assert {"p50", "p90", "p99"} <= summary.keys()
        json.dumps(snapshot)  # must be serialisable as-is

    def test_reconstruct_traces_from_events(self):
        context = self._context_with_activity()
        traces = reconstruct_traces(context.telemetry.events())
        assert len(traces) == 1
        roots = traces[0]["spans"]
        assert [r["name"] for r in roots] == ["request.domd_query"]
        assert [c["name"] for c in roots[0]["children"]] == ["query"]
        assert roots[0]["seconds"] is not None

    def test_unclosed_span_survives_reconstruction(self):
        events = [
            {"kind": "span_open", "trace_id": "T1", "name": "crashy",
             "span_id": "S1", "parent_id": None},
        ]
        traces = reconstruct_traces(events)
        assert traces[0]["spans"][0]["seconds"] is None

    def test_histograms_from_events_groups_by_span_name(self):
        context = self._context_with_activity()
        with context.span("request.domd_query"):
            pass
        histograms = histograms_from_events(context.telemetry.events())
        assert histograms["request.domd_query"].count == 2
        assert histograms["query"].count == 1

    def test_render_report_is_textual(self):
        context = self._context_with_activity()
        text = render_report(context.telemetry.events())
        assert "request.domd_query" in text
        assert "p50 ms" in text
        assert "cache.hits" in text

    def test_render_report_alerts_section_from_events_alone(self):
        events = [
            {
                "ts": 100.0,
                "kind": "alert",
                "name": "slo:request_latency",
                "state": "firing",
                "previous": "pending",
                "severity": "page",
            },
            {
                "ts": 130.0,
                "kind": "alert",
                "name": "slo:request_latency",
                "state": "resolved",
                "previous": "firing",
                "severity": "page",
            },
            {
                "ts": 101.0,
                "kind": "slo",
                "objective": "request_latency",
                "bad_delta": 2,
                "budget_spent": 0.4,
            },
            {
                "ts": 102.0,
                "kind": "slo",
                "objective": "request_latency",
                "bad_delta": 1,
                "budget_spent": 0.62,
            },
        ]
        text = render_report(events)
        assert "Alerts" in text
        assert "slo:request_latency" in text
        assert "firing" in text and "resolved" in text
        assert "error budget spent" in text
        assert "62.0%" in text


class TestPrometheusHistogramContract:
    """Pin the exposition contract: ``_bucket`` series are cumulative
    over ``le`` bounds and every histogram carries ``_sum``/``_count``."""

    def test_buckets_are_cumulative_with_sum_and_count(self):
        context = ExecutionContext(seed=0)
        hub = context.telemetry
        for value in (0.002, 0.002, 0.03, 5000.0):
            hub.observe("probe", value)
        text = prometheus_text(context.metrics)
        bucket_lines = [
            line for line in text.splitlines()
            if line.startswith("repro_probe_seconds_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)  # cumulative => monotone
        assert bucket_lines[-1].startswith('repro_probe_seconds_bucket{le="+Inf"}')
        assert counts[-1] == 4  # +Inf bucket counts every observation
        assert any(0 < c < 4 for c in counts)  # genuinely cumulative mid-series
        assert "repro_probe_seconds_count 4" in text
        sum_line = next(
            line for line in text.splitlines()
            if line.startswith("repro_probe_seconds_sum ")
        )
        assert float(sum_line.split(" ")[1]) == pytest.approx(5000.034)

    def test_bucket_bounds_match_histogram_layout(self):
        context = ExecutionContext(seed=0)
        context.telemetry.observe("probe", 0.002)
        text = prometheus_text(context.metrics)
        for bound in DEFAULT_LATENCY_BUCKETS:
            assert f'repro_probe_seconds_bucket{{le="{bound:g}"}}' in text


class TestLenientEventLoading:
    def _write(self, tmp_path, lines):
        path = tmp_path / "events.jsonl"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path

    def test_strict_loader_raises_on_corrupt_line(self, tmp_path):
        from repro.runtime.telemetry import load_events_lenient

        path = self._write(
            tmp_path, ['{"kind": "counter", "name": "x"}', "garbage{{{"]
        )
        with pytest.raises(ConfigurationError):
            load_events(path)
        events, dropped = load_events_lenient(path)
        assert dropped == 1
        assert [e["kind"] for e in events] == ["counter"]

    def test_lenient_loader_drops_truncated_tail_and_non_objects(self, tmp_path):
        from repro.runtime.telemetry import load_events_lenient

        path = self._write(
            tmp_path,
            [
                '{"kind": "span_open", "name": "a"}',
                "42",  # valid JSON, not an event object
                '{"kind": "span_close", "na',  # truncated mid-write
            ],
        )
        events, dropped = load_events_lenient(path)
        assert dropped == 2
        assert len(events) == 1

    def test_lenient_loader_clean_file_drops_nothing(self, tmp_path):
        from repro.runtime.telemetry import load_events_lenient

        path = self._write(tmp_path, ['{"kind": "counter"}', "", '{"kind": "error"}'])
        events, dropped = load_events_lenient(path)
        assert dropped == 0 and len(events) == 2

    def test_render_report_footer_counts_dropped_lines(self):
        from repro.runtime.telemetry import render_report as render

        text = render([{"kind": "counter", "name": "x", "delta": 1}], dropped_lines=2)
        assert "skipped 2 corrupt event-log line(s)" in text
        clean = render([{"kind": "counter", "name": "x", "delta": 1}])
        assert "corrupt" not in clean
