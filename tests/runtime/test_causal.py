"""Causal-chain reconstruction and critical paths, against a golden log.

``golden/causal_events.jsonl`` is a committed event log covering the
full cross-process chain: an appender run (``ingest.append`` trace with
its ``wal_append`` link), a follower apply (``ingest.apply`` trace whose
``wal_apply`` link carries the appender's traceparent), a submitter
trace, and a pooled request trace (``parent_traceparent`` back to the
submitter) that logged a provenance stamp at watermark 3 — plus one
static-snapshot request with no watermark.  The reconstruction must be
byte-stable against ``golden/causal_chain.txt``.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.runtime.telemetry.causal import (
    causal_chain,
    critical_path,
    critical_path_summaries,
    render_causal_chain,
)
from repro.runtime.telemetry.events import load_events
from repro.runtime.telemetry.exporters import reconstruct_traces, render_report

GOLDEN = Path(__file__).parent / "golden"
LOG = GOLDEN / "causal_events.jsonl"

REQUEST = "T00000006"  # the pooled domd_query request trace
SUBMITTER = "T00000005"
APPLY = "T00000003"
APPEND = "T00000001"
SNAPSHOT = "T0000000a"  # served without a stream upstream


@pytest.fixture(scope="module")
def events():
    return load_events(LOG)


class TestCausalChain:
    def test_chain_reaches_the_originating_wal_append(self, events):
        chain = causal_chain(events, REQUEST)
        assert chain["found"]
        assert chain["parents"] == [SUBMITTER]
        assert chain["watermark"] == 3
        assert chain["complete"]
        (entry,) = chain["ingest"]
        assert entry["trace_id"] == APPLY
        assert (entry["first_seq"], entry["last_seq"]) == (1, 3)
        assert entry["spans"]["name"] == "ingest.apply"
        append = entry["append"]
        assert append["trace_id"] == APPEND
        assert (append["first_seq"], append["last_seq"]) == (1, 3)
        assert append["wal"] == "wal.jsonl"
        assert append["synced"] is True

    def test_provenance_stamp_survives_reconstruction(self, events):
        stamp = causal_chain(events, REQUEST)["provenance"]
        assert stamp["model_hash"] == "m" * 12
        assert stamp["config_hash"] == "c" * 12
        assert stamp["feature_key"] == "ds01/cfg02/t03"
        assert stamp["planner_design"] == "avl"

    def test_rendered_chain_matches_golden(self, events):
        rendered = render_causal_chain(causal_chain(events, REQUEST)) + "\n"
        assert rendered == (GOLDEN / "causal_chain.txt").read_text()

    def test_static_snapshot_is_complete_without_a_watermark(self, events):
        chain = causal_chain(events, SNAPSHOT)
        assert chain["found"]
        assert chain["watermark"] is None
        assert chain["ingest"] == []
        assert chain["complete"]
        assert "static snapshot" in render_causal_chain(chain)

    def test_unknown_trace_reports_not_found(self, events):
        chain = causal_chain(events, "Tdeadbeef")
        assert not chain["found"]
        assert not chain["complete"]
        assert "not found" in render_causal_chain(chain)

    def test_apply_trace_alone_is_an_incomplete_chain(self, events):
        # the apply trace has no provenance of its own: walkable, but it
        # is not a served response and must not claim completeness
        chain = causal_chain(events, APPLY)
        assert chain["found"]
        assert not chain["complete"]

    def test_live_equals_offline(self, events):
        # reconstruction is a pure function of the event stream: feeding
        # the same dicts a hub would buffer live yields the same chain
        live = [dict(event) for event in events]
        assert causal_chain(live, REQUEST) == causal_chain(events, REQUEST)


class TestCriticalPath:
    def test_descends_into_the_slowest_child(self, events):
        trace = {
            t["trace_id"]: t for t in reconstruct_traces(events)
        }[REQUEST]
        summary = critical_path(trace)
        assert [step["name"] for step in summary["path"]] == [
            "service.domd_query",
            "query.sweep",
        ]
        assert summary["seconds"] == pytest.approx(0.05)

    def test_self_time_attribution_by_component(self, events):
        trace = {
            t["trace_id"]: t for t in reconstruct_traces(events)
        }[REQUEST]
        components = critical_path(trace)["components"]
        # 50 ms total - (30 + 10) ms children = 10 ms of service self-time
        assert components["service"] == pytest.approx(0.01)
        assert components["query"] == pytest.approx(0.03)
        assert components["features"] == pytest.approx(0.01)

    def test_summaries_sorted_slowest_first(self, events):
        summaries = critical_path_summaries(events)
        assert [s["trace_id"] for s in summaries] == [
            REQUEST,
            SNAPSHOT,
            APPLY,
            APPEND,
        ]
        assert critical_path_summaries(events, min_seconds=0.01) == summaries[:2]

    def test_report_includes_the_critical_path_table(self, events):
        report = render_report(events)
        assert "Critical paths" in report
        assert "service.domd_query > query.sweep" in report


class TestCliTelemetryTrace:
    def run(self, *argv):
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_text_output_reaches_the_append(self):
        code, text = self.run("telemetry", "trace", REQUEST, "--events", str(LOG))
        assert code == 0
        assert "chain complete" in text
        assert f"append {APPEND}" in text

    def test_json_output_is_the_chain_dict(self):
        code, text = self.run(
            "telemetry", "trace", REQUEST, "--events", str(LOG),
            "--format", "json",
        )
        assert code == 0
        chain = json.loads(text)
        assert chain["complete"] and chain["watermark"] == 3

    def test_unknown_trace_exits_nonzero(self):
        code, text = self.run(
            "telemetry", "trace", "Tdeadbeef", "--events", str(LOG)
        )
        assert code == 1
        assert "not found" in text

    def test_missing_trace_id_is_a_domain_error(self):
        code, text = self.run("telemetry", "trace", "--events", str(LOG))
        assert code == 1
        assert json.loads(text)["error"]["code"] == "domain_error"
