"""Time-series store: ring bounds, atomic ticks, concurrent access."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigurationError
from repro.runtime.telemetry.timeseries import (
    TimeSeriesStore,
    sample_gauge_values,
    timeseries_from_events,
)


class TestTimeSeriesStore:
    def test_record_and_series(self):
        store = TimeSeriesStore()
        store.record("a", 1.0, 10.0)
        store.record("a", 2.0, 20.0)
        store.record("b", 1.5, 5.0)
        assert store.series("a") == [(1.0, 10.0), (2.0, 20.0)]
        assert store.names() == ["a", "b"]
        assert store.values("a") == [10.0, 20.0]
        assert len(store) == 3
        assert store.total_recorded == 3

    def test_series_window_clipping(self):
        store = TimeSeriesStore()
        for t in range(10):
            store.record("x", float(t), float(t * t))
        assert store.values("x", since=7.0) == [49.0, 64.0, 81.0]
        assert store.values("x", until=1.0) == [0.0, 1.0]
        assert store.window("x", 2.0, now=9.0) == [49.0, 64.0, 81.0]

    def test_latest_and_missing(self):
        store = TimeSeriesStore()
        assert store.latest("nope") is None
        assert store.series("nope") == []
        store.record("x", 1.0, 1.0)
        assert store.latest("x") == (1.0, 1.0)

    def test_ring_bound_exact_counts(self):
        store = TimeSeriesStore(max_samples=128)
        for t in range(1000):
            store.record_many(float(t), {"a": 1.0, "b": 2.0})
        # Retention is bounded exactly at max_samples per series...
        assert store.counts() == {"a": 128, "b": 128}
        # ...while the lifetime counter still saw every point.
        assert store.total_recorded == 2000
        # The ring keeps the newest points.
        assert store.series("a")[0][0] == 872.0
        assert store.series("a")[-1][0] == 999.0

    def test_record_many_is_one_tick(self):
        store = TimeSeriesStore()
        store.record_many(5.0, {"a": 1.0, "b": 2.0, "c": 3.0})
        latest = store.latest_many(["a", "b", "c"])
        assert latest == {"a": (5.0, 1.0), "b": (5.0, 2.0), "c": (5.0, 3.0)}

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            TimeSeriesStore(max_samples=0)

    def test_concurrent_writers_exact_totals(self):
        store = TimeSeriesStore(max_samples=4096)
        n_threads, n_ticks = 8, 200

        def writer(index: int) -> None:
            for tick in range(n_ticks):
                store.record_many(
                    float(tick), {f"w{index}.a": 1.0, f"w{index}.b": 2.0}
                )

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert store.total_recorded == n_threads * n_ticks * 2
        counts = store.counts()
        for i in range(n_threads):
            assert counts[f"w{i}.a"] == n_ticks
            assert counts[f"w{i}.b"] == n_ticks

    def test_no_torn_snapshots_under_concurrency(self):
        """A tick writes x and y together; readers must never observe
        x and y from *different* ticks (same-ts pairs only)."""
        store = TimeSeriesStore()
        stop = threading.Event()
        torn: list[tuple] = []

        def writer() -> None:
            tick = 0
            while not stop.is_set():
                tick += 1
                store.record_many(float(tick), {"x": float(tick), "y": float(-tick)})

        def reader() -> None:
            while not stop.is_set():
                latest = store.latest_many(["x", "y"])
                if len(latest) == 2:
                    (tx, vx), (ty, vy) = latest["x"], latest["y"]
                    if tx != ty or vx != -vy:
                        torn.append((latest["x"], latest["y"]))

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for t in threads:
            t.start()
        import time

        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join()
        assert torn == []


class TestEventReconstruction:
    def test_round_trip_via_sample_events(self):
        events = [
            {"ts": 1.0, "kind": "sample", "metrics": {"a": 1.0, "b": 2.0}},
            {"ts": 2.0, "kind": "span_close", "name": "noise", "seconds": 0.1},
            {"ts": 2.0, "kind": "sample", "metrics": {"a": 3.0}},
        ]
        store = timeseries_from_events(events)
        assert store.series("a") == [(1.0, 1.0), (2.0, 3.0)]
        assert store.series("b") == [(1.0, 2.0)]

    def test_ignores_malformed_samples(self):
        events = [
            {"ts": 1.0, "kind": "sample"},  # no metrics
            {"kind": "sample", "metrics": {"a": 1.0}},  # no ts
            {"ts": 2.0, "kind": "sample", "metrics": {"a": "NaN-ish", "b": 1.0}},
            {"ts": 3.0, "kind": "sample", "metrics": {"flag": True, "c": 2}},
        ]
        store = timeseries_from_events(events)
        assert store.series("a") == []
        assert store.series("b") == [(2.0, 1.0)]
        # Booleans are not gauges on this path (the sampler never emits
        # them); ints coerce to floats.
        assert store.series("flag") == []
        assert store.series("c") == [(3.0, 2.0)]


class TestGaugeFlattening:
    def test_flattens_numeric_and_bool(self):
        raw = {
            "workers": 4,
            "saturated": True,
            "designs": ["avl"],
            "rebuilds": {"avl": 3, "skip": "x"},
            "age": 1.5,
            "none": None,
        }
        flat = sample_gauge_values(raw, "pool")
        assert flat == {
            "pool.workers": 4.0,
            "pool.saturated": 1.0,
            "pool.rebuilds.avl": 3.0,
            "pool.age": 1.5,
        }
