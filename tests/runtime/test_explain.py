"""EXPLAIN/ANALYZE: plan capture, golden plans, cost residuals, doctor.

The golden files under ``tests/runtime/golden/`` pin the redacted
(``***``-timed) EXPLAIN rendering per backend and mode: operator order,
call counts and row counts are deterministic for the fixed-seed table,
so any change to the plan shape shows up as a readable diff.  Regenerate
them by running this module's ``_engine``/``SWEEP`` setup through
``plan.format(redact_timings=True)``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.index import StatusQuery, StatusQueryEngine
from repro.runtime import (
    ExecutionContext,
    doctor_report,
    explain_point,
    explain_sweep,
    plan_from_report,
)
from repro.table import ColumnTable

GOLDEN_DIR = Path(__file__).parent / "golden"
DESIGNS = ("naive", "avl", "interval", "sorted_array")
SWEEP = [0.0, 25.0, 50.0, 75.0, 100.0]

#: Engine-facing columns of the logical-time RCC table.
ENGINE_COLUMNS = ["rcc_type", "swlin", "t_start", "t_end", "amount", "avail_id"]


def _rcc_table(n: int = 60) -> ColumnTable:
    rng = np.random.default_rng(11)
    starts = rng.uniform(0, 80, size=n)
    return ColumnTable(
        {
            "rcc_type": rng.choice(["G", "N", "NG"], size=n),
            "swlin": rng.choice(
                ["10000000", "11000000", "20000000", "21000000"], size=n
            ),
            "t_start": starts,
            "t_end": starts + rng.uniform(1, 40, size=n),
            "amount": rng.uniform(10, 500, size=n),
        }
    )


def _engine(design: str, context: ExecutionContext | None = None) -> StatusQueryEngine:
    return StatusQueryEngine(
        _rcc_table(), design=design, context=context or ExecutionContext(seed=0)
    )


@pytest.mark.parametrize("design", DESIGNS)
class TestGoldenPlans:
    def test_point_plan_matches_golden(self, design):
        plan = explain_point(_engine(design), StatusQuery(t_star=50.0)).plan
        expected = (GOLDEN_DIR / f"explain_{design}_point.txt").read_text()
        assert plan.format(redact_timings=True) + "\n" == expected

    def test_sweep_plan_matches_golden(self, design):
        plan = explain_sweep(_engine(design), SWEEP).plan
        expected = (GOLDEN_DIR / f"explain_{design}_sweep.txt").read_text()
        assert plan.format(redact_timings=True) + "\n" == expected

    def test_redacted_rendering_hides_every_timing(self, design):
        text = explain_point(_engine(design), StatusQuery(t_star=50.0)).plan.format(
            redact_timings=True
        )
        for line in text.splitlines():
            if line.startswith(("total", "cost model")):
                assert "***" in line
                assert not any(ch.isdigit() for ch in line.split("[")[0])


class TestPlanCapture:
    def test_point_plan_structure(self):
        explained = explain_point(_engine("avl"), StatusQuery(t_star=50.0))
        plan = explained.plan
        assert plan.mode == "point" and plan.design == "avl"
        assert plan.n_rccs == 60 and plan.n_timestamps == 1
        ops = {stats.op for stats in plan.operators}
        assert {"group_assignment", "index_lookup", "aggregate"} <= ops
        assert plan.total_seconds > 0

    def test_sweep_plan_structure(self):
        plan = explain_sweep(_engine("sorted_array"), SWEEP).plan
        ops = {stats.op: stats for stats in plan.operators}
        assert {"group_assignment", "stat_build", "advance", "aggregate"} <= set(ops)
        assert ops["advance"].calls == len(SWEEP)
        assert plan.incremental is True
        assert plan.notes == {"stat_reused": False}

    def test_explained_results_match_unexplained(self):
        query = StatusQuery(t_star=50.0)
        plain = _engine("interval").execute(query)
        explained = explain_point(_engine("interval"), query).results[0]
        assert explained.n_rows == plain.n_rows
        np.testing.assert_allclose(
            np.asarray(explained["n_active"]), np.asarray(plain["n_active"])
        )

    def test_auto_design_records_planner_decision(self):
        engine = _engine("auto")
        plan = explain_point(engine, StatusQuery(t_star=50.0)).plan
        assert plan.decision is not None
        assert plan.design == plan.decision.backend
        assert "auto chose" in plan.format(redact_timings=True)

    def test_pinned_design_has_no_decision(self):
        plan = explain_point(_engine("naive"), StatusQuery(t_star=50.0)).plan
        assert plan.decision is None
        assert "design pinned by caller" in plan.format(redact_timings=True)

    def test_as_dict_is_json_serialisable(self):
        plan = explain_sweep(_engine("auto"), SWEEP).plan
        payload = json.loads(json.dumps(plan.as_dict()))
        assert payload["mode"] == "sweep"
        assert payload["planner"]["backend"] == plan.design
        assert len(payload["operators"]) == len(plan.operators)
        assert "cost_model" in payload

    def test_plain_execution_opens_no_operator_spans(self):
        engine = _engine("avl")
        engine.execute(StatusQuery(t_star=50.0))
        engine.execute_sweep(SWEEP)
        names = engine.context.metrics.report().span_names()
        assert not any(name.startswith("op.") for name in names)

    def test_recorder_detaches_after_explain(self):
        engine = _engine("avl")
        explain_point(engine, StatusQuery(t_star=50.0))
        assert engine._recorder is None
        plan = explain_point(engine, StatusQuery(t_star=25.0)).plan
        # the second explain starts from a fresh recorder, not accumulated
        ops = {stats.op: stats for stats in plan.operators}
        assert ops["aggregate"].calls == 1


class TestOperatorCoverage:
    """Acceptance: operator wall times sum to within 10% of the span total."""

    @pytest.fixture(scope="class")
    def paper_rccs(self, full_dataset):
        return full_dataset.rccs_with_logical_times().select(ENGINE_COLUMNS)

    @pytest.mark.parametrize("design", ["avl", "sorted_array"])
    def test_point_coverage_at_paper_scale(self, paper_rccs, design):
        engine = StatusQueryEngine(
            paper_rccs, design=design, context=ExecutionContext(seed=0)
        )
        plan = explain_point(engine, StatusQuery(t_star=55.0)).plan
        assert plan.operator_coverage() >= 0.9

    def test_sweep_coverage_at_paper_scale(self, paper_rccs):
        engine = StatusQueryEngine(
            paper_rccs, design="sorted_array", context=ExecutionContext(seed=0)
        )
        plan = explain_sweep(engine, [float(t) for t in range(0, 101, 10)]).plan
        assert plan.operator_coverage() >= 0.9


class TestCostResiduals:
    def test_point_residual_metrics_emitted(self):
        context = ExecutionContext(seed=0)
        engine = StatusQueryEngine(_rcc_table(), design="avl", context=context)
        plan = explain_point(engine, StatusQuery(t_star=50.0)).plan
        assert plan.residual is not None
        assert plan.residual["predicted_seconds"] > 0
        assert plan.residual["actual_seconds"] == plan.total_seconds
        assert context.metrics.counters["planner.residuals"] == 1
        histogram = context.telemetry.histogram("planner_calibration.avl")
        assert histogram is not None and histogram.count == 1
        events = [
            e for e in context.telemetry.events() if e.get("kind") == "planner_residual"
        ]
        assert len(events) == 1
        assert events[0]["backend"] == "avl" and events[0]["mode"] == "point"

    def test_sweep_residual_uses_sweep_spec(self):
        context = ExecutionContext(seed=0)
        engine = StatusQueryEngine(
            _rcc_table(), design="sorted_array", context=context
        )
        explain_sweep(engine, SWEEP)
        events = [
            e for e in context.telemetry.events() if e.get("kind") == "planner_residual"
        ]
        assert events[0]["mode"] == "sweep"
        assert events[0]["n_timestamps"] == len(SWEEP)

    def test_residuals_accumulate_per_backend_histogram(self):
        context = ExecutionContext(seed=0)
        engine = StatusQueryEngine(_rcc_table(), design="naive", context=context)
        for t_star in (25.0, 50.0, 75.0):
            explain_point(engine, StatusQuery(t_star=t_star))
        assert context.metrics.counters["planner.residuals"] == 3
        histogram = context.telemetry.histogram("planner_calibration.naive")
        assert histogram is not None and histogram.count == 3


class TestPlanFromReport:
    def test_flattens_span_paths_and_counters(self):
        context = ExecutionContext(seed=0)
        with context.metrics.capture() as captured:
            with context.span("request.domd_query"):
                with context.span("estimator.query"):
                    pass
            context.counter("estimator.queries")
        plan = plan_from_report(captured.report)
        ops = {row["op"]: row for row in plan["operators"]}
        assert set(ops) == {
            "request.domd_query",
            "request.domd_query/estimator.query",
        }
        assert ops["request.domd_query"]["calls"] == 1
        assert plan["counters"]["estimator.queries"] == 1
        assert plan["total_seconds"] >= 0


class TestDoctorReport:
    def _measurements(self, **ratios):
        return {
            backend: {"measured": ratio, "modelled": 1.0, "ratio": ratio}
            for backend, ratio in ratios.items()
        }

    def test_flags_backends_outside_threshold_both_sides(self):
        measurements = self._measurements(
            avl=1.2, naive=5.0, sorted_array=0.2, interval=0.6
        )
        text, flagged = doctor_report(measurements, threshold=2.0)
        assert flagged == ["naive", "sorted_array"]
        assert "MISCALIBRATED" in text
        assert "re-fit the constants" in text

    def test_all_ok_within_threshold(self):
        text, flagged = doctor_report(self._measurements(avl=1.5, naive=0.8))
        assert flagged == []
        assert "all backends within" in text

    def test_threshold_must_exceed_one(self):
        with pytest.raises(ValueError):
            doctor_report(self._measurements(avl=1.0), threshold=1.0)
