"""QueryPlanner decision table, cost estimates and the index registry."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.index.avl_index import DualAvlIndex
from repro.index.sorted_array import SortedArrayIndex
from repro.runtime import (
    DEFAULT_COSTS,
    DEFAULT_REGISTRY,
    BackendCosts,
    IndexRegistry,
    QueryPlanner,
    WorkloadSpec,
)


class TestWorkloadSpec:
    def test_defaults(self):
        spec = WorkloadSpec(n_rccs=100)
        assert spec.n_timestamps == 1
        assert spec.mode == "point"
        assert spec.n_inserts == 0

    def test_rejects_negative_sizes(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(n_rccs=-1)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(n_rccs=10, n_inserts=-5)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError, match="mode"):
            WorkloadSpec(n_rccs=10, mode="streaming")


class TestDecisionTable:
    """Pins the planner's default decisions per workload shape."""

    def setup_method(self):
        self.planner = QueryPlanner()

    def test_large_batch_sweep_picks_sorted_array(self):
        # nightly feature extraction: one big ascending sweep
        spec = WorkloadSpec(n_rccs=50_000, n_timestamps=11, mode="sweep")
        assert self.planner.choose(spec) == "sorted_array"

    def test_incremental_point_queries_pick_avl(self):
        # live deployment: point queries against a refreshed index
        spec = WorkloadSpec(n_rccs=50_000, n_timestamps=200, mode="point", n_inserts=500)
        assert self.planner.choose(spec) == "avl"

    def test_one_shot_query_picks_sorted_array(self):
        spec = WorkloadSpec(n_rccs=1_000, n_timestamps=1, mode="point")
        assert self.planner.choose(spec) == "sorted_array"

    def test_decisions_differ_across_shapes(self):
        # the acceptance criterion: >= 2 workload shapes, different backends
        sweep = WorkloadSpec(n_rccs=50_000, n_timestamps=11, mode="sweep")
        live = WorkloadSpec(n_rccs=50_000, n_timestamps=200, mode="point", n_inserts=500)
        chosen = {self.planner.choose(sweep), self.planner.choose(live)}
        assert chosen == {"sorted_array", "avl"}

    def test_plan_reports_all_backends(self):
        decision = self.planner.plan(WorkloadSpec(n_rccs=1_000))
        assert set(decision.estimated_seconds) == set(DEFAULT_COSTS)
        best = min(decision.estimated_seconds.values())
        assert decision.estimated_seconds[decision.backend] == best

    def test_as_dict_is_json_shaped(self):
        decision = self.planner.plan(WorkloadSpec(n_rccs=10, mode="sweep", n_timestamps=3))
        payload = decision.as_dict()
        assert payload["backend"] == decision.backend
        assert payload["spec"]["mode"] == "sweep"
        assert set(payload["estimated_seconds"]) == set(DEFAULT_COSTS)


class TestEstimates:
    def test_estimate_grows_with_n(self):
        planner = QueryPlanner()
        small = planner.estimate("avl", WorkloadSpec(n_rccs=100))
        big = planner.estimate("avl", WorkloadSpec(n_rccs=100_000))
        assert big > small > 0

    def test_sweep_batches_cost_less_than_points(self):
        planner = QueryPlanner()
        sweep = planner.estimate(
            "sorted_array", WorkloadSpec(n_rccs=10_000, n_timestamps=11, mode="sweep")
        )
        points = planner.estimate(
            "sorted_array", WorkloadSpec(n_rccs=10_000, n_timestamps=11, mode="point")
        )
        assert sweep < points

    def test_inserts_penalise_array_designs(self):
        planner = QueryPlanner()
        still = planner.estimate("sorted_array", WorkloadSpec(n_rccs=10_000))
        live = planner.estimate(
            "sorted_array", WorkloadSpec(n_rccs=10_000, n_inserts=1_000)
        )
        assert live > still

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigurationError, match="no calibration"):
            QueryPlanner().estimate("btree", WorkloadSpec(n_rccs=10))

    def test_with_costs_overrides_one_backend(self):
        free = BackendCosts(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        planner = QueryPlanner().with_costs(naive=free)
        spec = WorkloadSpec(n_rccs=1_000_000, n_timestamps=50, mode="point")
        assert planner.choose(spec) == "naive"

    def test_scale_costs_is_uniform(self):
        scaled = QueryPlanner.scale_costs(DEFAULT_COSTS["avl"], 2.0)
        assert scaled.build_per_event == DEFAULT_COSTS["avl"].build_per_event * 2
        assert scaled.insert_per_log == DEFAULT_COSTS["avl"].insert_per_log * 2


class TestIndexRegistry:
    def test_default_registry_names(self):
        assert set(DEFAULT_REGISTRY.names()) == {
            "naive",
            "avl",
            "interval",
            "sorted_array",
        }

    def test_get_resolves_alias(self):
        assert DEFAULT_REGISTRY.get("sorted") is SortedArrayIndex
        assert DEFAULT_REGISTRY.get("avl") is DualAvlIndex

    def test_get_unknown_raises(self):
        with pytest.raises(ConfigurationError, match="unknown index backend"):
            DEFAULT_REGISTRY.get("btree")

    def test_create_builds_a_working_index(self):
        starts = np.array([0.0, 10.0, 20.0])
        ends = np.array([5.0, 30.0, 25.0])
        ids = np.arange(3)
        index = DEFAULT_REGISTRY.create("sorted_array", starts, ends, ids)
        assert np.array_equal(index.active_ids(12.0), [1])

    def test_register_custom_backend(self):
        registry = IndexRegistry()

        class Custom(SortedArrayIndex):
            name = "custom"

        registry.register("custom", Custom)
        assert registry.get("custom") is Custom
        assert "custom" in registry.names()


class TestCalibrationInvariance:
    """A calibration that rescales every backend uniformly (same host
    speedup everywhere) must not change any planning decision — the
    decision table is a function of cost *ratios*, not absolute speed."""

    def _specs(self):
        return [
            WorkloadSpec(n_rccs=n, n_timestamps=t, mode=mode, n_inserts=i)
            for n in (100, 10_000, 1_000_000)
            for t, mode in ((1, "point"), (11, "sweep"), (500, "sweep"))
            for i in (0, 1_000)
        ]

    def test_uniform_scaling_preserves_the_decision_table(self):
        planner = QueryPlanner()
        scaled = planner.with_costs(
            **{
                backend: QueryPlanner.scale_costs(costs, 3.7)
                for backend, costs in planner.costs.items()
            }
        )
        for spec in self._specs():
            assert planner.choose(spec) == scaled.choose(spec), spec

    def test_uniform_scaling_scales_estimates_linearly(self):
        planner = QueryPlanner()
        scaled = planner.with_costs(
            **{
                backend: QueryPlanner.scale_costs(costs, 3.7)
                for backend, costs in planner.costs.items()
            }
        )
        spec = WorkloadSpec(n_rccs=10_000, n_timestamps=11, mode="sweep")
        for backend in planner.costs:
            assert scaled.estimate(backend, spec) == pytest.approx(
                3.7 * planner.estimate(backend, spec)
            )

    def test_estimate_components_sum_to_total(self):
        planner = QueryPlanner()
        spec = WorkloadSpec(n_rccs=5_000, n_timestamps=11, mode="sweep", n_inserts=3)
        for backend in planner.costs:
            parts = planner.estimate_components(backend, spec)
            assert parts["total"] == pytest.approx(
                parts["build"] + parts["query"] + parts["insert"]
            )
            assert planner.estimate(backend, spec) == parts["total"]


class TestCalibratePlanner:
    """The per-phase doctor probe (``repro.bench.calibrate_planner``)."""

    @pytest.fixture(scope="class")
    def calibration(self, small_dataset):
        from repro.bench import calibrate_planner

        return calibrate_planner(small_dataset, factor=1)

    def test_measurements_carry_per_phase_ratios(self, calibration):
        _, measurements = calibration
        assert set(measurements) == set(DEFAULT_COSTS)
        for row in measurements.values():
            # doctor-report keys plus the ratios the re-fit actually used
            assert {
                "measured", "modelled", "ratio", "build_ratio", "query_ratio"
            } <= row.keys()
            assert row["build_ratio"] > 0
            assert row["query_ratio"] > 0
            assert row["measured"] > 0

    def test_refit_rescales_phases_independently(self, calibration):
        calibrated, measurements = calibration
        for backend, row in measurements.items():
            before = DEFAULT_COSTS[backend]
            after = calibrated.costs[backend]
            assert after.build_per_event == pytest.approx(
                before.build_per_event * row["build_ratio"]
            )
            for name in (
                "query_base", "query_per_log", "query_per_scan", "query_per_result"
            ):
                assert getattr(after, name) == pytest.approx(
                    getattr(before, name) * row["query_ratio"]
                )

    def test_refit_leaves_insert_constants_untouched(self, calibration):
        calibrated, _ = calibration
        for backend, before in DEFAULT_COSTS.items():
            after = calibrated.costs[backend]
            assert after.insert_per_log == before.insert_per_log
            assert after.insert_per_event == before.insert_per_event
