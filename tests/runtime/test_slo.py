"""SLO engine: burn-rate arithmetic, multi-window breaches, budgets."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.runtime.telemetry.slo import (
    BurnRateRule,
    SloEngine,
    SloObjective,
    default_objectives,
)
from repro.runtime.telemetry.timeseries import TimeSeriesStore


def make_engine(
    threshold: float = 0.5,
    target: float = 0.9,
    rules: tuple[BurnRateRule, ...] = (BurnRateRule(10.0, 30.0, 2.0),),
):
    store = TimeSeriesStore()
    objective = SloObjective(
        name="lat",
        series="s",
        threshold=threshold,
        target=target,
        rules=rules,
    )
    return SloEngine([objective], store), store, objective


class TestObjective:
    def test_budget_and_goodness(self):
        _, _, objective = make_engine(threshold=0.5, target=0.9)
        assert objective.budget == pytest.approx(0.1)
        assert objective.is_good(0.5)
        assert not objective.is_good(0.51)

    def test_ge_comparison(self):
        objective = SloObjective(
            name="uptime", series="s", threshold=1.0, comparison="ge"
        )
        assert objective.is_good(1.0)
        assert not objective.is_good(0.9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SloObjective(name="x", series="s", threshold=1.0, comparison="gt")
        with pytest.raises(ConfigurationError):
            SloObjective(name="x", series="s", threshold=1.0, target=1.0)
        with pytest.raises(ConfigurationError):
            SloObjective(name="x", series="s", threshold=1.0, rules=())
        with pytest.raises(ConfigurationError):
            BurnRateRule(30.0, 10.0, 2.0)  # short > long
        with pytest.raises(ConfigurationError):
            SloEngine(
                [
                    SloObjective(name="x", series="a", threshold=1.0),
                    SloObjective(name="x", series="b", threshold=1.0),
                ],
                TimeSeriesStore(),
            )


class TestBurnRates:
    def test_no_samples_no_breach(self):
        engine, _store, _objective = make_engine()
        [verdict] = engine.evaluate(now=100.0)
        assert not verdict["breached"]
        assert verdict["windows"][0]["burn_short"] == 0.0
        assert verdict["samples_total"] == 0

    def test_burn_rate_arithmetic(self):
        # Budget 0.1; half the window's samples bad -> burn = 0.5/0.1 = 5.
        engine, store, _objective = make_engine(target=0.9)
        for i in range(10):
            value = 1.0 if i % 2 == 0 else 0.0  # threshold 0.5 -> half bad
            store.record("s", 100.0 + i, value)
        [verdict] = engine.evaluate(now=109.0)
        window = verdict["windows"][0]
        assert window["burn_short"] == pytest.approx(5.0)
        assert window["burn_long"] == pytest.approx(5.0)
        assert window["breached"]  # 5 >= threshold 2
        assert verdict["breached"]

    def test_breach_requires_both_windows(self):
        # Long window healthy history, short window all bad: the long
        # window's burn stays below threshold, so no breach (the
        # "problem is real" half of the multi-window pattern).
        engine, store, _objective = make_engine(
            target=0.9, rules=(BurnRateRule(5.0, 60.0, 2.0),)
        )
        for i in range(55):
            store.record("s", 100.0 + i, 0.0)  # good
        for i in range(5):
            store.record("s", 155.0 + i, 1.0)  # bad burst
        # Evaluate at 159.5 so the 5s short window holds only the burst.
        [verdict] = engine.evaluate(now=159.5)
        window = verdict["windows"][0]
        assert window["burn_short"] == pytest.approx(10.0)
        assert window["burn_long"] < 2.0
        assert not verdict["breached"]

    def test_recovery_clears_breach(self):
        engine, store, _objective = make_engine(
            target=0.9, rules=(BurnRateRule(5.0, 10.0, 2.0),)
        )
        for i in range(10):
            store.record("s", 100.0 + i, 1.0)  # all bad
        [verdict] = engine.evaluate(now=109.0)
        assert verdict["breached"]
        # Fresh good samples; evaluate later so the short window holds
        # only good points (delta histogram semantics upstream make the
        # series decay the same way).
        for i in range(10):
            store.record("s", 110.0 + i, 0.0)
        [verdict] = engine.evaluate(now=119.0)
        assert not verdict["windows"][0]["breached"]


class TestBudgetAccounting:
    def test_cumulative_budget_spend(self):
        engine, store, _objective = make_engine(target=0.9)
        for i in range(10):
            store.record("s", 100.0 + i, 1.0 if i < 2 else 0.0)
        [verdict] = engine.evaluate(now=109.0)
        assert verdict["samples_total"] == 10
        assert verdict["bad_total"] == 2
        assert verdict["bad_delta"] == 2
        # 2 bad of 10 samples against a 10% budget -> 200% spent.
        assert verdict["budget_spent"] == pytest.approx(2.0)
        # Re-evaluating without new samples adds nothing.
        [verdict] = engine.evaluate(now=109.0)
        assert verdict["bad_delta"] == 0
        assert verdict["samples_total"] == 10


class TestDefaultObjectives:
    def test_stock_objectives(self):
        objectives = default_objectives()
        assert [o.name for o in objectives] == ["request_latency", "error_rate"]
        assert objectives[0].series == "hist.span.request.p99"
        objectives = default_objectives(include_ingest=True)
        assert [o.name for o in objectives[-2:]] == ["watermark_lag", "freshness"]
        assert objectives[-2].series == "ingest.lag_events"
        assert objectives[-2].target == pytest.approx(0.95)
        assert objectives[-1].series == "ingest.freshness_lag_seconds"
        assert objectives[-1].threshold == pytest.approx(5.0)
        assert objectives[-1].target == pytest.approx(0.95)

    def test_freshness_threshold_knob(self):
        objectives = default_objectives(include_ingest=True, freshness_lag_s=0.25)
        assert objectives[-1].threshold == pytest.approx(0.25)

    def test_latency_threshold_knob(self):
        [latency, _err] = default_objectives(latency_threshold_s=0.123)
        assert latency.threshold == pytest.approx(0.123)
