"""ArtifactCache LRU semantics and content fingerprinting."""

import numpy as np
import pytest

from repro.runtime import (
    ArtifactCache,
    MetricsSink,
    fingerprint_array,
    fingerprint_bytes,
    fingerprint_of,
)


class TestFingerprints:
    def test_bytes_digest_is_stable_and_length_prefixed(self):
        assert fingerprint_bytes(b"ab", b"c") == fingerprint_bytes(b"ab", b"c")
        # chunk boundaries matter: ("ab","c") != ("a","bc")
        assert fingerprint_bytes(b"ab", b"c") != fingerprint_bytes(b"a", b"bc")

    def test_array_fingerprint_sensitive_to_content_dtype_shape(self):
        a = np.arange(6, dtype=np.int64)
        assert fingerprint_array(a) == fingerprint_array(a.copy())
        assert fingerprint_array(a) != fingerprint_array(a.astype(np.float64))
        assert fingerprint_array(a) != fingerprint_array(a.reshape(2, 3))
        b = a.copy()
        b[0] = 99
        assert fingerprint_array(a) != fingerprint_array(b)

    def test_object_arrays_hash_by_string_values(self):
        strings = np.array(["G", "N", "NG"], dtype=object)
        assert fingerprint_array(strings) == fingerprint_array(strings.copy())
        other = np.array(["G", "N", "X"], dtype=object)
        assert fingerprint_array(strings) != fingerprint_array(other)

    def test_non_contiguous_view_equals_contiguous_copy(self):
        base = np.arange(20).reshape(4, 5)
        view = base[:, ::2]
        assert fingerprint_array(view) == fingerprint_array(view.copy())

    def test_fingerprint_of_mixes_part_types(self):
        key = fingerprint_of("grid", 3, np.arange(4))
        assert key == fingerprint_of("grid", 3, np.arange(4))
        assert key != fingerprint_of("grid", 4, np.arange(4))
        assert key != fingerprint_of("grid", 3, np.arange(5))


class TestArtifactCache:
    def test_get_or_build_builds_once(self):
        cache = ArtifactCache()
        calls = []

        def build():
            calls.append(1)
            return "tensor"

        assert cache.get_or_build("k", build) == "tensor"
        assert cache.get_or_build("k", build) == "tensor"
        assert len(calls) == 1

    def test_lru_eviction_drops_oldest(self):
        cache = ArtifactCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes the LRU entry
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert len(cache) == 2

    def test_metrics_counters(self):
        sink = MetricsSink()
        cache = ArtifactCache(max_entries=1, metrics=sink)
        cache.get_or_build("a", lambda: 1)  # miss
        cache.get_or_build("a", lambda: 1)  # hit
        cache.get_or_build("b", lambda: 2)  # miss + eviction of a
        assert sink.counter_value("cache.hits") == 1
        assert sink.counter_value("cache.misses") == 2
        assert sink.counter_value("cache.evictions") == 1

    def test_get_default_and_clear(self):
        cache = ArtifactCache()
        assert cache.get("missing") is None
        assert cache.get("missing", 42) == 42
        cache.put("k", 1)
        cache.clear()
        assert len(cache) == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ArtifactCache(max_entries=0)


class TestExtractionCaching:
    def test_extractor_reuses_tensor_for_same_inputs(self, small_dataset):
        from repro.features.transform import StatusFeatureExtractor
        from repro.runtime import ExecutionContext

        context = ExecutionContext()
        t_stars = [0.0, 50.0, 100.0]
        first = StatusFeatureExtractor(
            small_dataset, t_stars, context=context
        ).extract()
        second = StatusFeatureExtractor(
            small_dataset, t_stars, context=context
        ).extract()
        assert second is first
        assert context.metrics.counter_value("cache.hits") == 1

    def test_different_timeline_misses(self, small_dataset):
        from repro.features.transform import StatusFeatureExtractor
        from repro.runtime import ExecutionContext

        context = ExecutionContext()
        first = StatusFeatureExtractor(
            small_dataset, [0.0, 100.0], context=context
        ).extract()
        other = StatusFeatureExtractor(
            small_dataset, [0.0, 50.0, 100.0], context=context
        ).extract()
        assert other is not first
        assert context.metrics.counter_value("cache.misses") == 2
