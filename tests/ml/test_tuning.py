"""Tests for the TPE/SMBO hyperparameter tuner."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ml import ChoiceParam, IntParam, TpeTuner, UniformParam, default_gbm_space


class TestParams:
    def test_uniform_sampling_in_bounds(self, rng):
        param = UniformParam(2.0, 5.0)
        for _ in range(50):
            assert 2.0 <= param.sample(rng) <= 5.0

    def test_log_uniform_sampling(self, rng):
        param = UniformParam(0.001, 1.0, log=True)
        samples = [param.sample(rng) for _ in range(200)]
        assert min(samples) >= 0.001
        # log sampling puts plenty of mass below the arithmetic midpoint
        assert np.median(samples) < 0.5

    def test_uniform_internal_roundtrip(self):
        param = UniformParam(1.0, 100.0, log=True)
        assert param.from_internal(param.to_internal(10.0)) == pytest.approx(10.0)

    def test_uniform_clips(self):
        param = UniformParam(0.0, 1.0)
        assert param.from_internal(5.0) == 1.0
        assert param.from_internal(-5.0) == 0.0

    def test_int_param(self, rng):
        param = IntParam(1, 5)
        for _ in range(30):
            value = param.sample(rng)
            assert isinstance(value, int) and 1 <= value <= 5
        assert param.from_internal(3.6) == 4
        assert param.from_internal(99.0) == 5

    def test_choice_param(self, rng):
        param = ChoiceParam(("a", "b", "c"))
        assert param.sample(rng) in ("a", "b", "c")
        assert param.from_internal(param.to_internal("b")) == "b"

    def test_invalid_bounds(self):
        with pytest.raises(ConfigurationError):
            UniformParam(5.0, 2.0)
        with pytest.raises(ConfigurationError):
            UniformParam(-1.0, 1.0, log=True)
        with pytest.raises(ConfigurationError):
            IntParam(5, 2)
        with pytest.raises(ConfigurationError):
            ChoiceParam(())


class TestTuner:
    def quadratic_space(self):
        return {"x": UniformParam(-10.0, 10.0), "y": UniformParam(-10.0, 10.0)}

    def test_finds_near_optimum(self):
        tuner = TpeTuner(self.quadratic_space(), seed=3)
        result = tuner.optimize(lambda p: (p["x"] - 1) ** 2 + (p["y"] + 2) ** 2, 80)
        assert result.best_value < 1.5

    def test_beats_pure_random_on_average(self):
        objective = lambda p: (p["x"] - 3) ** 2 + (p["y"] - 3) ** 2  # noqa: E731
        tpe_scores, random_scores = [], []
        for seed in range(5):
            tpe = TpeTuner(self.quadratic_space(), seed=seed).optimize(objective, 50)
            rng = np.random.default_rng(seed)
            random_best = min(
                objective({"x": rng.uniform(-10, 10), "y": rng.uniform(-10, 10)})
                for _ in range(50)
            )
            tpe_scores.append(tpe.best_value)
            random_scores.append(random_best)
        assert np.mean(tpe_scores) <= np.mean(random_scores) * 1.5

    def test_deterministic(self):
        objective = lambda p: p["x"] ** 2  # noqa: E731
        a = TpeTuner({"x": UniformParam(-5, 5)}, seed=7).optimize(objective, 30)
        b = TpeTuner({"x": UniformParam(-5, 5)}, seed=7).optimize(objective, 30)
        assert a.best_params == b.best_params

    def test_history_monotone_nonincreasing(self):
        tuner = TpeTuner(self.quadratic_space(), seed=1)
        result = tuner.optimize(lambda p: p["x"] ** 2 + p["y"] ** 2, 40)
        history = result.history()
        assert (np.diff(history) <= 1e-12).all()
        assert len(result.trials) == 40

    def test_categorical_dimension_converges(self):
        space = {
            "k": ChoiceParam(("bad", "good")),
            "x": UniformParam(-1.0, 1.0),
        }
        tuner = TpeTuner(space, seed=2)
        result = tuner.optimize(
            lambda p: (0.0 if p["k"] == "good" else 10.0) + p["x"] ** 2, 60
        )
        assert result.best_params["k"] == "good"
        chosen = [t.params["k"] for t in result.trials[-20:]]
        assert chosen.count("good") > 10

    def test_int_dimension(self):
        space = {"n": IntParam(1, 100)}
        result = TpeTuner(space, seed=4).optimize(lambda p: abs(p["n"] - 42), 60)
        assert abs(result.best_params["n"] - 42) <= 5

    def test_nan_objective_treated_as_inf(self):
        space = {"x": UniformParam(0.0, 1.0)}
        result = TpeTuner(space, seed=0).optimize(
            lambda p: float("nan") if p["x"] < 0.5 else p["x"], 30
        )
        assert result.best_value >= 0.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TpeTuner({}, seed=0)
        with pytest.raises(ConfigurationError):
            TpeTuner({"x": UniformParam(0, 1)}, gamma=1.5)
        tuner = TpeTuner({"x": UniformParam(0, 1)})
        with pytest.raises(ConfigurationError):
            tuner.optimize(lambda p: 0.0, 0)

    def test_default_gbm_space_keys(self):
        space = default_gbm_space()
        assert {"n_estimators", "learning_rate", "max_depth"} <= set(space)
