"""Tests for evaluation metrics, including the paper's percentile MAE."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.ml import mae, mae_at_percentile, metric_suite, mse, r2, rmse

y = np.array([0.0, 10.0, 20.0, 30.0])
pred = np.array([1.0, 12.0, 17.0, 40.0])  # abs errors 1, 2, 3, 10


class TestPointMetrics:
    def test_mae(self):
        assert mae(y, pred) == 4.0

    def test_mse(self):
        assert mse(y, pred) == pytest.approx((1 + 4 + 9 + 100) / 4)

    def test_rmse(self):
        assert rmse(y, pred) == pytest.approx(np.sqrt(mse(y, pred)))

    def test_r2_perfect(self):
        assert r2(y, y) == 1.0

    def test_r2_mean_predictor_is_zero(self):
        assert r2(y, np.full(4, y.mean())) == pytest.approx(0.0)

    def test_r2_worse_than_mean_is_negative(self):
        assert r2(y, -y) < 0

    def test_r2_constant_target(self):
        constant = np.full(4, 5.0)
        assert r2(constant, constant) == 1.0
        assert r2(constant, constant + 1) == 0.0


class TestPercentileMae:
    def test_100th_equals_plain_mae(self):
        assert mae_at_percentile(y, pred, 100) == mae(y, pred)

    def test_trims_worst_tail(self):
        # 75% keeps the 3 best errors: (1+2+3)/3 = 2.
        assert mae_at_percentile(y, pred, 75) == pytest.approx(2.0)

    def test_50th(self):
        assert mae_at_percentile(y, pred, 50) == pytest.approx(1.5)

    def test_monotone_in_percentile(self):
        values = [mae_at_percentile(y, pred, p) for p in (25, 50, 75, 100)]
        assert values == sorted(values)

    def test_invalid_percentile(self):
        with pytest.raises(ConfigurationError):
            mae_at_percentile(y, pred, 0)
        with pytest.raises(ConfigurationError):
            mae_at_percentile(y, pred, 101)


class TestSuiteAndValidation:
    def test_suite_keys(self):
        suite = metric_suite(y, pred)
        assert set(suite) == {"mae_80", "mae_90", "mae_100", "mse", "rmse", "r2"}

    def test_suite_internal_consistency(self):
        suite = metric_suite(y, pred)
        assert suite["mae_80"] <= suite["mae_90"] <= suite["mae_100"]
        assert suite["rmse"] == pytest.approx(np.sqrt(suite["mse"]))

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            mae(np.zeros(3), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mae(np.array([]), np.array([]))


class TestProperties:
    paired = st.lists(
        st.tuples(
            st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
            st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        ),
        min_size=2,
        max_size=60,
    )

    @given(paired)
    @settings(max_examples=60, deadline=None)
    def test_mae_never_exceeds_rmse(self, pairs):
        yt = np.array([a for a, _ in pairs])
        yp = np.array([b for _, b in pairs])
        assert mae(yt, yp) <= rmse(yt, yp) + 1e-9

    @given(paired)
    @settings(max_examples=60, deadline=None)
    def test_metrics_nonnegative(self, pairs):
        yt = np.array([a for a, _ in pairs])
        yp = np.array([b for _, b in pairs])
        assert mae(yt, yp) >= 0
        assert mse(yt, yp) >= 0

    @given(paired, st.floats(min_value=-100, max_value=100, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_mae_shift_invariance(self, pairs, shift):
        yt = np.array([a for a, _ in pairs])
        yp = np.array([b for _, b in pairs])
        assert mae(yt + shift, yp + shift) == pytest.approx(mae(yt, yp), abs=1e-6)
