"""Tests for linear models (OLS + Elastic-Net coordinate descent)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotFittedError
from repro.ml import ElasticNet, LinearRegression


@pytest.fixture()
def linear_problem(rng):
    X = rng.normal(size=(100, 5))
    true_coef = np.array([3.0, -2.0, 0.0, 0.0, 1.0])
    y = X @ true_coef + 4.0
    return X, y, true_coef


class TestOls:
    def test_exact_recovery(self, linear_problem):
        X, y, coef = linear_problem
        model = LinearRegression().fit(X, y)
        np.testing.assert_allclose(model.coef_, coef, atol=1e-8)
        assert model.intercept_ == pytest.approx(4.0)

    def test_predict(self, linear_problem):
        X, y, _ = linear_problem
        model = LinearRegression().fit(X, y)
        np.testing.assert_allclose(model.predict(X), y, atol=1e-8)

    def test_no_intercept(self, rng):
        X = rng.normal(size=(50, 2))
        y = X @ np.array([1.0, 2.0])
        model = LinearRegression(fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0
        np.testing.assert_allclose(model.coef_, [1.0, 2.0], atol=1e-8)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            LinearRegression().predict(np.zeros((1, 1)))

    def test_misaligned(self):
        with pytest.raises(ConfigurationError):
            LinearRegression().fit(np.zeros((3, 1)), np.zeros(2))


class TestElasticNet:
    def test_tiny_alpha_approximates_ols(self, linear_problem):
        X, y, coef = linear_problem
        model = ElasticNet(alpha=1e-6, l1_ratio=0.5).fit(X, y)
        np.testing.assert_allclose(model.coef_, coef, atol=1e-2)

    def test_lasso_produces_sparsity(self, linear_problem):
        X, y, _ = linear_problem
        dense = ElasticNet(alpha=0.01, l1_ratio=1.0).fit(X, y)
        sparse = ElasticNet(alpha=2.0, l1_ratio=1.0).fit(X, y)
        assert sparse.n_nonzero() < dense.n_nonzero()

    def test_huge_alpha_kills_all_coefficients(self, linear_problem):
        X, y, _ = linear_problem
        model = ElasticNet(alpha=1e6, l1_ratio=1.0).fit(X, y)
        assert model.n_nonzero() == 0
        # Prediction degenerates to the target mean.
        np.testing.assert_allclose(model.predict(X), y.mean(), atol=1e-6)

    def test_ridge_shrinks_but_keeps_all(self, linear_problem):
        X, y, coef = linear_problem
        model = ElasticNet(alpha=5.0, l1_ratio=0.0).fit(X, y)
        nonzero_true = np.abs(coef) > 0
        assert (np.abs(model.coef_[nonzero_true]) < np.abs(coef[nonzero_true])).all()

    def test_standardize_handles_scale_differences(self, rng):
        X = np.column_stack([rng.normal(0, 1, 80), rng.normal(0, 1000, 80)])
        y = X[:, 0] + 0.001 * X[:, 1]
        model = ElasticNet(alpha=0.01, l1_ratio=0.5).fit(X, y)
        pred_error = np.abs(model.predict(X) - y).mean()
        assert pred_error < 0.2 * np.abs(y - y.mean()).mean()

    def test_constant_column_gets_zero_coef(self, rng):
        X = np.column_stack([rng.normal(size=50), np.full(50, 7.0)])
        y = 2 * X[:, 0]
        model = ElasticNet(alpha=0.01).fit(X, y)
        assert model.coef_[1] == 0.0

    def test_converges_and_reports_iterations(self, linear_problem):
        X, y, _ = linear_problem
        model = ElasticNet(alpha=0.1).fit(X, y)
        assert 1 <= model.n_iter_ <= model.max_iter

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            ElasticNet().predict(np.zeros((1, 1)))
        with pytest.raises(NotFittedError):
            ElasticNet().n_nonzero()

    def test_param_validation(self):
        with pytest.raises(ConfigurationError):
            ElasticNet(alpha=-1.0)
        with pytest.raises(ConfigurationError):
            ElasticNet(l1_ratio=1.5)

    def test_rejects_1d(self):
        with pytest.raises(ConfigurationError):
            ElasticNet().fit(np.zeros(5), np.zeros(5))
