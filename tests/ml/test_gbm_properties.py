"""Property-based tests for the GBM and tree substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import GbmParams, GradientBoostedTrees, RegressionTree, TreeParams


@st.composite
def small_regression(draw):
    n = draw(st.integers(10, 60))
    p = draw(st.integers(1, 5))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, p))
    coef = rng.normal(size=p)
    y = X @ coef + 0.1 * rng.normal(size=n)
    return X, y


class TestTreeProperties:
    @given(small_regression())
    @settings(max_examples=40, deadline=None)
    def test_contributions_always_sum_to_prediction(self, problem):
        X, y = problem
        g = -y  # squared loss at prediction 0
        h = np.ones_like(y)
        tree = RegressionTree(TreeParams(max_depth=4, min_samples_leaf=1)).fit(X, g, h)
        np.testing.assert_allclose(
            tree.contributions(X).sum(axis=1), tree.predict(X), atol=1e-8
        )

    @given(small_regression(), st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=40, deadline=None)
    def test_more_regularisation_shrinks_leaves(self, problem, lam):
        X, y = problem
        g = -y
        h = np.ones_like(y)
        loose = RegressionTree(TreeParams(reg_lambda=0.0, min_samples_leaf=1)).fit(X, g, h)
        tight = RegressionTree(TreeParams(reg_lambda=lam, min_samples_leaf=1)).fit(X, g, h)
        assert np.abs(tight.predict(X)).max() <= np.abs(loose.predict(X)).max() + 1e-9

    @given(small_regression())
    @settings(max_examples=40, deadline=None)
    def test_prediction_within_target_hull_for_l2(self, problem):
        """With l2 gradients from a zero start, a single tree's leaf values
        are means of -g = y, hence within [min(y), max(y)]."""
        X, y = problem
        g = -y
        h = np.ones_like(y)
        tree = RegressionTree(TreeParams(reg_lambda=0.0, min_samples_leaf=1)).fit(X, g, h)
        pred = tree.predict(X)
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9


class TestGbmProperties:
    @given(small_regression())
    @settings(max_examples=20, deadline=None)
    def test_monotone_training_loss_for_l2(self, problem):
        X, y = problem
        model = GradientBoostedTrees(
            GbmParams(n_estimators=25, learning_rate=0.3, loss="l2")
        ).fit(X, y)
        losses = np.array(model.train_losses_)
        # l2 Newton boosting never increases training loss.
        assert (np.diff(losses) <= 1e-8).all()

    @given(small_regression(), st.floats(min_value=-50, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_shift_equivariance(self, problem, shift):
        """Shifting the targets shifts predictions (tree splits and the
        median base score are shift-equivariant for l2)."""
        X, y = problem
        a = GradientBoostedTrees(GbmParams(n_estimators=15)).fit(X, y).predict(X)
        b = GradientBoostedTrees(GbmParams(n_estimators=15)).fit(X, y + shift).predict(X)
        np.testing.assert_allclose(b, a + shift, atol=1e-6)

    @given(small_regression())
    @settings(max_examples=20, deadline=None)
    def test_importances_are_distribution(self, problem):
        X, y = problem
        model = GradientBoostedTrees(GbmParams(n_estimators=15)).fit(X, y)
        imp = model.feature_importances()
        assert (imp >= 0).all()
        assert imp.sum() == pytest.approx(1.0) or imp.sum() == 0.0
