"""Tests for the repeated-splits evaluation utilities."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ml.validation import paired_comparison, repeated_split_scores


class TestRepeatedSplits:
    def test_collects_scores_per_seed(self, small_dataset):
        def evaluate(splits):
            return {"a": float(len(splits.train_ids)), "b": 1.0}

        scores = repeated_split_scores(small_dataset, evaluate, seeds=(1, 2, 3))
        assert set(scores) == {"a", "b"}
        assert len(scores["a"]) == 3

    def test_test_split_constant_across_seeds(self, small_dataset):
        seen = []

        def evaluate(splits):
            seen.append(tuple(int(a) for a in splits.test_ids))
            return {"x": 0.0}

        repeated_split_scores(small_dataset, evaluate, seeds=(1, 2))
        assert seen[0] == seen[1]

    def test_train_membership_varies(self, small_dataset):
        seen = []

        def evaluate(splits):
            seen.append(tuple(int(a) for a in splits.train_ids))
            return {"x": 0.0}

        repeated_split_scores(small_dataset, evaluate, seeds=(1, 2))
        assert seen[0] != seen[1]

    def test_empty_seeds_rejected(self, small_dataset):
        with pytest.raises(ConfigurationError):
            repeated_split_scores(small_dataset, lambda s: {"x": 0.0}, seeds=())

    def test_inconsistent_candidates_rejected(self, small_dataset):
        calls = []

        def evaluate(splits):
            calls.append(1)
            return {"a": 0.0} if len(calls) == 1 else {"b": 0.0}

        with pytest.raises(ConfigurationError, match="same candidates"):
            repeated_split_scores(small_dataset, evaluate, seeds=(1, 2))


class TestPairedComparison:
    def test_win_rate_and_mean_difference(self):
        scores = {
            "a": np.array([1.0, 2.0, 3.0]),
            "b": np.array([2.0, 1.0, 4.0]),
        }
        comparison = paired_comparison(scores, "a", "b")
        assert comparison.win_rate_a == pytest.approx(2 / 3)
        assert comparison.mean_difference == pytest.approx(-1 / 3)

    def test_summary_text(self):
        scores = {"a": np.array([1.0]), "b": np.array([2.0])}
        text = paired_comparison(scores, "a", "b").summary()
        assert "a vs b" in text and "100%" in text

    def test_unknown_candidate(self):
        with pytest.raises(ConfigurationError):
            paired_comparison({"a": np.array([1.0])}, "a", "ghost")
