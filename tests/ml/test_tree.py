"""Tests for the second-order regression tree."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotFittedError
from repro.ml import RegressionTree, TreeParams


def l2_targets(y: np.ndarray, pred: np.ndarray | None = None):
    """Gradients/hessians of squared loss at prediction 0 (or given)."""
    pred = np.zeros_like(y) if pred is None else pred
    return pred - y, np.ones_like(y)


class TestFitBasics:
    def test_perfect_binary_split(self):
        X = np.array([[0.0], [1.0], [2.0], [10.0], [11.0], [12.0]])
        y = np.array([1.0, 1.0, 1.0, 9.0, 9.0, 9.0])
        g, h = l2_targets(y)
        tree = RegressionTree(TreeParams(max_depth=1, reg_lambda=0.0, min_samples_leaf=1)).fit(X, g, h)
        pred = tree.predict(X)
        np.testing.assert_allclose(pred, y)

    def test_leaf_value_formula(self):
        # Single leaf: value = -sum(g) / (sum(h) + lambda).
        X = np.zeros((4, 1))
        y = np.array([2.0, 2.0, 2.0, 2.0])
        g, h = l2_targets(y)
        tree = RegressionTree(TreeParams(max_depth=3, reg_lambda=1.0)).fit(X, g, h)
        assert tree.n_nodes == 1  # constant feature, no split possible
        assert tree.predict(X)[0] == pytest.approx(8.0 / 5.0)

    def test_max_depth_respected(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 4))
        y = rng.normal(size=200)
        g, h = l2_targets(y)
        tree = RegressionTree(TreeParams(max_depth=2, min_samples_leaf=1)).fit(X, g, h)
        assert tree.depth <= 2

    def test_min_samples_leaf_respected(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(40, 3))
        y = rng.normal(size=40)
        g, h = l2_targets(y)
        tree = RegressionTree(TreeParams(max_depth=6, min_samples_leaf=8)).fit(X, g, h)

        def leaf_sizes(index=0):
            node = tree._nodes[index]
            if node.is_leaf:
                return [node.n_samples]
            return leaf_sizes(node.left) + leaf_sizes(node.right)

        assert min(leaf_sizes()) >= 8

    def test_gamma_blocks_weak_splits(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 0.1, 0.0, 0.1])
        g, h = l2_targets(y)
        tree = RegressionTree(TreeParams(max_depth=3, gamma=100.0)).fit(X, g, h)
        assert tree.n_nodes == 1

    def test_column_subset(self):
        X = np.column_stack([np.arange(20.0), np.zeros(20)])
        y = np.arange(20.0)
        g, h = l2_targets(y)
        # Only the useless column is allowed -> no split.
        tree = RegressionTree(TreeParams(min_samples_leaf=1)).fit(
            X, g, h, feature_indices=np.array([1])
        )
        assert tree.n_nodes == 1


class TestInference:
    def test_contributions_sum_to_prediction(self, rng):
        X = rng.normal(size=(80, 5))
        y = 2 * X[:, 0] - X[:, 3] + rng.normal(0, 0.1, 80)
        g, h = l2_targets(y)
        tree = RegressionTree(TreeParams(max_depth=4, min_samples_leaf=1)).fit(X, g, h)
        contribs = tree.contributions(X)
        np.testing.assert_allclose(contribs.sum(axis=1), tree.predict(X), atol=1e-9)

    def test_contributions_only_on_split_features(self, rng):
        X = rng.normal(size=(60, 4))
        y = 5 * X[:, 1]
        g, h = l2_targets(y)
        tree = RegressionTree(TreeParams(max_depth=3, min_samples_leaf=1)).fit(X, g, h)
        contribs = tree.contributions(X)
        used = {node.feature for node in tree._nodes if not node.is_leaf}
        for j in range(4):
            if j not in used:
                assert np.allclose(contribs[:, j], 0.0)

    def test_feature_gains_concentrated(self, rng):
        X = rng.normal(size=(100, 6))
        y = 10 * X[:, 2]
        g, h = l2_targets(y)
        tree = RegressionTree(TreeParams(max_depth=3, min_samples_leaf=1)).fit(X, g, h)
        gains = tree.feature_gains()
        assert gains.argmax() == 2

    def test_leaf_values_list(self):
        X = np.array([[0.0], [10.0]])
        y = np.array([0.0, 10.0])
        g, h = l2_targets(y)
        tree = RegressionTree(TreeParams(max_depth=1, min_samples_leaf=1, reg_lambda=0.0)).fit(X, g, h)
        assert sorted(tree.leaf_values().tolist()) == [0.0, 10.0]


class TestValidation:
    def test_not_fitted(self):
        tree = RegressionTree()
        with pytest.raises(NotFittedError):
            tree.predict(np.zeros((1, 1)))
        with pytest.raises(NotFittedError):
            tree.contributions(np.zeros((1, 1)))

    def test_rejects_1d_X(self):
        with pytest.raises(ConfigurationError):
            RegressionTree().fit(np.zeros(5), np.zeros(5), np.ones(5))

    def test_rejects_misaligned(self):
        with pytest.raises(ConfigurationError):
            RegressionTree().fit(np.zeros((5, 2)), np.zeros(4), np.ones(5))

    def test_params_validated(self):
        with pytest.raises(ConfigurationError):
            TreeParams(max_depth=0)
        with pytest.raises(ConfigurationError):
            TreeParams(min_samples_leaf=0)
        with pytest.raises(ConfigurationError):
            TreeParams(reg_lambda=-1.0)
