"""Tests for the gradient-boosted tree ensemble."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotFittedError
from repro.ml import GbmParams, GradientBoostedTrees


@pytest.fixture()
def regression_problem(rng):
    X = rng.normal(size=(150, 6))
    y = 3 * X[:, 0] + np.sin(2 * X[:, 1]) + 0.5 * X[:, 2] * X[:, 3]
    return X, y


class TestFit:
    def test_training_loss_decreases(self, regression_problem):
        X, y = regression_problem
        model = GradientBoostedTrees(GbmParams(n_estimators=60)).fit(X, y)
        losses = model.train_losses_
        assert losses[-1] < losses[0] * 0.2

    def test_fits_nonlinear_signal(self, regression_problem):
        X, y = regression_problem
        model = GradientBoostedTrees(GbmParams(n_estimators=120)).fit(X, y)
        residual = np.abs(model.predict(X) - y)
        assert residual.mean() < 0.3 * np.abs(y - y.mean()).mean()

    @pytest.mark.parametrize("loss", ["l2", "l1", "huber", "pseudo_huber"])
    def test_all_losses_trainable(self, regression_problem, loss):
        X, y = regression_problem
        model = GradientBoostedTrees(
            GbmParams(n_estimators=40, loss=loss, huber_delta=2.0)
        ).fit(X, y)
        assert np.isfinite(model.predict(X)).all()

    def test_l1_robust_to_outlier(self, rng):
        X = np.linspace(0, 1, 60)[:, None]
        y = X[:, 0].copy()
        y[30] = 1000.0  # gross outlier
        l2_model = GradientBoostedTrees(GbmParams(n_estimators=80, loss="l2")).fit(X, y)
        l1_model = GradientBoostedTrees(GbmParams(n_estimators=80, loss="l1")).fit(X, y)
        clean = np.delete(np.arange(60), 30)
        l2_err = np.abs(l2_model.predict(X)[clean] - y[clean]).mean()
        l1_err = np.abs(l1_model.predict(X)[clean] - y[clean]).mean()
        assert l1_err < l2_err

    def test_deterministic_given_seed(self, regression_problem):
        X, y = regression_problem
        params = GbmParams(n_estimators=30, subsample=0.7, colsample=0.7, random_state=5)
        a = GradientBoostedTrees(params).fit(X, y).predict(X)
        b = GradientBoostedTrees(params).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)

    def test_subsample_changes_fit(self, regression_problem):
        X, y = regression_problem
        a = GradientBoostedTrees(
            GbmParams(n_estimators=30, subsample=0.6, random_state=1)
        ).fit(X, y).predict(X)
        b = GradientBoostedTrees(
            GbmParams(n_estimators=30, subsample=0.6, random_state=2)
        ).fit(X, y).predict(X)
        assert not np.array_equal(a, b)

    def test_base_score_is_median(self, regression_problem):
        X, y = regression_problem
        model = GradientBoostedTrees(GbmParams(n_estimators=1)).fit(X, y)
        assert model._base_score == pytest.approx(np.median(y))


class TestInference:
    def test_contributions_sum_to_prediction(self, regression_problem):
        X, y = regression_problem
        model = GradientBoostedTrees(GbmParams(n_estimators=40)).fit(X, y)
        contribs = model.contributions(X)
        np.testing.assert_allclose(contribs.sum(axis=1), model.predict(X), atol=1e-8)

    def test_importances_normalised(self, regression_problem):
        X, y = regression_problem
        model = GradientBoostedTrees(GbmParams(n_estimators=40)).fit(X, y)
        importances = model.feature_importances()
        assert importances.sum() == pytest.approx(1.0)
        assert (importances >= 0).all()

    def test_important_feature_found(self, rng):
        X = rng.normal(size=(120, 10))
        y = 10 * X[:, 7]
        model = GradientBoostedTrees(GbmParams(n_estimators=40)).fit(X, y)
        assert model.feature_importances().argmax() == 7

    def test_staged_predict_converges(self, regression_problem):
        X, y = regression_problem
        model = GradientBoostedTrees(GbmParams(n_estimators=50)).fit(X, y)
        stages = model.staged_predict(X, every=10)
        assert len(stages) == 5
        errors = [np.abs(s - y).mean() for s in stages]
        assert errors[-1] <= errors[0]
        np.testing.assert_allclose(stages[-1], model.predict(X))

    def test_clone_is_unfitted_with_overrides(self, regression_problem):
        X, y = regression_problem
        model = GradientBoostedTrees(GbmParams(n_estimators=10)).fit(X, y)
        clone = model.clone(n_estimators=99)
        assert clone.params.n_estimators == 99
        with pytest.raises(NotFittedError):
            clone.predict(X)


class TestValidation:
    def test_not_fitted(self):
        model = GradientBoostedTrees()
        with pytest.raises(NotFittedError):
            model.predict(np.zeros((1, 1)))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            GradientBoostedTrees().fit(np.zeros((0, 2)), np.zeros(0))

    def test_rejects_misaligned(self):
        with pytest.raises(ConfigurationError):
            GradientBoostedTrees().fit(np.zeros((5, 2)), np.zeros(4))

    def test_rejects_1d(self):
        with pytest.raises(ConfigurationError):
            GradientBoostedTrees().fit(np.zeros(5), np.zeros(5))

    def test_param_validation(self):
        with pytest.raises(ConfigurationError):
            GbmParams(n_estimators=0)
        with pytest.raises(ConfigurationError):
            GbmParams(learning_rate=0.0)
        with pytest.raises(ConfigurationError):
            GbmParams(subsample=1.5)
        with pytest.raises(ConfigurationError):
            GbmParams(colsample=0.0)


class TestEarlyStopping:
    def test_stops_before_budget_on_noise(self, rng):
        X = rng.normal(size=(80, 5))
        y = rng.normal(size=80)  # pure noise: eval loss bottoms out early
        X_val = rng.normal(size=(40, 5))
        y_val = rng.normal(size=40)
        model = GradientBoostedTrees(GbmParams(n_estimators=300)).fit(
            X, y, eval_set=(X_val, y_val), early_stopping_rounds=5
        )
        assert model.best_iteration_ is not None
        assert model.best_iteration_ < 300
        assert len(model._trees) == model.best_iteration_

    def test_truncates_to_best_round(self, regression_problem, rng):
        X, y = regression_problem
        X_val, y_val = X[:40], y[:40]
        model = GradientBoostedTrees(GbmParams(n_estimators=120)).fit(
            X[40:], y[40:], eval_set=(X_val, y_val), early_stopping_rounds=10
        )
        assert len(model.eval_losses_) == model.best_iteration_
        assert model.eval_losses_[-1] == min(model.eval_losses_)

    def test_eval_losses_recorded_without_early_stop(self, regression_problem):
        X, y = regression_problem
        model = GradientBoostedTrees(GbmParams(n_estimators=20)).fit(
            X, y, eval_set=(X, y)
        )
        assert len(model.eval_losses_) == 20
        assert model.best_iteration_ is None

    def test_early_stopping_requires_eval_set(self, regression_problem):
        X, y = regression_problem
        with pytest.raises(ConfigurationError, match="eval_set"):
            GradientBoostedTrees().fit(X, y, early_stopping_rounds=5)

    def test_invalid_rounds(self, regression_problem):
        X, y = regression_problem
        with pytest.raises(ConfigurationError):
            GradientBoostedTrees().fit(
                X, y, eval_set=(X, y), early_stopping_rounds=0
            )

    def test_generalisation_not_worse_than_full_fit(self, rng):
        X = rng.normal(size=(120, 8))
        y = 2 * X[:, 0] + rng.normal(0, 1.5, 120)
        X_train, y_train = X[:70], y[:70]
        X_val, y_val = X[70:95], y[70:95]
        X_test, y_test = X[95:], y[95:]
        full = GradientBoostedTrees(GbmParams(n_estimators=250)).fit(X_train, y_train)
        stopped = GradientBoostedTrees(GbmParams(n_estimators=250)).fit(
            X_train, y_train, eval_set=(X_val, y_val), early_stopping_rounds=15
        )
        full_err = np.abs(full.predict(X_test) - y_test).mean()
        stopped_err = np.abs(stopped.predict(X_test) - y_test).mean()
        assert stopped_err <= full_err * 1.25
