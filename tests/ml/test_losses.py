"""Tests for the training losses, including numeric derivative checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.ml import (
    LOSS_NAMES,
    AbsoluteLoss,
    HuberLoss,
    PseudoHuberLoss,
    SquaredLoss,
    make_loss,
)

ALL_LOSSES = [SquaredLoss(), AbsoluteLoss(), HuberLoss(5.0), PseudoHuberLoss(5.0)]


class TestValues:
    def test_l2_value(self):
        loss = SquaredLoss()
        assert loss.value(np.array([0.0]), np.array([4.0]))[0] == 8.0

    def test_l1_value(self):
        loss = AbsoluteLoss()
        assert loss.value(np.array([0.0]), np.array([-3.0]))[0] == 3.0

    def test_huber_quadratic_region(self):
        loss = HuberLoss(delta=10.0)
        assert loss.value(np.array([0.0]), np.array([4.0]))[0] == 8.0

    def test_huber_linear_region(self):
        loss = HuberLoss(delta=2.0)
        # |r| = 10 > delta: delta*(|r| - delta/2) = 2*(10-1) = 18
        assert loss.value(np.array([0.0]), np.array([10.0]))[0] == 18.0

    def test_pseudo_huber_zero_at_zero(self):
        loss = PseudoHuberLoss(18.0)
        assert loss.value(np.array([5.0]), np.array([5.0]))[0] == 0.0

    def test_pseudo_huber_below_l2(self):
        ph = PseudoHuberLoss(18.0)
        l2 = SquaredLoss()
        y = np.zeros(5)
        pred = np.array([1.0, 5.0, 20.0, 50.0, 200.0])
        assert (ph.value(y, pred) <= l2.value(y, pred) + 1e-9).all()

    def test_mean(self):
        loss = SquaredLoss()
        assert loss.mean(np.array([0.0, 0.0]), np.array([2.0, 4.0])) == 5.0


class TestGradients:
    @pytest.mark.parametrize("loss", ALL_LOSSES, ids=lambda l: l.name)
    def test_numeric_gradient(self, loss):
        y = np.array([0.0, 1.0, -2.0, 10.0])
        pred = np.array([0.5, -1.0, 3.0, 9.0])
        eps = 1e-6
        numeric = (loss.value(y, pred + eps) - loss.value(y, pred - eps)) / (2 * eps)
        np.testing.assert_allclose(loss.gradient(y, pred), numeric, atol=1e-5)

    @pytest.mark.parametrize("loss", [SquaredLoss(), PseudoHuberLoss(5.0)])
    def test_numeric_hessian_for_smooth_losses(self, loss):
        y = np.array([0.0, 2.0, -3.0])
        pred = np.array([1.0, 0.0, 4.0])
        eps = 1e-5
        numeric = (
            loss.gradient(y, pred + eps) - loss.gradient(y, pred - eps)
        ) / (2 * eps)
        np.testing.assert_allclose(loss.hessian(y, pred), numeric, atol=1e-4)

    @pytest.mark.parametrize("loss", ALL_LOSSES, ids=lambda l: l.name)
    def test_hessian_positive(self, loss):
        y = np.linspace(-100, 100, 21)
        pred = np.zeros(21)
        assert (loss.hessian(y, pred) > 0).all()

    def test_l1_gradient_is_sign(self):
        loss = AbsoluteLoss()
        grads = loss.gradient(np.array([0.0, 0.0]), np.array([5.0, -5.0]))
        assert grads.tolist() == [1.0, -1.0]

    def test_huber_gradient_clipped(self):
        loss = HuberLoss(delta=3.0)
        grads = loss.gradient(np.array([0.0]), np.array([100.0]))
        assert grads[0] == 3.0

    @given(st.floats(min_value=-500, max_value=500, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_pseudo_huber_gradient_bounded_by_delta(self, residual):
        loss = PseudoHuberLoss(18.0)
        grad = loss.gradient(np.array([0.0]), np.array([residual]))
        assert abs(grad[0]) <= 18.0


class TestRegistry:
    def test_all_names_buildable(self):
        for name in LOSS_NAMES:
            assert make_loss(name).name == name

    def test_delta_passed_through(self):
        loss = make_loss("pseudo_huber", delta=7.0)
        assert loss.delta == 7.0

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_loss("hinge")

    def test_invalid_delta(self):
        with pytest.raises(ConfigurationError):
            HuberLoss(delta=0.0)
        with pytest.raises(ConfigurationError):
            PseudoHuberLoss(delta=-1.0)

    def test_repr_contains_delta(self):
        assert "18.0" in repr(PseudoHuberLoss(18.0))


class TestPinball:
    def test_asymmetric_penalty(self):
        from repro.ml import PinballLoss

        loss = PinballLoss(quantile=0.9)
        under = loss.value(np.array([10.0]), np.array([0.0]))[0]   # y > yhat
        over = loss.value(np.array([0.0]), np.array([10.0]))[0]    # yhat > y
        assert under == pytest.approx(9.0)
        assert over == pytest.approx(1.0)

    def test_median_is_pinball_half(self):
        from repro.ml import AbsoluteLoss, PinballLoss

        y = np.array([1.0, 5.0, -2.0])
        pred = np.array([0.0, 0.0, 0.0])
        np.testing.assert_allclose(
            2 * PinballLoss(0.5).value(y, pred), AbsoluteLoss().value(y, pred)
        )

    def test_gradient_sign(self):
        from repro.ml import PinballLoss

        loss = PinballLoss(0.8)
        grads = loss.gradient(np.array([5.0, -5.0]), np.array([0.0, 0.0]))
        assert grads[0] == pytest.approx(-0.8)   # under-prediction
        assert grads[1] == pytest.approx(0.2)    # over-prediction

    def test_invalid_quantile(self):
        from repro.ml import PinballLoss

        with pytest.raises(ConfigurationError):
            PinballLoss(0.0)
        with pytest.raises(ConfigurationError):
            PinballLoss(1.0)

    def test_gbm_quantile_regression(self):
        """High-quantile GBM predictions sit above low-quantile ones."""
        from repro.ml import GbmParams, GradientBoostedTrees

        rng = np.random.default_rng(3)
        X = rng.uniform(0, 1, (200, 2))
        y = 10 * X[:, 0] + rng.normal(0, 2.0, 200)
        lo = GradientBoostedTrees(
            GbmParams(n_estimators=150, learning_rate=0.2, loss="pinball", quantile=0.1)
        ).fit(X, y)
        hi = GradientBoostedTrees(
            GbmParams(n_estimators=150, learning_rate=0.2, loss="pinball", quantile=0.9)
        ).fit(X, y)
        assert (hi.predict(X) >= lo.predict(X) - 1e-6).mean() > 0.9
        # Coverage direction: ~90% of targets under the 0.9-quantile fit.
        assert (y <= hi.predict(X) + 1e-6).mean() > 0.6
