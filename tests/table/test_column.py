"""Unit tests for column coercion and helpers."""

import numpy as np
import pytest

from repro.table.column import as_column, column_nbytes, factorize, is_numeric


class TestAsColumn:
    def test_int_list_stays_int64(self):
        arr = as_column([1, 2, 3])
        assert arr.dtype == np.int64
        assert arr.tolist() == [1, 2, 3]

    def test_float_list_is_float64(self):
        arr = as_column([1.5, 2.0])
        assert arr.dtype == np.float64

    def test_mixed_int_float_promotes_to_float(self):
        arr = as_column([1, 2.5])
        assert arr.dtype == np.float64
        assert arr.tolist() == [1.0, 2.5]

    def test_none_in_numeric_becomes_nan(self):
        arr = as_column([1, None, 3])
        assert arr.dtype == np.float64
        assert np.isnan(arr[1])

    def test_bool_list_is_bool(self):
        arr = as_column([True, False])
        assert arr.dtype == np.bool_

    def test_bool_with_none_is_object(self):
        arr = as_column([True, None])
        assert arr.dtype == object

    def test_strings_are_object(self):
        arr = as_column(["a", "b"])
        assert arr.dtype == object

    def test_mixed_types_are_object(self):
        arr = as_column(["a", 1])
        assert arr.dtype == object

    def test_all_none_is_float_nan(self):
        arr = as_column([None, None])
        assert arr.dtype == np.float64
        assert np.isnan(arr).all()

    def test_empty_list(self):
        arr = as_column([])
        assert len(arr) == 0

    def test_existing_array_passthrough(self):
        source = np.array([1.0, 2.0])
        assert as_column(source) is source

    def test_2d_array_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            as_column(np.zeros((2, 2)))

    def test_string_scalar_rejected(self):
        with pytest.raises(TypeError, match="string"):
            as_column("abc")

    def test_non_iterable_rejected(self):
        with pytest.raises(TypeError, match="iterable"):
            as_column(42)

    def test_generator_accepted(self):
        arr = as_column(x * 2 for x in range(3))
        assert arr.tolist() == [0, 2, 4]


class TestHelpers:
    def test_is_numeric(self):
        assert is_numeric(np.array([1, 2]))
        assert is_numeric(np.array([1.0]))
        assert not is_numeric(np.array(["a"], dtype=object))

    def test_column_nbytes_numeric(self):
        arr = np.zeros(10, dtype=np.float64)
        assert column_nbytes(arr) == 80

    def test_column_nbytes_object_counts_payload(self):
        arr = np.array(["hello", "world"], dtype=object)
        assert column_nbytes(arr) > arr.nbytes

    def test_column_nbytes_object_dedups_shared(self):
        shared = "x" * 1000
        arr = np.array([shared] * 50, dtype=object)
        small = np.array([shared], dtype=object)
        assert column_nbytes(arr) < 50 * column_nbytes(small)

    def test_factorize_roundtrip(self):
        values = np.array(["b", "a", "b", "c"], dtype=object)
        codes, uniques = factorize(values)
        assert (uniques[codes] == values).all()
        assert sorted(uniques) == list(uniques)

    def test_factorize_numeric(self):
        codes, uniques = factorize(np.array([3, 1, 3, 2]))
        assert uniques.tolist() == [1, 2, 3]
        assert codes.tolist() == [2, 0, 2, 1]
