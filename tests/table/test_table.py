"""Unit tests for ColumnTable core operations."""

import numpy as np
import pytest

from repro.errors import ColumnNotFoundError, LengthMismatchError, SchemaError
from repro.table import ColumnTable


@pytest.fixture()
def table() -> ColumnTable:
    return ColumnTable(
        {
            "id": [1, 2, 3, 4],
            "amount": [10.0, 20.0, 30.0, 40.0],
            "kind": ["a", "b", "a", "c"],
        }
    )


class TestConstruction:
    def test_basic_shape(self, table):
        assert table.n_rows == 4
        assert table.n_columns == 3
        assert table.column_names == ("id", "amount", "kind")

    def test_empty_table(self):
        empty = ColumnTable()
        assert empty.n_rows == 0
        assert empty.n_columns == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(LengthMismatchError):
            ColumnTable({"a": [1, 2], "b": [1]})

    def test_from_rows(self):
        t = ColumnTable.from_rows([{"x": 1, "y": "p"}, {"x": 2, "y": "q"}])
        assert t["x"].tolist() == [1, 2]
        assert t["y"].tolist() == ["p", "q"]

    def test_from_rows_missing_keys_become_null(self):
        t = ColumnTable.from_rows([{"x": 1}, {"y": 2}])
        assert np.isnan(t["x"][1])
        assert np.isnan(t["y"][0])

    def test_from_rows_empty(self):
        assert ColumnTable.from_rows([]).n_rows == 0

    def test_len_and_contains(self, table):
        assert len(table) == 4
        assert "id" in table
        assert "nope" not in table


class TestAccess:
    def test_getitem_missing_column(self, table):
        with pytest.raises(ColumnNotFoundError, match="nope"):
            table["nope"]

    def test_error_lists_available_columns(self, table):
        with pytest.raises(ColumnNotFoundError, match="amount"):
            table["nope"]

    def test_row(self, table):
        row = table.row(1)
        assert row == {"id": 2, "amount": 20.0, "kind": "b"}

    def test_row_negative_index(self, table):
        assert table.row(-1)["id"] == 4

    def test_row_out_of_range(self, table):
        with pytest.raises(IndexError):
            table.row(10)

    def test_to_rows(self, table):
        rows = table.to_rows()
        assert len(rows) == 4
        assert rows[0]["kind"] == "a"

    def test_nbytes_positive(self, table):
        assert table.nbytes() > 0


class TestProjection:
    def test_select_order(self, table):
        t = table.select(["kind", "id"])
        assert t.column_names == ("kind", "id")

    def test_select_missing(self, table):
        with pytest.raises(ColumnNotFoundError):
            table.select(["id", "ghost"])

    def test_drop(self, table):
        t = table.drop(["kind"])
        assert t.column_names == ("id", "amount")

    def test_drop_missing(self, table):
        with pytest.raises(ColumnNotFoundError):
            table.drop(["ghost"])

    def test_rename(self, table):
        t = table.rename({"id": "identifier"})
        assert "identifier" in t
        assert "id" not in t

    def test_rename_collision_rejected(self, table):
        with pytest.raises(SchemaError):
            table.rename({"id": "amount"})

    def test_rename_missing(self, table):
        with pytest.raises(ColumnNotFoundError):
            table.rename({"ghost": "x"})

    def test_with_column_adds(self, table):
        t = table.with_column("flag", [True, False, True, False])
        assert t.n_columns == 4
        assert table.n_columns == 3  # original untouched

    def test_with_column_replaces(self, table):
        t = table.with_column("amount", [0.0, 0.0, 0.0, 0.0])
        assert t["amount"].sum() == 0.0

    def test_with_column_length_mismatch(self, table):
        with pytest.raises(LengthMismatchError):
            table.with_column("bad", [1])


class TestRowOps:
    def test_filter(self, table):
        t = table.filter(table["amount"] > 15.0)
        assert t["id"].tolist() == [2, 3, 4]

    def test_filter_requires_bool(self, table):
        with pytest.raises(TypeError):
            table.filter(np.array([1, 0, 1, 0]))

    def test_filter_length_mismatch(self, table):
        with pytest.raises(LengthMismatchError):
            table.filter(np.array([True]))

    def test_take(self, table):
        t = table.take(np.array([3, 0]))
        assert t["id"].tolist() == [4, 1]

    def test_head(self, table):
        assert table.head(2).n_rows == 2
        assert table.head(100).n_rows == 4

    def test_sort_single_key(self, table):
        t = table.sort_by("amount", ascending=False)
        assert t["amount"].tolist() == [40.0, 30.0, 20.0, 10.0]

    def test_sort_multi_key(self):
        t = ColumnTable({"a": [2, 1, 2, 1], "b": [1, 2, 0, 1]})
        s = t.sort_by(["a", "b"])
        assert s["a"].tolist() == [1, 1, 2, 2]
        assert s["b"].tolist() == [1, 2, 0, 1]

    def test_unique(self, table):
        assert table.unique("kind").tolist() == ["a", "b", "c"]


class TestConcatEquals:
    def test_concat(self, table):
        double = ColumnTable.concat([table, table])
        assert double.n_rows == 8

    def test_concat_empty_list(self):
        assert ColumnTable.concat([]).n_rows == 0

    def test_concat_mismatched_schema(self, table):
        other = ColumnTable({"id": [1]})
        with pytest.raises(SchemaError):
            ColumnTable.concat([table, other])

    def test_equals_self(self, table):
        assert table.equals(table)

    def test_equals_nan_aware(self):
        a = ColumnTable({"x": [1.0, None]})
        b = ColumnTable({"x": [1.0, None]})
        assert a.equals(b)

    def test_not_equals_different_values(self, table):
        other = table.with_column("amount", [0.0, 0.0, 0.0, 0.0])
        assert not table.equals(other)

    def test_not_equals_non_table(self, table):
        assert not table.equals("nope")

    def test_repr_mentions_shape(self, table):
        assert "4 rows" in repr(table)


class TestGroupBy:
    def test_aggregate_sum_count(self, table):
        g = table.group_by("kind").aggregate(
            {"total": ("amount", "sum"), "n": ("id", "count")}
        )
        rows = {r["kind"]: r for r in g.to_rows()}
        assert rows["a"]["total"] == 40.0
        assert rows["a"]["n"] == 2
        assert rows["c"]["n"] == 1

    def test_aggregate_multi_key(self):
        t = ColumnTable(
            {"k1": ["x", "x", "y"], "k2": [1, 2, 1], "v": [1.0, 2.0, 3.0]}
        )
        g = t.group_by(["k1", "k2"]).aggregate({"s": ("v", "sum")})
        assert g.n_rows == 3

    def test_group_by_empty_keys_rejected(self, table):
        with pytest.raises(SchemaError):
            table.group_by([])

    def test_sizes(self, table):
        sizes = table.group_by("kind").sizes()
        assert sizes["count"].sum() == 4

    def test_aggregate_on_empty_table(self):
        t = ColumnTable({"k": np.array([], dtype=object), "v": np.array([])})
        g = t.group_by("k").aggregate({"s": ("v", "sum")})
        assert g.n_rows == 0

    def test_group_keys_recovered_exactly(self):
        t = ColumnTable({"k": [5, 5, 7, 9], "v": [1.0, 1.0, 1.0, 1.0]})
        g = t.group_by("k").aggregate({"n": ("v", "count")})
        assert sorted(g["k"].tolist()) == [5, 7, 9]
