"""Property-based tests for the table engine (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.table import ColumnTable, merge

keys = st.lists(st.integers(0, 8), min_size=1, max_size=40)
floats = st.floats(allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6)


@st.composite
def keyed_table(draw):
    ks = draw(keys)
    vs = draw(st.lists(floats, min_size=len(ks), max_size=len(ks)))
    return ColumnTable({"k": ks, "v": vs})


class TestGroupByProperties:
    @given(keyed_table())
    @settings(max_examples=60, deadline=None)
    def test_group_sums_partition_total(self, table):
        grouped = table.group_by("k").aggregate({"s": ("v", "sum"), "n": ("v", "count")})
        assert grouped["n"].sum() == table.n_rows
        assert np.isclose(grouped["s"].sum(), table["v"].sum())

    @given(keyed_table())
    @settings(max_examples=60, deadline=None)
    def test_group_count_matches_unique_keys(self, table):
        grouped = table.group_by("k").sizes()
        assert grouped.n_rows == len(np.unique(table["k"]))

    @given(keyed_table())
    @settings(max_examples=60, deadline=None)
    def test_min_max_bound_mean(self, table):
        grouped = table.group_by("k").aggregate(
            {"lo": ("v", "min"), "hi": ("v", "max"), "avg": ("v", "mean")}
        )
        assert (grouped["lo"] <= grouped["avg"] + 1e-9).all()
        assert (grouped["avg"] <= grouped["hi"] + 1e-9).all()


class TestRowOpProperties:
    @given(keyed_table())
    @settings(max_examples=60, deadline=None)
    def test_sort_is_permutation(self, table):
        sorted_table = table.sort_by("v")
        assert np.isclose(sorted_table["v"].sum(), table["v"].sum())
        assert (np.diff(sorted_table["v"]) >= 0).all()

    @given(keyed_table(), st.integers(0, 8))
    @settings(max_examples=60, deadline=None)
    def test_filter_complement_partitions(self, table, pivot):
        mask = table["k"] == pivot
        kept = table.filter(mask)
        dropped = table.filter(~mask)
        assert kept.n_rows + dropped.n_rows == table.n_rows

    @given(keyed_table())
    @settings(max_examples=60, deadline=None)
    def test_take_identity(self, table):
        identity = table.take(np.arange(table.n_rows))
        assert identity.equals(table)


class TestJoinProperties:
    @given(keyed_table(), keyed_table())
    @settings(max_examples=40, deadline=None)
    def test_inner_join_cardinality(self, left, right):
        renamed = right.rename({"v": "w"})
        out = merge(left, renamed, on="k")
        left_counts = {
            int(k): int(n)
            for k, n in zip(*np.unique(left["k"], return_counts=True))
        }
        right_counts = {
            int(k): int(n)
            for k, n in zip(*np.unique(right["k"], return_counts=True))
        }
        expected = sum(
            left_counts.get(k, 0) * right_counts.get(k, 0) for k in left_counts
        )
        assert out.n_rows == expected

    @given(keyed_table(), keyed_table())
    @settings(max_examples=40, deadline=None)
    def test_left_join_keeps_all_left_keys(self, left, right):
        renamed = right.rename({"v": "w"})
        out = merge(left, renamed, on="k", how="left")
        assert out.n_rows >= left.n_rows
        assert set(out["k"].tolist()) == set(left["k"].tolist())
