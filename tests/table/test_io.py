"""Unit tests for CSV persistence."""

import numpy as np
import pytest

from repro.table import ColumnTable, read_csv, write_csv


class TestRoundtrip:
    def test_mixed_types(self, tmp_path):
        table = ColumnTable(
            {
                "i": [1, 2, 3],
                "f": [1.5, 2.5, 3.5],
                "s": ["a", "b", "c"],
            }
        )
        path = tmp_path / "t.csv"
        write_csv(table, path)
        back = read_csv(path)
        assert back.equals(table)

    def test_nan_roundtrip(self, tmp_path):
        table = ColumnTable({"x": [1.0, None, 3.0]})
        path = tmp_path / "t.csv"
        write_csv(table, path)
        back = read_csv(path)
        assert np.isnan(back["x"][1])
        assert back["x"][0] == 1.0

    def test_none_string_becomes_empty(self, tmp_path):
        table = ColumnTable({"s": np.array(["a", None], dtype=object)})
        path = tmp_path / "t.csv"
        write_csv(table, path)
        back = read_csv(path)
        assert back["s"].tolist() == ["a", ""]

    def test_empty_table(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(ColumnTable({"a": [], "b": []}), path)
        back = read_csv(path)
        assert back.n_rows == 0
        assert set(back.column_names) == {"a", "b"}

    def test_header_only_file(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("x,y\n")
        back = read_csv(path)
        assert back.n_rows == 0

    def test_completely_empty_file(self, tmp_path):
        path = tmp_path / "e.csv"
        path.write_text("")
        assert read_csv(path).n_columns == 0

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "t.csv"
        write_csv(ColumnTable({"a": [1]}), path)
        assert path.exists()


class TestTypeInference:
    def test_int_column_stays_int(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("x\n1\n2\n")
        assert read_csv(path)["x"].dtype == np.int64

    def test_float_detection(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("x\n1.5\n2\n")
        assert read_csv(path)["x"].dtype == np.float64

    def test_string_fallback(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("x\n1\nabc\n")
        assert read_csv(path)["x"].dtype == object

    def test_negative_numbers(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("x\n-5\n3\n")
        assert read_csv(path)["x"].tolist() == [-5, 3]
