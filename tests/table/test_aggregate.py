"""Unit tests for the aggregation kernels."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.table.aggregate import AGG_NAMES, apply_aggregation


@pytest.fixture()
def segments():
    # Two segments: [1, 2, 3] and [10, 20].
    values = np.array([1.0, 2.0, 3.0, 10.0, 20.0])
    starts = np.array([0, 3])
    return values, starts


class TestKernels:
    def test_sum(self, segments):
        values, starts = segments
        assert apply_aggregation("sum", values, starts).tolist() == [6.0, 30.0]

    def test_mean(self, segments):
        values, starts = segments
        assert apply_aggregation("mean", values, starts).tolist() == [2.0, 15.0]

    def test_min(self, segments):
        values, starts = segments
        assert apply_aggregation("min", values, starts).tolist() == [1.0, 10.0]

    def test_max(self, segments):
        values, starts = segments
        assert apply_aggregation("max", values, starts).tolist() == [3.0, 20.0]

    def test_count(self, segments):
        values, starts = segments
        out = apply_aggregation("count", values, starts)
        assert out.tolist() == [3, 2]
        assert out.dtype == np.int64

    def test_first_last(self, segments):
        values, starts = segments
        assert apply_aggregation("first", values, starts).tolist() == [1.0, 10.0]
        assert apply_aggregation("last", values, starts).tolist() == [3.0, 20.0]

    def test_std(self, segments):
        values, starts = segments
        out = apply_aggregation("std", values, starts)
        assert out[0] == pytest.approx(np.std([1.0, 2.0, 3.0]))
        assert out[1] == pytest.approx(5.0)

    def test_std_single_element_is_zero(self):
        out = apply_aggregation("std", np.array([4.0]), np.array([0]))
        assert out[0] == 0.0

    def test_count_on_object_column(self):
        values = np.array(["a", "b", "c"], dtype=object)
        out = apply_aggregation("count", values, np.array([0, 2]))
        assert out.tolist() == [2, 1]


class TestValidation:
    def test_unknown_aggregation(self, segments):
        values, starts = segments
        with pytest.raises(ConfigurationError, match="unknown aggregation"):
            apply_aggregation("median", values, starts)

    def test_numeric_only_on_object(self):
        values = np.array(["a", "b"], dtype=object)
        with pytest.raises(ConfigurationError, match="numeric"):
            apply_aggregation("sum", values, np.array([0]))

    def test_empty_segments(self):
        for name in AGG_NAMES:
            out = apply_aggregation(name, np.array([]), np.array([], dtype=np.int64))
            assert len(out) == 0

    def test_agg_names_frozen(self):
        assert "sum" in AGG_NAMES
        assert "count" in AGG_NAMES
