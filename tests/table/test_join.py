"""Unit tests for the sort-merge equi-join."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SchemaError
from repro.table import ColumnTable, merge


@pytest.fixture()
def left():
    return ColumnTable({"id": [1, 2, 2, 3], "lv": [10.0, 20.0, 21.0, 30.0]})


@pytest.fixture()
def right():
    return ColumnTable({"id": [2, 3, 4], "rv": ["x", "y", "z"]})


class TestInnerJoin:
    def test_matches(self, left, right):
        out = merge(left, right, on="id")
        assert out.n_rows == 3
        assert out["id"].tolist() == [2, 2, 3]
        assert out["rv"].tolist() == ["x", "x", "y"]

    def test_duplicate_right_keys_fan_out(self):
        left = ColumnTable({"id": [1], "lv": [0.0]})
        right = ColumnTable({"id": [1, 1, 1], "rv": [1.0, 2.0, 3.0]})
        out = merge(left, right, on="id")
        assert out.n_rows == 3
        assert sorted(out["rv"].tolist()) == [1.0, 2.0, 3.0]

    def test_no_matches_gives_empty(self):
        left = ColumnTable({"id": [1], "lv": [0.0]})
        right = ColumnTable({"id": [9], "rv": [1.0]})
        assert merge(left, right, on="id").n_rows == 0

    def test_multi_key(self):
        left = ColumnTable({"a": [1, 1, 2], "b": ["p", "q", "p"], "lv": [1.0, 2.0, 3.0]})
        right = ColumnTable({"a": [1, 2], "b": ["q", "p"], "rv": [10.0, 20.0]})
        out = merge(left, right, on=["a", "b"])
        assert out.n_rows == 2
        assert sorted(out["rv"].tolist()) == [10.0, 20.0]

    def test_column_collision_gets_suffixes(self):
        left = ColumnTable({"id": [1], "v": [1.0]})
        right = ColumnTable({"id": [1], "v": [2.0]})
        out = merge(left, right, on="id")
        assert "v_x" in out and "v_y" in out

    def test_string_keys(self):
        left = ColumnTable({"k": ["a", "b"], "lv": [1.0, 2.0]})
        right = ColumnTable({"k": ["b", "c"], "rv": [3.0, 4.0]})
        out = merge(left, right, on="k")
        assert out["k"].tolist() == ["b"]


class TestLeftJoin:
    def test_unmatched_rows_kept_with_nulls(self, left, right):
        out = merge(left, right, on="id", how="left")
        assert out.n_rows == 4
        unmatched = out.filter(out["id"] == 1)
        assert unmatched["rv"][0] is None

    def test_unmatched_numeric_fill_is_nan(self):
        left = ColumnTable({"id": [1, 2], "lv": [0.0, 0.0]})
        right = ColumnTable({"id": [2], "rv": [5]})
        out = merge(left, right, on="id", how="left")
        row = out.filter(out["id"] == 1)
        assert np.isnan(row["rv"][0])

    def test_all_matched_left_join_equals_inner(self, right):
        left = ColumnTable({"id": [2, 3], "lv": [1.0, 2.0]})
        inner = merge(left, right, on="id")
        outer = merge(left, right, on="id", how="left")
        assert inner.equals(outer)


class TestValidation:
    def test_unknown_how(self, left, right):
        with pytest.raises(ConfigurationError):
            merge(left, right, on="id", how="outer")

    def test_empty_on(self, left, right):
        with pytest.raises(SchemaError):
            merge(left, right, on=[])

    def test_missing_key_column(self, left):
        other = ColumnTable({"different": [1]})
        with pytest.raises(KeyError):
            merge(left, other, on="id")

    def test_method_on_table(self, left, right):
        assert left.merge(right, on="id").n_rows == 3


class TestAgainstBruteForce:
    def test_matches_nested_loop_join(self, rng):
        n_left, n_right = 60, 45
        left = ColumnTable(
            {
                "k": rng.integers(0, 12, n_left),
                "lv": rng.normal(size=n_left),
            }
        )
        right = ColumnTable(
            {
                "k": rng.integers(0, 12, n_right),
                "rv": rng.normal(size=n_right),
            }
        )
        out = merge(left, right, on="k")
        expected = sorted(
            (int(lk), float(lv), float(rv))
            for lk, lv in zip(left["k"], left["lv"])
            for rk, rv in zip(right["k"], right["rv"])
            if lk == rk
        )
        got = sorted(
            (int(k), float(lv), float(rv))
            for k, lv, rv in zip(out["k"], out["lv"], out["rv"])
        )
        assert got == expected
