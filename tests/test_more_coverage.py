"""Additional coverage: linear-family persistence, conformal variants,
interpretability over linear models, and CLI/service corner cases."""

import numpy as np
import pytest

from repro.core import DomdEstimator, PipelineConfig
from repro.core.conformal import ConformalDomdEstimator
from repro.core.interpret import global_feature_report
from repro.ml import GbmParams
from repro.persistence import load_estimator, save_estimator


@pytest.fixture(scope="module")
def linear_estimator(request):
    dataset = request.getfixturevalue("small_dataset")
    splits = request.getfixturevalue("small_splits")
    config = PipelineConfig(
        window_pct=25.0, k=8, model_family="linear",
        linear_alpha=0.5, linear_l1_ratio=0.5,
    )
    return dataset, splits, DomdEstimator(config).fit(dataset, splits.train_ids)


class TestLinearFamilyEndToEnd:
    def test_query_and_explain(self, linear_estimator):
        _, _, estimator = linear_estimator
        result = estimator.query([0], t_star=50.0)[0]
        assert np.isfinite(result.current_estimate)
        contributions = estimator.explain(0, 50.0, top=5)
        assert len(contributions) == 5

    def test_persistence_roundtrip(self, linear_estimator, tmp_path):
        dataset, _, estimator = linear_estimator
        path = tmp_path / "linear.json"
        save_estimator(estimator, path)
        loaded = load_estimator(path, dataset)
        a = estimator.query([0], t_star=75.0)[0].window_estimates
        b = loaded.query([0], t_star=75.0)[0].window_estimates
        np.testing.assert_allclose(a, b)

    def test_global_report(self, linear_estimator):
        _, _, estimator = linear_estimator
        reports = global_feature_report(estimator, top=5)
        assert len(reports) == 5

    def test_conformal_on_linear(self, linear_estimator):
        _, splits, estimator = linear_estimator
        conformal = ConformalDomdEstimator(estimator).calibrate(splits.validation_ids)
        interval = conformal.query_interval(0, t_star=100.0, alpha=0.3)
        assert interval.lower <= interval.estimate <= interval.upper


class TestConformalAcrossWindows:
    def test_half_widths_vary_by_window(self, small_dataset, small_splits):
        config = PipelineConfig(window_pct=25.0, k=8, gbm=GbmParams(n_estimators=20))
        estimator = DomdEstimator(config).fit(small_dataset, small_splits.train_ids)
        conformal = ConformalDomdEstimator(estimator).calibrate(
            small_splits.validation_ids
        )
        widths = [conformal.half_width(ti, alpha=0.3) for ti in range(5)]
        assert all(w >= 0 for w in widths)
        # Residual scale is window-dependent (not a single global number).
        assert len(set(round(w, 6) for w in widths)) > 1

    def test_interval_respects_window_of_t_star(self, small_dataset, small_splits):
        config = PipelineConfig(window_pct=25.0, k=8, gbm=GbmParams(n_estimators=20))
        estimator = DomdEstimator(config).fit(small_dataset, small_splits.train_ids)
        conformal = ConformalDomdEstimator(estimator).calibrate(
            small_splits.validation_ids
        )
        early = conformal.query_interval(0, t_star=10.0, alpha=0.3)
        late = conformal.query_interval(0, t_star=100.0, alpha=0.3)
        assert early.t_star == 10.0 and late.t_star == 100.0


class TestServiceWithExtensions:
    def test_service_over_served_snapshot(self, small_dataset, small_splits):
        """The nightly-refresh composition: fit -> serve(new) -> DomdService."""
        from repro.core.service import DomdService
        from repro.data import generate_continuation

        config = PipelineConfig(window_pct=50.0, k=6, gbm=GbmParams(n_estimators=10))
        estimator = DomdEstimator(config).fit(small_dataset, small_splits.train_ids)
        extended = generate_continuation(small_dataset, n_new_closed=3, seed=5)
        service = DomdService(estimator.serve(extended))
        new_id = int(np.max(extended.avails["avail_id"]))
        response = service.handle(
            {"type": "domd_query", "avail_ids": [new_id], "t_star": 50.0}
        )
        assert response["ok"]

    def test_metrics_request_rejects_ongoing(self, small_dataset, small_splits):
        from repro.core.service import DomdService

        config = PipelineConfig(window_pct=50.0, k=6, gbm=GbmParams(n_estimators=10))
        estimator = DomdEstimator(config).fit(small_dataset, small_splits.train_ids)
        service = DomdService(estimator)
        ongoing = small_dataset.avails.filter(
            small_dataset.avails["status"] == "ongoing"
        )
        response = service.handle(
            {"type": "metrics", "avail_ids": [int(ongoing["avail_id"][0])]}
        )
        assert not response["ok"]
        assert response["error"]["code"] == "domain_error"
