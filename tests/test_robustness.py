"""Robustness fuzzing: persistence artefacts and service requests."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DomdEstimator, PipelineConfig
from repro.core.service import DomdService
from repro.ml import GbmParams, GradientBoostedTrees
from repro.persistence import gbm_from_payload, gbm_to_payload


@st.composite
def gbm_configs(draw):
    return GbmParams(
        n_estimators=draw(st.integers(1, 25)),
        learning_rate=draw(st.floats(0.01, 1.0)),
        max_depth=draw(st.integers(1, 5)),
        min_samples_leaf=draw(st.integers(1, 5)),
        reg_lambda=draw(st.floats(0.0, 10.0)),
        subsample=draw(st.floats(0.5, 1.0)),
        colsample=draw(st.floats(0.5, 1.0)),
        loss=draw(st.sampled_from(["l2", "l1", "pseudo_huber", "pinball"])),
        huber_delta=draw(st.floats(1.0, 50.0)),
        quantile=draw(st.floats(0.1, 0.9)),
        random_state=draw(st.integers(0, 100)),
    )


class TestPersistenceProperties:
    @given(gbm_configs())
    @settings(max_examples=20, deadline=None)
    def test_any_gbm_roundtrips_exactly(self, params):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 4))
        y = X @ rng.normal(size=4)
        model = GradientBoostedTrees(params).fit(X, y)
        payload = json.loads(json.dumps(gbm_to_payload(model)))  # via real JSON
        clone = gbm_from_payload(payload)
        np.testing.assert_array_equal(clone.predict(X), model.predict(X))
        np.testing.assert_array_equal(
            clone.feature_importances(), model.feature_importances()
        )


@pytest.fixture(scope="module")
def service(request):
    dataset = request.getfixturevalue("small_dataset")
    splits = request.getfixturevalue("small_splits")
    config = PipelineConfig(window_pct=50.0, k=6, gbm=GbmParams(n_estimators=10))
    estimator = DomdEstimator(config).fit(dataset, splits.train_ids)
    return DomdService(estimator)


# Arbitrary JSON-ish values to throw at the service.
json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-1000, 1000)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=12),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=8), children, max_size=3),
    max_leaves=6,
)


class TestServiceFuzz:
    @given(json_values)
    @settings(max_examples=60, deadline=None)
    def test_never_raises_on_arbitrary_requests(self, service, request_value):
        response = service.handle(request_value)
        assert isinstance(response, dict)
        assert response.get("ok") in (True, False)
        json.dumps(response, default=str)

    @given(
        st.fixed_dictionaries(
            {
                "type": st.sampled_from(
                    ["domd_query", "explain", "fleet_status", "metrics"]
                )
            },
            optional={
                "avail_ids": st.lists(st.integers(-5, 50), max_size=4),
                "avail_id": st.integers(-5, 50),
                "t_star": st.floats(-10, 300, allow_nan=False),
                "date": st.sampled_from(["2020-01-01", "not-a-date", ""]),
                "top": st.integers(-2, 10),
            },
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_structured_requests_always_enveloped(self, service, request_value):
        response = service.handle(request_value)
        assert isinstance(response, dict)
        if not response["ok"]:
            assert {"code", "message"} <= set(response["error"])
