"""Tests for x-fold scaling, obfuscation and data splits."""

import numpy as np
import pytest

from repro.data import (
    deobfuscate_dataset,
    obfuscate_dataset,
    scale_rccs,
    split_dataset,
)
from repro.data.splits import DataSplits
from repro.errors import ConfigurationError
from repro.index.hierarchy import swlin_prefix


class TestScaling:
    def test_row_count_multiplied(self, small_dataset):
        scaled = scale_rccs(small_dataset, 4)
        assert scaled.n_rccs == small_dataset.n_rccs * 4
        assert scaled.scaling_factor == 4

    def test_factor_one_is_identity(self, small_dataset):
        scaled = scale_rccs(small_dataset, 1)
        assert scaled.rccs.equals(small_dataset.rccs)

    def test_temporal_distribution_intact(self, small_dataset):
        scaled = scale_rccs(small_dataset, 3)
        original_dates = np.sort(np.unique(small_dataset.rccs["create_date"]))
        scaled_dates = np.sort(np.unique(scaled.rccs["create_date"]))
        np.testing.assert_array_equal(original_dates, scaled_dates)

    def test_type_mix_intact(self, small_dataset):
        scaled = scale_rccs(small_dataset, 3)
        for rcc_type in ("G", "N", "NG"):
            original = (small_dataset.rccs["rcc_type"] == rcc_type).sum()
            assert (scaled.rccs["rcc_type"] == rcc_type).sum() == original * 3

    def test_fresh_unique_ids(self, small_dataset):
        scaled = scale_rccs(small_dataset, 2)
        ids = scaled.rccs["rcc_id"]
        assert len(np.unique(ids)) == len(ids)

    def test_amount_jitter_bounded(self, small_dataset):
        scaled = scale_rccs(small_dataset, 2)
        n = small_dataset.n_rccs
        original = np.asarray(small_dataset.rccs["amount"])
        replicas = np.asarray(scaled.rccs["amount"])[n:]
        ratio = replicas / original
        assert (ratio > 0.97).all() and (ratio < 1.03).all()

    def test_invalid_factor(self, small_dataset):
        with pytest.raises(ConfigurationError):
            scale_rccs(small_dataset, 0)

    def test_avails_untouched(self, small_dataset):
        scaled = scale_rccs(small_dataset, 2)
        assert scaled.avails.equals(small_dataset.avails)


class TestObfuscation:
    def test_roundtrip_exact(self, small_dataset):
        obfuscated, key = obfuscate_dataset(small_dataset, seed=11)
        restored = deobfuscate_dataset(obfuscated, key)
        assert restored.ships.equals(small_dataset.ships)
        assert restored.avails.equals(small_dataset.avails)
        assert restored.rccs.equals(small_dataset.rccs)

    def test_delay_invariant(self, small_dataset):
        obfuscated, _ = obfuscate_dataset(small_dataset)
        np.testing.assert_array_equal(
            np.sort(obfuscated.delays()), np.sort(small_dataset.delays())
        )

    def test_dates_shifted(self, small_dataset):
        obfuscated, key = obfuscate_dataset(small_dataset)
        assert key.date_shift >= 3000
        diff = obfuscated.avails["plan_start"] - small_dataset.avails["plan_start"]
        assert (diff == key.date_shift).all()

    def test_amounts_scaled_uniformly(self, small_dataset):
        obfuscated, key = obfuscate_dataset(small_dataset)
        ratio = np.asarray(obfuscated.rccs["amount"]) / np.asarray(
            small_dataset.rccs["amount"]
        )
        np.testing.assert_allclose(ratio, key.amount_scale, rtol=1e-3)

    def test_ship_classes_anonymised(self, small_dataset):
        obfuscated, _ = obfuscate_dataset(small_dataset)
        for label in np.unique(obfuscated.ships["ship_class"]):
            assert label.startswith("CLASS_")

    def test_swlin_hierarchy_preserved(self, small_dataset):
        """Digit substitution must preserve prefix-equality relations."""
        obfuscated, _ = obfuscate_dataset(small_dataset)
        original = small_dataset.rccs["swlin"][:300]
        transformed = obfuscated.rccs["swlin"][:300]
        for level in (1, 2):
            orig_groups = [swlin_prefix(c, level) for c in original]
            new_groups = [swlin_prefix(c, level) for c in transformed]
            mapping: dict[str, str] = {}
            for a, b in zip(orig_groups, new_groups):
                assert mapping.setdefault(a, b) == b

    def test_ids_are_permutations(self, small_dataset):
        obfuscated, _ = obfuscate_dataset(small_dataset)
        assert sorted(obfuscated.avails["avail_id"]) == sorted(
            small_dataset.avails["avail_id"]
        )
        assert sorted(obfuscated.ships["ship_id"]) == sorted(
            small_dataset.ships["ship_id"]
        )


class TestSplits:
    def test_proportions(self, full_dataset):
        splits = split_dataset(full_dataset)
        assert splits.n_total == 187
        assert len(splits.test_ids) == round(187 * 0.30)
        remainder = 187 - len(splits.test_ids)
        assert len(splits.validation_ids) == round(remainder * 0.25)

    def test_test_set_is_most_recent(self, full_dataset):
        splits = split_dataset(full_dataset)
        avails = full_dataset.closed_avails()
        starts = {
            int(a): int(s)
            for a, s in zip(avails["avail_id"], avails["plan_start"])
        }
        max_trainval = max(
            starts[int(a)]
            for a in np.concatenate([splits.train_ids, splits.validation_ids])
        )
        min_test = min(starts[int(a)] for a in splits.test_ids)
        assert min_test >= max_trainval

    def test_no_ongoing_in_any_split(self, full_dataset):
        splits = split_dataset(full_dataset)
        ongoing = set(
            int(a)
            for a in full_dataset.avails.filter(
                full_dataset.avails["status"] == "ongoing"
            )["avail_id"]
        )
        all_ids = set(map(int, np.concatenate([
            splits.train_ids, splits.validation_ids, splits.test_ids
        ])))
        assert not (all_ids & ongoing)

    def test_deterministic(self, full_dataset):
        a = split_dataset(full_dataset, seed=9)
        b = split_dataset(full_dataset, seed=9)
        np.testing.assert_array_equal(a.train_ids, b.train_ids)

    def test_seed_changes_train_val_but_not_test(self, full_dataset):
        a = split_dataset(full_dataset, seed=1)
        b = split_dataset(full_dataset, seed=2)
        np.testing.assert_array_equal(a.test_ids, b.test_ids)
        assert not np.array_equal(a.train_ids, b.train_ids)

    def test_overlap_rejected(self):
        with pytest.raises(ConfigurationError, match="overlap"):
            DataSplits(
                train_ids=np.array([1, 2]),
                validation_ids=np.array([2, 3]),
                test_ids=np.array([4]),
            )

    def test_invalid_fractions(self, full_dataset):
        with pytest.raises(ConfigurationError):
            split_dataset(full_dataset, test_fraction=1.5)
        with pytest.raises(ConfigurationError):
            split_dataset(full_dataset, validation_fraction=0.0)

    def test_summary(self, full_dataset):
        summary = split_dataset(full_dataset).summary()
        assert set(summary) == {"train", "validation", "test"}
