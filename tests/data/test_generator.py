"""Tests for the synthetic NMD generator."""

import numpy as np
import pytest

from repro.data import SyntheticNmdConfig, generate_dataset
from repro.data.dates import MISSING_DATE
from repro.errors import DataGenerationError
from repro.index.hierarchy import normalize_swlin


class TestPaperCardinalities:
    def test_table5_statistics(self, full_dataset):
        stats = full_dataset.statistics()
        assert stats["n_ships"] == 73
        assert stats["n_closed_avails"] == 187
        assert stats["n_rccs"] == 52_959

    def test_deterministic_given_seed(self):
        config = SyntheticNmdConfig(
            n_ships=5, n_closed_avails=10, n_ongoing_avails=0, target_n_rccs=500, seed=42
        )
        a = generate_dataset(config)
        b = generate_dataset(config)
        assert a.avails.equals(b.avails)
        assert a.rccs.equals(b.rccs)

    def test_different_seeds_differ(self):
        base = dict(n_ships=5, n_closed_avails=10, n_ongoing_avails=0, target_n_rccs=500)
        a = generate_dataset(SyntheticNmdConfig(seed=1, **base))
        b = generate_dataset(SyntheticNmdConfig(seed=2, **base))
        assert not a.rccs.equals(b.rccs)


class TestDelayDistribution:
    def test_heavy_tail_shape(self, full_dataset):
        delays = full_dataset.delays()
        assert delays.mean() > 60  # months of average delay
        assert delays.max() > 365  # some multi-year cases (Figure 2)
        assert delays.min() < 0  # some early completions
        assert (delays < 0).mean() < 0.25  # but a minority

    def test_delay_consistent_with_dates(self, full_dataset):
        closed = full_dataset.closed_avails()
        actual = closed["act_end"] - closed["act_start"]
        planned = closed["plan_end"] - closed["plan_start"]
        np.testing.assert_array_equal(
            np.asarray(closed["delay"], dtype=np.int64), actual - planned
        )

    def test_ongoing_have_nan_delay_and_no_end(self, full_dataset):
        ongoing = full_dataset.avails.filter(full_dataset.avails["status"] == "ongoing")
        assert ongoing.n_rows == 5
        assert np.isnan(ongoing["delay"]).all()
        assert (ongoing["act_end"] == MISSING_DATE).all()


class TestAvailValidity:
    def test_planned_duration_matches_dates(self, full_dataset):
        avails = full_dataset.avails
        np.testing.assert_array_equal(
            avails["planned_duration"], avails["plan_end"] - avails["plan_start"]
        )

    def test_actual_start_not_before_plan(self, full_dataset):
        avails = full_dataset.avails
        assert (avails["act_start"] >= avails["plan_start"]).all()

    def test_prior_avail_counts_consistent(self, full_dataset):
        avails = full_dataset.avails
        # Within each ship, prior counts are 0..k-1 in chronological order.
        ships = np.asarray(avails["ship_id"])
        priors = np.asarray(avails["n_prior_avails"])
        starts = np.asarray(avails["plan_start"])
        for ship in np.unique(ships):
            mask = ships == ship
            order = np.argsort(starts[mask], kind="stable")
            assert priors[mask][order].tolist() == list(range(mask.sum()))

    def test_every_ship_has_an_avail(self, full_dataset):
        assert len(np.unique(full_dataset.avails["ship_id"])) == 73

    def test_static_attributes_present(self, full_dataset):
        avails = full_dataset.avails
        assert set(np.unique(avails["avail_type"])) <= {"docking", "pierside"}
        assert (avails["ship_age"] > 0).all()


class TestRccValidity:
    def test_settle_after_create(self, full_dataset):
        rccs = full_dataset.rccs
        assert (rccs["settle_date"] > rccs["create_date"]).all()

    def test_amounts_positive(self, full_dataset):
        assert (full_dataset.rccs["amount"] > 0).all()

    def test_types_valid(self, full_dataset):
        assert set(np.unique(full_dataset.rccs["rcc_type"])) == {"G", "N", "NG"}

    def test_swlin_codes_valid(self, full_dataset):
        codes = full_dataset.rccs["swlin"][:500]
        for code in codes:
            digits = normalize_swlin(code)
            assert digits[0] != "0"

    def test_rccs_created_within_execution(self, full_dataset):
        rccs = full_dataset.rccs.merge(
            full_dataset.avails.select(["avail_id", "act_start"]), on="avail_id"
        )
        assert (rccs["create_date"] >= rccs["act_start"]).all()

    def test_every_closed_avail_has_rccs(self, full_dataset):
        counts = full_dataset.rccs.group_by("avail_id").sizes()
        closed_ids = set(int(a) for a in full_dataset.closed_avails()["avail_id"])
        ids_with_rccs = set(int(a) for a in counts["avail_id"])
        assert closed_ids <= ids_with_rccs

    def test_trouble_drives_rcc_volume(self, full_dataset):
        trouble = full_dataset.notes["trouble"]
        counts = full_dataset.rccs.group_by("avail_id").sizes().sort_by("avail_id")
        corr = np.corrcoef(trouble[: counts.n_rows], counts["count"])[0, 1]
        assert corr > 0.8


class TestConfigValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("n_ships", 0),
            ("n_ships", -1),
            ("n_closed_avails", 0),
            ("n_closed_avails", -3),
            ("target_n_rccs", 0),
            ("target_n_rccs", -50),
        ],
    )
    def test_nonpositive_counts_rejected(self, field, value):
        with pytest.raises(DataGenerationError, match=field):
            SyntheticNmdConfig(**{field: value})

    def test_negative_ongoing_rejected(self):
        with pytest.raises(DataGenerationError, match="n_ongoing_avails"):
            SyntheticNmdConfig(n_ongoing_avails=-1)

    def test_zero_ongoing_allowed(self):
        config = SyntheticNmdConfig(
            n_ships=3, n_closed_avails=11, n_ongoing_avails=0, target_n_rccs=60
        )
        dataset = generate_dataset(config)
        assert (dataset.avails["status"] == "closed").all()

    def test_too_few_rccs_rejected(self):
        with pytest.raises(DataGenerationError, match="at least one RCC"):
            SyntheticNmdConfig(n_closed_avails=100, target_n_rccs=50)

    def test_rcc_floor_counts_ongoing_avails(self):
        # 12 avails in total need at least 12 RCCs, not 10.
        with pytest.raises(DataGenerationError, match="at least one RCC"):
            SyntheticNmdConfig(
                n_closed_avails=10, n_ongoing_avails=2, target_n_rccs=11
            )

    def test_boundary_one_rcc_per_avail_generates(self):
        config = SyntheticNmdConfig(
            n_ships=2, n_closed_avails=10, n_ongoing_avails=1, target_n_rccs=11
        )
        dataset = generate_dataset(config)
        assert dataset.n_rccs == 11
        counts = dataset.rccs.group_by("avail_id").sizes()
        assert (counts["count"] == 1).all()
