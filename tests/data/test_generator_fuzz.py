"""Fuzz the generator + pipeline against odd-but-legal configurations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import SyntheticNmdConfig, generate_dataset, split_dataset
from repro.features import StatusFeatureExtractor


@st.composite
def odd_configs(draw):
    n_ships = draw(st.integers(2, 15))
    n_closed = draw(st.integers(12, 40))
    n_ongoing = draw(st.integers(0, 3))
    n_rccs = draw(st.integers(n_closed + n_ongoing, 2000))
    seed = draw(st.integers(0, 2**16))
    return SyntheticNmdConfig(
        n_ships=n_ships,
        n_closed_avails=n_closed,
        n_ongoing_avails=n_ongoing,
        target_n_rccs=n_rccs,
        seed=seed,
        trouble_shape=draw(st.floats(2.0, 60.0)),
        trouble_scale=draw(st.floats(0.01, 0.5)),
        delay_per_trouble=draw(st.floats(10.0, 200.0)),
        delay_noise_sd=draw(st.floats(1.0, 40.0)),
        early_shift_days=draw(st.floats(0.0, 60.0)),
    )


class TestGeneratorFuzz:
    @given(odd_configs())
    @settings(max_examples=25, deadline=None)
    def test_dataset_always_valid(self, config):
        dataset = generate_dataset(config)
        assert dataset.n_ships == config.n_ships
        assert dataset.n_rccs == config.target_n_rccs
        rccs = dataset.rccs
        assert (rccs["settle_date"] > rccs["create_date"]).all()
        assert (rccs["amount"] > 0).all()
        delays = dataset.delays()
        assert np.isfinite(delays).all()
        assert (delays >= -45).all() and (delays <= 1100).all()

    @given(odd_configs())
    @settings(max_examples=10, deadline=None)
    def test_feature_extraction_never_breaks(self, config):
        dataset = generate_dataset(config)
        tensor = StatusFeatureExtractor(
            dataset, t_stars=np.array([0.0, 50.0, 100.0])
        ).extract()
        assert np.isfinite(tensor.values).all()

    @given(odd_configs())
    @settings(max_examples=10, deadline=None)
    def test_splits_always_partition(self, config):
        dataset = generate_dataset(config)
        splits = split_dataset(dataset)
        closed = set(int(a) for a in dataset.closed_avails()["avail_id"])
        combined = set(
            map(
                int,
                np.concatenate(
                    [splits.train_ids, splits.validation_ids, splits.test_ids]
                ),
            )
        )
        assert combined == closed
