"""Tests for date handling and logical time (Equation 1)."""

import datetime as dt

import numpy as np
import pytest
from hypothesis import example, given, strategies as st

from repro.data.dates import (
    MISSING_DATE,
    day_to_iso,
    days_between,
    iso_to_day,
    logical_time,
    physical_time,
)


class TestConversions:
    def test_roundtrip(self):
        day = iso_to_day("2020-06-15")
        assert day_to_iso(day) == "2020-06-15"

    def test_missing_roundtrip(self):
        assert iso_to_day("") == MISSING_DATE
        assert day_to_iso(MISSING_DATE) == ""

    def test_ordering(self):
        assert iso_to_day("2020-01-01") < iso_to_day("2021-01-01")

    def test_days_between(self):
        assert days_between(iso_to_day("2020-01-11"), iso_to_day("2020-01-01")) == 10


class TestConversionProperties:
    """Property tests: iso<->day is a bijection over the date domain."""

    @given(date=st.dates())
    @example(date=dt.date(2020, 2, 29))  # leap day
    @example(date=dt.date(2000, 2, 29))  # 400-year-rule leap day
    @example(date=dt.date(1900, 3, 1))   # day after the 100-year non-leap
    @example(date=dt.date(1969, 12, 31))  # pre-Unix-epoch
    @example(date=dt.date(1, 1, 1))      # smallest representable ordinal
    @example(date=dt.date(9999, 12, 31))
    def test_iso_day_roundtrip(self, date):
        iso = date.isoformat()
        day = iso_to_day(iso)
        assert day == date.toordinal()
        assert day_to_iso(day) == iso
        # a real date never collides with the missing sentinel
        assert day != MISSING_DATE

    @given(date=st.dates())
    def test_day_iso_roundtrip(self, date):
        day = date.toordinal()
        assert iso_to_day(day_to_iso(day)) == day

    @given(a=st.dates(), b=st.dates())
    def test_ordering_preserved(self, a, b):
        assert (iso_to_day(a.isoformat()) < iso_to_day(b.isoformat())) == (a < b)

    @given(a=st.dates(), b=st.dates())
    def test_days_between_matches_timedelta(self, a, b):
        assert days_between(
            iso_to_day(a.isoformat()), iso_to_day(b.isoformat())
        ) == (a - b).days

    def test_missing_sentinel_is_stable(self):
        # Both directions of the sentinel mapping, fixed forever.
        assert iso_to_day("") == MISSING_DATE
        assert day_to_iso(MISSING_DATE) == ""
        assert iso_to_day(day_to_iso(MISSING_DATE)) == MISSING_DATE


class TestLogicalTime:
    def test_paper_example(self):
        # Avail 2: actual start 5/7/2019, planned duration 340 days;
        # t = 7/06/2019 is 60 days in -> t* = 60/340*100 = 17.6 ~ 18%.
        act_start = iso_to_day("2019-05-07")
        plan_duration = iso_to_day("2020-04-11") - iso_to_day("2019-05-07")
        t = iso_to_day("2019-07-06")
        t_star = logical_time(t, act_start, plan_duration)
        assert round(t_star) == 18

    def test_zero_at_start(self):
        assert logical_time(100.0, 100.0, 50.0) == 0.0

    def test_hundred_at_planned_end(self):
        assert logical_time(150.0, 100.0, 50.0) == 100.0

    def test_beyond_planned_end(self):
        assert logical_time(200.0, 100.0, 50.0) == 200.0

    def test_negative_before_start(self):
        assert logical_time(90.0, 100.0, 50.0) < 0

    def test_vectorised(self):
        out = logical_time(np.array([100.0, 125.0]), 100.0, 50.0)
        assert out.tolist() == [0.0, 50.0]

    def test_physical_inverse(self):
        for t_star in [0.0, 33.3, 100.0, 180.0]:
            physical = physical_time(t_star, 1000.0, 200.0)
            assert logical_time(physical, 1000.0, 200.0) == pytest.approx(t_star)
