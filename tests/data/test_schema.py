"""Tests for the NMD data model (Section 2 definitions)."""

import numpy as np
import pytest

from repro.data import Avail, NavyMaintenanceDataset, Rcc
from repro.data.dates import MISSING_DATE, iso_to_day
from repro.errors import SchemaError
from repro.table import ColumnTable


class TestAvailRecord:
    def test_paper_delay_example(self):
        # Avail id 2 from Table 1: planned 5/7/19 - 4/11/20,
        # actual 5/7/19 - 5/21/21 -> delay 405.
        avail = Avail(
            avail_id=2,
            ship_id=246,
            status="closed",
            plan_start=iso_to_day("2019-05-07"),
            plan_end=iso_to_day("2020-04-11"),
            act_start=iso_to_day("2019-05-07"),
            act_end=iso_to_day("2021-05-21"),
        )
        assert avail.planned_duration == 340
        assert avail.actual_duration == 745
        assert avail.delay == 405

    def test_negative_delay_early_finish(self):
        # Avail id 5 from Table 1: late start but early finish -> -27.
        avail = Avail(
            avail_id=5,
            ship_id=1547,
            status="closed",
            plan_start=iso_to_day("2020-01-31"),
            plan_end=iso_to_day("2020-08-19"),
            act_start=iso_to_day("2020-02-27"),
            act_end=iso_to_day("2020-08-19"),
        )
        assert avail.delay == -27

    def test_delay_agnostic_of_late_start(self):
        # Late start with same duration -> zero delay by definition.
        avail = Avail(1, 1, "closed", 100, 200, 150, 250)
        assert avail.delay == 0

    def test_ongoing_has_no_delay(self):
        avail = Avail(1, 1, "ongoing", 100, 200, 100, MISSING_DATE)
        assert avail.delay is None
        assert avail.actual_duration is None

    def test_logical_time_of(self):
        avail = Avail(1, 1, "closed", 0, 100, 0, 150)
        assert avail.logical_time_of(50.0) == 50.0
        assert avail.logical_time_of(150.0) == 150.0


class TestRccRecord:
    def test_duration(self):
        rcc = Rcc(1, 5, "G", "434-11-001", 100, 150, 8000.0)
        assert rcc.duration == 50


class TestDataset:
    def test_statistics_shape(self, small_dataset):
        stats = small_dataset.statistics()
        assert stats["n_ships"] == 10
        assert stats["n_closed_avails"] == 28
        assert stats["n_rccs"] == 2500

    def test_avail_lookup(self, small_dataset):
        avail = small_dataset.avail(0)
        assert avail.avail_id == 0
        assert avail.planned_duration > 0

    def test_avail_lookup_missing(self, small_dataset):
        with pytest.raises(SchemaError):
            small_dataset.avail(10_000)

    def test_rccs_of(self, small_dataset):
        rccs = small_dataset.rccs_of(0)
        assert rccs.n_rows > 0
        assert (rccs["avail_id"] == 0).all()

    def test_closed_avails_excludes_ongoing(self, small_dataset):
        closed = small_dataset.closed_avails()
        assert closed.n_rows == 28
        assert (closed["status"] == "closed").all()

    def test_delays_align_with_closed(self, small_dataset):
        delays = small_dataset.delays()
        assert len(delays) == 28
        assert not np.isnan(delays).any()

    def test_schema_validation(self):
        with pytest.raises(SchemaError, match="missing columns"):
            NavyMaintenanceDataset(
                ships=ColumnTable({"ship_id": [1]}),
                avails=ColumnTable({"avail_id": [1]}),
                rccs=ColumnTable({"rcc_id": [1]}),
            )

    def test_logical_times_added(self, toy_dataset):
        rccs = toy_dataset.rccs_with_logical_times()
        assert "t_start" in rccs and "t_end" in rccs
        # rcc 0 of avail 0: created day 1010 over 100-day plan -> t*=10.
        row = rccs.filter(rccs["rcc_id"] == 0).row(0)
        assert row["t_start"] == pytest.approx(10.0)
        assert row["t_end"] == pytest.approx(50.0)

    def test_logical_times_scale_with_duration(self, toy_dataset):
        rccs = toy_dataset.rccs_with_logical_times()
        # rcc 3 of avail 1: created day 2050, actual start 2010,
        # planned 200 days -> t* = 40/200*100 = 20.
        row = rccs.filter(rccs["rcc_id"] == 3).row(0)
        assert row["t_start"] == pytest.approx(20.0)
        assert row["t_end"] == pytest.approx(50.0)

    def test_logical_times_can_exceed_100(self, toy_dataset):
        rccs = toy_dataset.rccs_with_logical_times()
        row = rccs.filter(rccs["rcc_id"] == 1).row(0)
        assert row["t_end"] == pytest.approx(120.0)
