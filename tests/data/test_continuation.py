"""Tests for dataset continuation (new avails after a snapshot)."""

import numpy as np
import pytest

from repro.data import generate_continuation
from repro.errors import ConfigurationError


class TestContinuation:
    def test_counts_grow(self, small_dataset):
        extended = generate_continuation(small_dataset, n_new_closed=6, seed=9)
        assert extended.n_avails == small_dataset.n_avails + 6
        assert extended.n_rccs > small_dataset.n_rccs
        assert extended.n_ships == small_dataset.n_ships

    def test_original_rows_untouched(self, small_dataset):
        extended = generate_continuation(small_dataset, n_new_closed=4, seed=9)
        original_part = extended.avails.take(np.arange(small_dataset.n_avails))
        assert original_part.equals(small_dataset.avails)

    def test_new_avails_are_later(self, small_dataset):
        extended = generate_continuation(small_dataset, n_new_closed=5, seed=9)
        cutoff = int(np.max(small_dataset.avails["plan_start"]))
        new = extended.avails.filter(
            ~np.isin(extended.avails["avail_id"], small_dataset.avails["avail_id"])
        )
        assert (new["plan_start"] > cutoff).all()
        assert (new["status"] == "closed").all()

    def test_ids_unique_and_continued(self, small_dataset):
        extended = generate_continuation(small_dataset, n_new_closed=5, seed=9)
        avail_ids = np.asarray(extended.avails["avail_id"])
        rcc_ids = np.asarray(extended.rccs["rcc_id"])
        assert len(np.unique(avail_ids)) == len(avail_ids)
        assert len(np.unique(rcc_ids)) == len(rcc_ids)

    def test_prior_counts_continue_per_ship(self, small_dataset):
        extended = generate_continuation(small_dataset, n_new_closed=8, seed=9)
        ships = np.asarray(extended.avails["ship_id"])
        priors = np.asarray(extended.avails["n_prior_avails"])
        starts = np.asarray(extended.avails["plan_start"])
        for ship in np.unique(ships):
            mask = ships == ship
            order = np.argsort(starts[mask], kind="stable")
            assert priors[mask][order].tolist() == list(range(mask.sum()))

    def test_delay_process_consistent(self, small_dataset):
        extended = generate_continuation(small_dataset, n_new_closed=20, seed=9)
        new = extended.avails.filter(
            ~np.isin(extended.avails["avail_id"], small_dataset.avails["avail_id"])
        )
        delays = np.asarray(new["delay"], dtype=float)
        assert np.isfinite(delays).all()
        assert (delays >= -45).all() and (delays <= 1100).all()

    def test_new_rccs_within_execution(self, small_dataset):
        extended = generate_continuation(small_dataset, n_new_closed=5, seed=9)
        joined = extended.rccs.merge(
            extended.avails.select(["avail_id", "act_start"]), on="avail_id"
        )
        assert (joined["create_date"] >= joined["act_start"]).all()

    def test_deterministic(self, small_dataset):
        a = generate_continuation(small_dataset, n_new_closed=5, seed=9)
        b = generate_continuation(small_dataset, n_new_closed=5, seed=9)
        assert a.avails.equals(b.avails)
        assert a.rccs.equals(b.rccs)

    def test_invalid_count(self, small_dataset):
        with pytest.raises(ConfigurationError):
            generate_continuation(small_dataset, n_new_closed=0)

    def test_retrain_workflow_end_to_end(self, small_dataset, small_splits):
        """The continuation is what makes unattended retraining testable:
        more (exchangeable) data should be promotable."""
        from repro.core import PipelineConfig, RetrainManager
        from repro.ml import GbmParams

        manager = RetrainManager(
            config=PipelineConfig(window_pct=50.0, k=6, gbm=GbmParams(n_estimators=10)),
            tolerance=0.10,
        )
        manager.bootstrap(small_dataset, small_splits.train_ids)
        extended = generate_continuation(small_dataset, n_new_closed=10, seed=7)
        new_ids = np.setdiff1d(
            np.asarray(extended.closed_avails()["avail_id"], dtype=np.int64),
            np.asarray(small_dataset.avails["avail_id"], dtype=np.int64),
        )
        bigger_train = np.sort(np.concatenate([small_splits.train_ids, new_ids]))
        decision = manager.consider(extended, bigger_train, small_splits.test_ids)
        assert np.isfinite(decision.candidate_mae)
        assert decision.n_train == len(bigger_train)
