"""Tests for dataset persistence."""

import pytest

from repro.data import load_dataset, save_dataset
from repro.errors import SchemaError


class TestSaveLoad:
    def test_roundtrip(self, small_dataset, tmp_path):
        save_dataset(small_dataset, tmp_path / "nmd")
        back = load_dataset(tmp_path / "nmd")
        assert back.avails.equals(small_dataset.avails)
        assert back.rccs.equals(small_dataset.rccs)
        assert back.ships.equals(small_dataset.ships)

    def test_metadata_preserved(self, small_dataset, tmp_path):
        save_dataset(small_dataset, tmp_path / "nmd")
        back = load_dataset(tmp_path / "nmd")
        assert back.seed == small_dataset.seed
        assert back.scaling_factor == small_dataset.scaling_factor

    def test_missing_directory(self, tmp_path):
        with pytest.raises(SchemaError):
            load_dataset(tmp_path / "nowhere")

    def test_partial_directory(self, small_dataset, tmp_path):
        save_dataset(small_dataset, tmp_path / "nmd")
        (tmp_path / "nmd" / "rccs.csv").unlink()
        with pytest.raises(SchemaError, match="rccs"):
            load_dataset(tmp_path / "nmd")

    def test_statistics_survive(self, small_dataset, tmp_path):
        save_dataset(small_dataset, tmp_path / "nmd")
        back = load_dataset(tmp_path / "nmd")
        assert back.statistics()["n_rccs"] == small_dataset.statistics()["n_rccs"]
