"""Shared fixtures: session-scoped datasets so the suite stays fast."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data import SyntheticNmdConfig, generate_dataset, split_dataset
from repro.data.dates import iso_to_day
from repro.data.schema import NavyMaintenanceDataset
from repro.table import ColumnTable


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run tests marked slow (full regime matrix, full-scale sweeps)",
    )


def pytest_collection_modifyitems(config, items) -> None:
    if config.getoption("--runslow") or os.environ.get("REPRO_RUN_SLOW"):
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --runslow or set REPRO_RUN_SLOW=1")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture(scope="session")
def small_dataset() -> NavyMaintenanceDataset:
    """A fast miniature NMD (30 avails, ~2.5k RCCs)."""
    return generate_dataset(
        SyntheticNmdConfig(
            n_ships=10,
            n_closed_avails=28,
            n_ongoing_avails=2,
            target_n_rccs=2_500,
            seed=3,
        )
    )


@pytest.fixture(scope="session")
def small_splits(small_dataset):
    return split_dataset(small_dataset, seed=5)


@pytest.fixture(scope="session")
def full_dataset() -> NavyMaintenanceDataset:
    """The paper-scale dataset (73 ships / 187 closed avails / 52,959 RCCs)."""
    return generate_dataset()


@pytest.fixture()
def toy_dataset() -> NavyMaintenanceDataset:
    """Hand-built dataset with exactly known feature values.

    One ship, two closed avails:

    * avail 0: planned 100 days (day 1000..1100), started on time,
      actual end day 1150 -> delay 50.  Three RCCs.
    * avail 1: planned 200 days (day 2000..2200), started day 2010,
      actual end day 2210 -> actual duration 200, delay 0.  One RCC.
    """
    ships = ColumnTable(
        {
            "ship_id": [1],
            "ship_class": ["DDG"],
            "commission_year": [2000],
            "rmc_id": [2],
            "displacement": [9200.0],
        }
    )
    avails = ColumnTable(
        {
            "avail_id": [0, 1],
            "ship_id": [1, 1],
            "status": ["closed", "closed"],
            "plan_start": [1000, 2000],
            "plan_end": [1100, 2200],
            "act_start": [1000, 2010],
            "act_end": [1150, 2210],
            "delay": [50.0, 0.0],
            "ship_class": ["DDG", "DDG"],
            "rmc_id": [2, 2],
            "ship_age": [10, 12],
            "planned_duration": [100, 200],
            "n_prior_avails": [0, 1],
            "avail_type": ["docking", "pierside"],
            "start_quarter": [1, 3],
            "displacement": [9200.0, 9200.0],
        }
    )
    # avail 0 RCCs (logical time = (day - 1000) / 100 * 100 = day - 1000):
    #   rcc 0: G, swlin 1..., created day 1010 (t*=10), settled 1050 (t*=50), $1000
    #   rcc 1: N, swlin 2..., created day 1030 (t*=30), settled 1120 (t*=120), $2000
    #   rcc 2: G, swlin 1..., created day 1060 (t*=60), settled 1080 (t*=80), $4000
    # avail 1 RCC (logical = (day - 2010) / 200 * 100):
    #   rcc 3: NG, swlin 9..., created day 2050 (t*=20), settled 2110 (t*=50), $8000
    rccs = ColumnTable(
        {
            "rcc_id": [0, 1, 2, 3],
            "avail_id": [0, 0, 0, 1],
            "rcc_type": ["G", "N", "G", "NG"],
            "swlin": ["111-11-001", "222-22-002", "133-00-003", "999-90-009"],
            "create_date": [1010, 1030, 1060, 2050],
            "settle_date": [1050, 1120, 1080, 2110],
            "status": ["settled"] * 4,
            "amount": [1000.0, 2000.0, 4000.0, 8000.0],
        }
    )
    return NavyMaintenanceDataset(ships=ships, avails=avails, rccs=rccs, seed=0)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture()
def sample_day() -> int:
    return iso_to_day("2020-06-15")
