"""Tests for the benchmark harness utilities and the error hierarchy."""

import numpy as np
import pytest

from repro.bench import (
    SCALING_FACTORS,
    TIMELINE_10PCT,
    format_table,
    logical_rcc_arrays,
    scaled_dataset,
    sweep_status_queries,
)
from repro.bench.reporting import (
    compare_bench_metrics,
    compare_bench_metrics_detailed,
    emit_json,
    emit_report,
)
from repro.errors import (
    ColumnNotFoundError,
    ConfigurationError,
    IndexCorruptionError,
    NotFittedError,
    ReproError,
    SchemaError,
)
from repro.index import StatusQueryEngine


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_float_rendering(self):
        out = format_table(["x"], [[3.14159265]])
        assert "3.142" in out

    def test_empty_rows(self):
        out = format_table(["x", "y"], [])
        assert "x" in out and "y" in out


class TestEmitReport:
    def test_writes_file(self, tmp_path, capsys):
        path = emit_report("unit", "A title", "body text", directory=tmp_path)
        assert path.read_text().startswith("== A title ==")
        assert "body text" in capsys.readouterr().out


class TestBenchJson:
    def test_emit_json_writes_sorted_metrics(self, tmp_path):
        import json

        path = emit_json("unit", {"b": 2.0, "a": 1.0}, directory=tmp_path)
        assert path.name == "BENCH_unit.json"
        payload = json.loads(path.read_text())
        assert payload["name"] == "unit"
        assert list(payload["metrics"]) == ["a", "b"]

    def test_compare_flags_regressions_over_threshold(self):
        baseline = {"metrics": {"build": 1.0, "query": 0.10}}
        current = {"metrics": {"build": 1.5, "query": 0.11}}
        messages = compare_bench_metrics(baseline, current, threshold=0.25)
        assert len(messages) == 1
        assert messages[0].startswith("build:")
        assert "+50%" in messages[0]

    def test_compare_ignores_improvements_and_new_metrics(self):
        baseline = {"metrics": {"build": 1.0}}
        current = {"metrics": {"build": 0.5, "fresh": 9.0}}
        assert compare_bench_metrics(baseline, current) == []

    def test_detailed_compare_records_improvements(self):
        baseline = {"metrics": {"build": 1.0, "query": 0.10}}
        current = {"metrics": {"build": 0.5, "query": 0.11}}
        deltas = compare_bench_metrics_detailed(baseline, current, threshold=0.25)
        assert [(d.key, d.kind) for d in deltas] == [("build", "improvement")]
        assert "-50%" in deltas[0].message()

    def test_detailed_compare_classifies_both_directions(self):
        baseline = {"metrics": {"a": 1.0, "b": 1.0, "c": 1.0}}
        current = {"metrics": {"a": 2.0, "b": 0.25, "c": 1.1}}
        deltas = compare_bench_metrics_detailed(baseline, current, threshold=0.25)
        assert {(d.key, d.kind) for d in deltas} == {
            ("a", "regression"),
            ("b", "improvement"),
        }

    def test_compare_ignores_sub_millisecond_noise(self):
        baseline = {"metrics": {"tiny": 1e-5}}
        current = {"metrics": {"tiny": 9e-4}}  # 90x but still under 1ms
        assert compare_bench_metrics(baseline, current) == []
        assert compare_bench_metrics_detailed(baseline, current) == []

    def test_compare_accepts_bare_metric_dicts(self):
        messages = compare_bench_metrics({"x": 1.0}, {"x": 2.0})
        assert len(messages) == 1


class TestWorkloads:
    def test_scaling_factors_match_paper(self):
        assert SCALING_FACTORS == (1, 5, 10, 15, 20)

    def test_timeline_10pct(self):
        assert TIMELINE_10PCT == [0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0]

    def test_scaled_dataset_cached(self, small_dataset):
        a = scaled_dataset(small_dataset, 2)
        b = scaled_dataset(small_dataset, 2)
        assert a is b
        assert a.n_rccs == small_dataset.n_rccs * 2

    def test_logical_rcc_arrays_shapes(self, small_dataset):
        starts, ends, ids, table = logical_rcc_arrays(small_dataset, 2)
        assert len(starts) == len(ends) == len(ids) == table.n_rows
        assert (ends >= starts).all()

    def test_sweep_helper_times_execution(self, small_dataset):
        table = logical_rcc_arrays(small_dataset, 1)[3]
        engine = StatusQueryEngine(table, design="avl")
        elapsed = sweep_status_queries(engine, [0.0, 50.0, 100.0])
        assert elapsed > 0


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            SchemaError("x"),
            ConfigurationError("x"),
            IndexCorruptionError("x"),
            NotFittedError("x"),
        ):
            assert isinstance(exc, ReproError)

    def test_column_not_found_is_keyerror(self):
        exc = ColumnNotFoundError("ghost", ("a", "b"))
        assert isinstance(exc, KeyError)
        assert "ghost" in str(exc)
        assert "a, b" in str(exc)

    def test_catchable_as_single_family(self, small_dataset):
        with pytest.raises(ReproError):
            small_dataset.avail(999_999)
