"""Tests for model persistence (save/load without retraining)."""

import json

import numpy as np
import pytest

from repro.core import DomdEstimator, PipelineConfig
from repro.errors import ConfigurationError, NotFittedError
from repro.ml import ElasticNet, GbmParams, GradientBoostedTrees
from repro.persistence import (
    elastic_net_from_payload,
    elastic_net_to_payload,
    gbm_from_payload,
    gbm_to_payload,
    load_estimator,
    save_estimator,
)


@pytest.fixture()
def problem(rng):
    X = rng.normal(size=(80, 6))
    y = 2 * X[:, 0] + np.sin(X[:, 1]) + rng.normal(0, 0.1, 80)
    return X, y


class TestGbmRoundtrip:
    def test_predictions_identical(self, problem):
        X, y = problem
        model = GradientBoostedTrees(
            GbmParams(n_estimators=30, loss="pseudo_huber")
        ).fit(X, y)
        clone = gbm_from_payload(gbm_to_payload(model))
        np.testing.assert_array_equal(clone.predict(X), model.predict(X))

    def test_contributions_identical(self, problem):
        X, y = problem
        model = GradientBoostedTrees(GbmParams(n_estimators=15)).fit(X, y)
        clone = gbm_from_payload(gbm_to_payload(model))
        np.testing.assert_array_equal(clone.contributions(X), model.contributions(X))

    def test_payload_is_json_serialisable(self, problem):
        X, y = problem
        model = GradientBoostedTrees(GbmParams(n_estimators=5)).fit(X, y)
        json.dumps(gbm_to_payload(model))

    def test_unfitted_rejected(self):
        with pytest.raises(NotFittedError):
            gbm_to_payload(GradientBoostedTrees())


class TestElasticNetRoundtrip:
    def test_predictions_identical(self, problem):
        X, y = problem
        model = ElasticNet(alpha=0.2, l1_ratio=0.7).fit(X, y)
        clone = elastic_net_from_payload(elastic_net_to_payload(model))
        np.testing.assert_allclose(clone.predict(X), model.predict(X))

    def test_unfitted_rejected(self):
        with pytest.raises(NotFittedError):
            elastic_net_to_payload(ElasticNet())


class TestEstimatorRoundtrip:
    @pytest.fixture(scope="class")
    def fitted(self, request):
        dataset = request.getfixturevalue("small_dataset")
        splits = request.getfixturevalue("small_splits")
        config = PipelineConfig(
            window_pct=25.0, k=8, fusion="average", gbm=GbmParams(n_estimators=20)
        )
        return dataset, splits, DomdEstimator(config).fit(dataset, splits.train_ids)

    def test_queries_identical_after_roundtrip(self, fitted, tmp_path):
        dataset, splits, estimator = fitted
        path = tmp_path / "model.json"
        save_estimator(estimator, path)
        loaded = load_estimator(path, dataset)
        for avail_id in [0, int(splits.test_ids[0])]:
            original = estimator.query([avail_id], t_star=75.0)[0]
            restored = loaded.query([avail_id], t_star=75.0)[0]
            np.testing.assert_allclose(
                restored.window_estimates, original.window_estimates
            )
            assert restored.current_estimate == pytest.approx(
                original.current_estimate
            )

    def test_explanations_identical(self, fitted, tmp_path):
        dataset, _, estimator = fitted
        path = tmp_path / "model.json"
        save_estimator(estimator, path)
        loaded = load_estimator(path, dataset)
        a = estimator.explain(0, 50.0, top=5)
        b = loaded.explain(0, 50.0, top=5)
        assert [c.name for c in a] == [c.name for c in b]
        np.testing.assert_allclose(
            [c.contribution for c in a], [c.contribution for c in b]
        )

    def test_metrics_identical(self, fitted, tmp_path):
        dataset, splits, estimator = fitted
        path = tmp_path / "model.json"
        save_estimator(estimator, path)
        loaded = load_estimator(path, dataset)
        a = estimator.evaluate(splits.test_ids)["average"]
        b = loaded.evaluate(splits.test_ids)["average"]
        for key in a:
            assert a[key] == pytest.approx(b[key])

    def test_loaded_onto_extended_dataset(self, fitted, tmp_path):
        """The artefact can serve a *newer* snapshot of the database."""
        dataset, _, estimator = fitted
        from repro.data import scale_rccs

        path = tmp_path / "model.json"
        save_estimator(estimator, path)
        newer = scale_rccs(dataset, 2)  # more RCCs, same avails
        loaded = load_estimator(path, newer)
        result = loaded.query([0], t_star=50.0)[0]
        assert np.isfinite(result.current_estimate)

    def test_version_gate(self, fitted, tmp_path):
        dataset, _, estimator = fitted
        path = tmp_path / "model.json"
        save_estimator(estimator, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match="format"):
            load_estimator(path, dataset)

    def test_unfitted_estimator_rejected(self, tmp_path):
        with pytest.raises(NotFittedError):
            save_estimator(DomdEstimator(PipelineConfig()), tmp_path / "x.json")

    def test_stacked_architecture_roundtrip(self, fitted, tmp_path):
        dataset, splits, _ = fitted
        config = PipelineConfig(
            window_pct=50.0, k=6, architecture="stacked", gbm=GbmParams(n_estimators=10)
        )
        estimator = DomdEstimator(config).fit(dataset, splits.train_ids)
        path = tmp_path / "stacked.json"
        save_estimator(estimator, path)
        loaded = load_estimator(path, dataset)
        np.testing.assert_allclose(
            loaded.query([0], t_star=100.0)[0].window_estimates,
            estimator.query([0], t_star=100.0)[0].window_estimates,
        )
