"""Shared machinery for the cross-regime property suite.

Every regime in :data:`repro.data.regimes.REGIMES` is swept through the
same four property families (dataset invariants, index agreement,
streaming replay, learnability gate).  Datasets are expensive relative
to the assertions, so one session-scoped cache hands the same
generated (spec, dataset, header, events) tuple to every test of a
regime.

Tier-1 runs the fast subset (:data:`FAST_REGIMES`); the remaining
regimes carry ``@pytest.mark.slow`` and run under ``--runslow`` /
``REPRO_RUN_SLOW=1`` — the CI ``regime-matrix`` job.  On a property
failure the ddmin-shrunk reproducer is written to
``$REPRO_REGIME_ARTIFACTS`` (when set) so CI can upload it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.data import SyntheticNmdConfig
from repro.data.regimes import REGIMES, generate_regime_dataset, get_regime, regime_events

#: Miniature fleet every regime runs at inside the suite.  Regime
#: ``base`` overrides (sparse_fleet) still apply on top.
TEST_BASE = SyntheticNmdConfig(
    n_ships=8,
    n_closed_avails=26,
    n_ongoing_avails=2,
    target_n_rccs=1_600,
    seed=29,
)

#: Regimes exercised in tier-1; the rest are ``slow`` (full matrix).
FAST_REGIMES = ("baseline", "surge")


def regime_params() -> list:
    """All regime names, slow-marked outside the fast subset."""
    return [
        name
        if name in FAST_REGIMES
        else pytest.param(name, marks=pytest.mark.slow)
        for name in REGIMES
    ]


@pytest.fixture(scope="session")
def regime_cache():
    """Memoizing factory: name -> (spec, dataset, header, events)."""
    cache: dict[str, tuple] = {}

    def get(name: str):
        if name not in cache:
            spec = get_regime(name)
            dataset = generate_regime_dataset(spec, base=TEST_BASE)
            header, events = regime_events(spec, dataset)
            cache[name] = (spec, dataset, header, events)
        return cache[name]

    return get


def dump_reproducer(regime: str, suite: str, payload: object) -> str | None:
    """Persist a shrunk reproducer for CI artifact upload.

    No-op (returns None) unless ``REPRO_REGIME_ARTIFACTS`` points at a
    directory; the failure message always carries the reproducer inline
    either way.
    """
    root = os.environ.get("REPRO_REGIME_ARTIFACTS")
    if not root:
        return None
    directory = Path(root)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{regime}-{suite}.json"
    path.write_text(json.dumps(payload, indent=2, default=str), encoding="utf-8")
    return str(path)


def fail_with_reproducer(
    regime: str, suite: str, label: str, minimal: list, total: int
) -> None:
    """pytest.fail with the ddmin-shrunk reproducer, artifact included."""
    artifact = dump_reproducer(
        regime, suite, {"regime": regime, "label": label, "events": minimal}
    )
    where = f"\nreproducer written to {artifact}" if artifact else ""
    pytest.fail(
        f"[{regime}] {label}\n"
        f"minimal reproducer ({len(minimal)} of {total} events):{where}\n"
        f"{json.dumps(minimal, indent=2, default=str)}"
    )
