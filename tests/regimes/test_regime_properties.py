"""Cross-regime property suite: invariants, index parity, replay.

Every named stress regime must satisfy the same contracts the default
generator does:

(a) dataset invariants — schema, cardinality, date ordering, logical
    triples, seed determinism;
(b) bitwise four-design index agreement and scalar<->columnar executor
    parity (ddmin-shrunk reproducer on failure);
(c) live == batch streaming replay at watermarks, including the
    out-of-order ``late_arrival`` delivery, and dataset<->stream
    round-trips through a real file.

The learnability gate lives in ``test_regime_quality.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.regimes import write_regime_stream
from repro.data.schema import AVAIL_COLUMNS, RCC_COLUMNS, SHIP_COLUMNS
from repro.index.base import validate_triples
from repro.index.status_query import StatusQueryEngine
from repro.stream import (
    StreamIngestor,
    StreamingRccStore,
    dataset_from_stream,
    event_to_dict,
    read_event_stream,
)
from tests.index.test_columnar_differential import executor_disagreement
from tests.index.test_differential_fuzz import disagreement, shrink
from tests.regimes.conftest import fail_with_reproducer, regime_params
from tests.stream.test_ingest_differential import OPS, PROBES

DESIGNS = ("naive", "avl", "interval", "sorted_array")


def index_events(dataset) -> list[dict]:
    """Dataset RCCs as the differential fuzzer's event-dict shape."""
    rccs = dataset.rccs_with_logical_times()
    return [
        {
            "rcc_type": str(rcc_type),
            "swlin": str(swlin),
            "t_start": float(t_start),
            "t_end": float(t_end),
            "amount": float(amount),
        }
        for rcc_type, swlin, t_start, t_end, amount in zip(
            rccs["rcc_type"],
            rccs["swlin"],
            rccs["t_start"],
            rccs["t_end"],
            rccs["amount"],
        )
    ]


def replay_disagreement(header, events, check_every: int | None = None):
    """None when live == batch at every checked watermark, else a label."""
    if check_every is None:
        check_every = max(1, len(events) // 8)
    store = StreamingRccStore.from_header(header)
    ingestor = StreamIngestor(store, designs=DESIGNS)
    for position, event in enumerate(events):
        try:
            ingestor.apply_events([event])
        except Exception as exc:  # noqa: BLE001 — a crash is a failure too
            return f"apply crashed at event {position}: {type(exc).__name__}: {exc}"
        at_watermark = position % check_every == check_every - 1
        if not at_watermark and position != len(events) - 1:
            continue
        table = store.engine_table()
        for design in DESIGNS:
            batch = StatusQueryEngine(table, design=design).index
            live = ingestor.adapters[design]
            for t in PROBES:
                for op in OPS:
                    if not np.array_equal(
                        getattr(live, op)(t), getattr(batch, op)(t)
                    ):
                        return (
                            f"{design}.{op}(t={t}) diverges from batch "
                            f"build at watermark {ingestor.watermark}"
                        )
    return None


# ----------------------------------------------------------------------
# (a) dataset invariants
# ----------------------------------------------------------------------
@pytest.mark.parametrize("regime", regime_params())
class TestDatasetInvariants:
    def test_schema_and_cardinality(self, regime, regime_cache):
        spec, dataset, _, _ = regime_cache(regime)
        for table, expected in (
            (dataset.ships, SHIP_COLUMNS),
            (dataset.avails, AVAIL_COLUMNS),
            (dataset.rccs, RCC_COLUMNS),
        ):
            assert tuple(table.column_names) == tuple(expected)
        config = dataset.notes["config"]
        stats = dataset.statistics()
        assert stats["n_ships"] == config.n_ships
        assert stats["n_closed_avails"] == config.n_closed_avails
        assert stats["n_rccs"] == config.target_n_rccs
        # every avail emits at least one RCC
        assert set(np.asarray(dataset.avails["avail_id"])) == set(
            np.asarray(dataset.rccs["avail_id"])
        )
        assert dataset.notes["regime"] == spec.name

    def test_date_ordering(self, regime, regime_cache):
        _, dataset, _, _ = regime_cache(regime)
        avails, rccs = dataset.avails, dataset.rccs
        plan_start = np.asarray(avails["plan_start"])
        plan_end = np.asarray(avails["plan_end"])
        act_start = np.asarray(avails["act_start"])
        act_end = np.asarray(avails["act_end"])
        closed = np.asarray(avails["status"]) == "closed"
        assert (plan_end > plan_start).all()
        assert (act_start >= plan_start).all()
        assert (act_end[closed] > act_start[closed]).all()
        # RCCs are created inside their avail and settle strictly later
        start_of = dict(zip(np.asarray(avails["avail_id"]), act_start))
        rcc_start = np.array(
            [start_of[a] for a in np.asarray(rccs["avail_id"])]
        )
        create = np.asarray(rccs["create_date"])
        settle = np.asarray(rccs["settle_date"])
        assert (create >= rcc_start).all()
        assert (settle > create).all()

    def test_logical_triples_validate(self, regime, regime_cache):
        _, dataset, _, _ = regime_cache(regime)
        rccs = dataset.rccs_with_logical_times()
        validate_triples(
            np.asarray(rccs["t_start"], dtype=np.float64),
            np.asarray(rccs["t_end"], dtype=np.float64),
            np.asarray(rccs["rcc_id"], dtype=np.int64),
        )

    def test_seed_determinism(self, regime, regime_cache, tmp_path):
        """Same seed + regime -> byte-identical dataset AND stream file."""
        from repro.data.regimes import generate_regime_dataset
        from tests.regimes.conftest import TEST_BASE

        spec, dataset, _, _ = regime_cache(regime)
        again = generate_regime_dataset(spec, base=TEST_BASE)
        assert again.fingerprint() == dataset.fingerprint()
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_regime_stream(spec, dataset, first)
        write_regime_stream(spec, again, second)
        assert first.read_bytes() == second.read_bytes()


# ----------------------------------------------------------------------
# (b) four-design agreement + scalar<->columnar parity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("regime", regime_params())
class TestIndexAgreement:
    def test_four_designs_agree(self, regime, regime_cache):
        _, dataset, _, _ = regime_cache(regime)
        events = index_events(dataset)
        label = disagreement(events)
        if label is None:
            return
        minimal = shrink(events, predicate=disagreement)
        fail_with_reproducer(regime, "index-agreement", label, minimal, len(events))

    def test_scalar_columnar_parity(self, regime, regime_cache):
        _, dataset, _, _ = regime_cache(regime)
        events = index_events(dataset)
        label = executor_disagreement(events)
        if label is None:
            return
        minimal = shrink(events, predicate=executor_disagreement)
        fail_with_reproducer(regime, "columnar-parity", label, minimal, len(events))


# ----------------------------------------------------------------------
# (c) streaming replay
# ----------------------------------------------------------------------
@pytest.mark.parametrize("regime", regime_params())
class TestStreamingReplay:
    def test_live_matches_batch_at_watermarks(self, regime, regime_cache):
        _, _, header, events = regime_cache(regime)
        label = replay_disagreement(header, events)
        if label is None:
            return
        minimal = shrink(
            events, predicate=lambda evs: replay_disagreement(header, evs)
        )
        fail_with_reproducer(
            regime,
            "replay",
            label,
            [event_to_dict(event) for event in minimal],
            len(events),
        )

    def test_stream_file_roundtrip_reconstructs_dataset(
        self, regime, regime_cache, tmp_path
    ):
        """write -> read -> replay reproduces the exact dataset content.

        For stream-perturbing regimes (late_arrival) the delivery order
        in the file is out of order; the order-tolerant store must still
        converge to the identical snapshot.
        """
        spec, dataset, _, _ = regime_cache(regime)
        path = tmp_path / "events.jsonl"
        write_regime_stream(spec, dataset, path)
        header, events = read_event_stream(path)
        rebuilt = dataset_from_stream(header, events)
        assert rebuilt.fingerprint() == dataset.fingerprint()

    def test_late_arrival_is_actually_out_of_order(self, regime, regime_cache):
        """Stream-perturbing regimes must exercise the orphan buffer."""
        spec, _, header, events = regime_cache(regime)
        if not spec.stream:
            pytest.skip("regime does not perturb delivery order")
        store = StreamingRccStore.from_header(header)
        for event in events:
            store.apply(event)
        # settles genuinely arrived before their creates ...
        assert store.counts["deferred"] > 0
        # ... and every orphan was eventually drained
        assert not store.orphans


class TestCliAcceptance:
    def test_generate_regime_then_replay_verify(self, tmp_path):
        """repro generate --regime surge --events-out ... must replay
        with live == batch for all four designs."""
        import io
        import json

        from repro.cli import main

        data_dir = tmp_path / "data"
        events_path = tmp_path / "events.jsonl"
        wal_path = tmp_path / "wal.jsonl"

        def run(*argv):
            out = io.StringIO()
            code = main(list(argv), out=out)
            lines = [
                json.loads(line)
                for line in out.getvalue().splitlines()
                if line.strip()
            ]
            return code, lines[-1] if lines else {}

        code, stats = run(
            "generate", "--out", str(data_dir), "--seed", "29",
            "--regime", "surge", "--ships", "6", "--avails", "14",
            "--ongoing", "1", "--rccs", "420",
            "--events-out", str(events_path),
        )
        assert code == 0
        assert stats["regime"] == "surge"
        assert stats["events_written"] == 840

        code, _ = run(
            "ingest", "append", "--wal", str(wal_path),
            "--events", str(events_path),
        )
        assert code == 0

        code, summary = run(
            "ingest", "replay", "--wal", str(wal_path),
            "--stream", str(events_path),
            "--design", "naive", "--design", "avl",
            "--design", "interval", "--design", "sorted_array",
            "--verify",
        )
        assert code == 0
        assert summary["verify"]["ok"] is True
        assert summary["status"]["n_rccs"] == 420
