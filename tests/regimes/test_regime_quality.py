"""Table-7-style learnability gate, per regime.

The pipeline must extract signal from the RCC stream under every
regime whose data admits an evaluation protocol: the fused estimate
improves as t* grows (more RCC evidence -> lower MAE, the paper's
Table 7 shape) and beats the predict-the-training-mean baseline.

Regimes that cannot support the gate carry an explicit
``quality_waiver`` on their :class:`RegimeSpec`; the test skips with
that recorded reason rather than silently passing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PipelineConfig, PipelineOptimizer
from repro.data import split_dataset
from repro.ml import GbmParams
from tests.regimes.conftest import regime_params

FAST = PipelineConfig(
    window_pct=25.0, k=10, fusion="average", gbm=GbmParams(n_estimators=30)
)


@pytest.mark.parametrize("regime", regime_params())
class TestLearnabilityGate:
    def test_rcc_signal_beats_static_and_mean(self, regime, regime_cache):
        spec, dataset, _, _ = regime_cache(regime)
        if spec.quality_waiver:
            pytest.skip(
                f"quality gate waived for {spec.name!r}: {spec.quality_waiver}"
            )
        splits = split_dataset(dataset, seed=5)
        optimizer = PipelineOptimizer(dataset, splits, base_config=FAST)
        result = optimizer.evaluate(optimizer.config.evolve(fusion="none"))
        by_t = np.asarray(result["val_mae_by_t"], dtype=np.float64)
        assert np.isfinite(by_t).all()
        # Table-7 shape: late windows see more RCC signal than t*=0.
        assert by_t[-1] < by_t[0], (
            f"[{spec.name}] val MAE did not improve with t*: "
            f"t=0 -> {by_t[0]:.2f}, t=100 -> {by_t[-1]:.2f}"
        )
        # The model must beat predicting the training-mean delay.
        delay_of = {
            int(a): float(d)
            for a, d in zip(
                dataset.avails["avail_id"], dataset.avails["delay"]
            )
        }
        train_mean = np.mean([delay_of[int(a)] for a in splits.train_ids])
        val_true = np.array(
            [delay_of[int(a)] for a in splits.validation_ids]
        )
        baseline_mae = float(np.abs(val_true - train_mean).mean())
        assert result["val_mae"] < baseline_mae, (
            f"[{spec.name}] fused val MAE {result['val_mae']:.2f} does not "
            f"beat the train-mean baseline {baseline_mae:.2f}"
        )
