"""Smoke tests: the example scripts' key helpers work end to end.

The full example scripts fit on the paper-scale dataset (minutes); these
tests exercise their load-bearing helpers on the small fixture so a
regression in an example's logic fails the suite, not just a human demo.
"""

import importlib.util
import sys
from pathlib import Path

import numpy as np
import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesImportable:
    @pytest.mark.parametrize(
        "name",
        [
            "quickstart",
            "fleet_readiness_dashboard",
            "rcc_surge_whatif",
            "obfuscated_retrain",
            "manufacturing_transfer",
            "nightly_retrain",
        ],
    )
    def test_imports_cleanly(self, name):
        module = load_example(name)
        assert hasattr(module, "main")


class TestSurgeInjection:
    def test_injects_growth_rccs(self, small_dataset):
        module = load_example("rcc_surge_whatif")
        surged = module.inject_growth_surge(
            small_dataset, avail_id=0, n_new=10, amount_each=5000.0, at_t_star=50.0
        )
        assert surged.n_rccs == small_dataset.n_rccs + 10
        new = surged.rccs.filter(surged.rccs["rcc_id"] > small_dataset.rccs["rcc_id"].max())
        assert (new["rcc_type"] == "G").all()
        assert (new["avail_id"] == 0).all()

    def test_surge_moves_estimate_upward(self, small_dataset, small_splits):
        from repro.core import DomdEstimator, PipelineConfig
        from repro.features import StatusFeatureExtractor, static_features_for
        from repro.ml import GbmParams

        module = load_example("rcc_surge_whatif")
        config = PipelineConfig(window_pct=25.0, k=8, gbm=GbmParams(n_estimators=20))
        estimator = DomdEstimator(config).fit(small_dataset, small_splits.train_ids)
        baseline = estimator.query([0], t_star=75.0)[0].current_estimate

        surged = module.inject_growth_surge(
            small_dataset, avail_id=0, n_new=400, amount_each=80_000.0, at_t_star=40.0
        )
        counterfactual = estimator.serve(surged)
        surged_estimate = counterfactual.query([0], t_star=75.0)[0].current_estimate
        assert surged_estimate > baseline


class TestManufacturingGlossary:
    def test_glossary_covers_core_vocabulary(self):
        module = load_example("manufacturing_transfer")
        assert {"ship", "avail", "RCC", "delay"} <= set(module.DOMAIN_GLOSSARY)
