"""Fault-injected burn-rate alerting, end to end.

The ISSUE acceptance scenario: forced request latency and a stalled WAL
follower must each drive a multi-window burn-rate SLO alert through
pending → firing → resolved, with matching entries in the persisted
event log, ``repro_alert_*`` lines in the Prometheus exposition, a
degraded ``health`` response while firing, and a ``repro top`` snapshot
that renders the same numbers live and offline from the JSONL alone.

Ticks use synthetic timestamps (one per second) so the burn windows are
deterministic; the injected latency itself is real wall-clock sleep
inside the request span.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.cli import main
from repro.core import DomdEstimator, DomdService, paper_final_config
from repro.runtime import ExecutionContext, JsonlEventLog, TelemetryHub
from repro.runtime.telemetry import (
    AlertRule,
    BurnRateRule,
    SloEngine,
    TelemetrySampler,
    TimeSeriesStore,
    alert_timeline,
    default_objectives,
    timeseries_from_events,
    top_snapshot,
)
from repro.runtime.telemetry.events import load_events
from repro.stream import StreamIngestor, StreamingRccStore

#: Tight burn windows so a handful of one-second ticks walks the whole
#: lifecycle: breach needs burn >= 2 in BOTH the 3 s and 9 s windows.
FAST_RULES = (BurnRateRule(3.0, 9.0, 2.0),)

#: Injected latency (60 ms) sits well past the 30 ms SLO threshold;
#: un-faulted health requests run in well under a millisecond.
SLO_THRESHOLD_S = 0.03
FAULT_SLEEP_S = 0.06


@pytest.fixture(scope="module")
def fitted(request):
    dataset = request.getfixturevalue("small_dataset")
    splits = request.getfixturevalue("small_splits")
    context = ExecutionContext(seed=0)
    estimator = DomdEstimator(
        paper_final_config(window_pct=25), context=context
    ).fit(dataset, splits.train_ids)
    return dataset, splits, estimator


def live_events(dataset, n: int) -> list[dict]:
    """Fresh rcc_created events against the dataset's first avail."""
    avails = dataset.avails
    avail_id = int(avails["avail_id"][0])
    act_start = int(avails["act_start"][0])
    next_id = int(np.max(dataset.rccs["rcc_id"])) + 1
    return [
        {
            "kind": "rcc_created",
            "rcc_id": next_id + i,
            "avail_id": avail_id,
            "rcc_type": "G",
            "swlin": "111-11-001",
            "create_date": act_start + 3 + i,
            "amount": 10.0 + i,
        }
        for i in range(n)
    ]


def build_rig(estimator, events_path, include_ingest=False, pending=1.5, resolve=0.0):
    """A service wired to a sampler+SLO engine with fast burn windows."""
    context = ExecutionContext(seed=0, telemetry=TelemetryHub())
    hub = context.metrics.telemetry
    hub.add_sink(JsonlEventLog(events_path))
    service = DomdService(estimator, context=context)
    store = TimeSeriesStore()
    objectives = default_objectives(
        latency_threshold_s=SLO_THRESHOLD_S,
        rules=FAST_RULES,
        include_ingest=include_ingest,
    )
    sampler = TelemetrySampler(
        context.metrics, store=store, slo=SloEngine(objectives, store)
    )
    for objective in objectives:
        hub.alerts.rule(
            AlertRule(
                name=f"slo:{objective.name}",
                pending_for=pending,
                resolve_after=resolve,
            )
        )
    return service, sampler, hub


def transitions(hub_or_events, name):
    events = (
        hub_or_events.events()
        if hasattr(hub_or_events, "events")
        else hub_or_events
    )
    return [
        (entry["state"], entry["previous"])
        for entry in alert_timeline(events)
        if entry["name"] == name
    ]


class TestLatencyBurnRateLifecycle:
    @pytest.fixture(scope="class")
    def scenario(self, fitted, tmp_path_factory):
        """Run the whole fault → fire → recover → resolve arc once."""
        _dataset, _splits, estimator = fitted
        events_path = tmp_path_factory.mktemp("alerting") / "events.jsonl"
        service, sampler, hub = build_rig(estimator, events_path)

        # Fault injection: the health handler gains a 60 ms stall inside
        # the request span, so real request latency breaches the SLO.
        original = service._handle_health

        def stalled_health(request):
            time.sleep(FAULT_SLEEP_S)
            return original(request)

        service._handle_health = stalled_health
        probes = {}
        for step in range(3):  # ticks at t=100,101,102
            for _ in range(2):
                assert service.handle({"type": "health"})["ok"]
            sampler.tick(now=100.0 + step)
            if step == 0:
                probes["after_first_breach"] = dict(hub.alerts.status())
        # While firing: exposition, health degradation, live status.
        probes["firing"] = list(hub.alerts.firing())
        probes["exposition"] = service.handle(
            {"type": "metrics", "format": "prometheus"}
        )["result"]["exposition"]
        probes["health_firing"] = service.handle({"type": "health"})["result"]

        # Recovery: lift the fault; fast ticks age the breach out of
        # both burn windows (bad samples at 100..102 leave the 9 s
        # window by t=112).
        service._handle_health = original
        for step in range(12):  # ticks at t=103..114
            for _ in range(2):
                assert service.handle({"type": "health"})["ok"]
            sampler.tick(now=103.0 + step)
        probes["health_after"] = service.handle({"type": "health"})["result"]
        return service, sampler, hub, events_path, probes

    def test_pending_then_firing_then_resolved(self, scenario):
        _service, _sampler, hub, _path, probes = scenario
        # First breached tick parks the alert in pending (1.5 s dwell).
        assert (
            probes["after_first_breach"]["slo:request_latency"]["state"]
            == "pending"
        )
        assert probes["firing"] == ["slo:request_latency"]
        assert transitions(hub, "slo:request_latency") == [
            ("pending", "inactive"),
            ("firing", "pending"),
            ("resolved", "firing"),
        ]
        assert hub.alerts.firing() == []

    def test_exposition_and_health_while_firing(self, scenario):
        _service, _sampler, _hub, _path, probes = scenario
        exposition = probes["exposition"]
        assert (
            'repro_alert_state{name="slo:request_latency",severity="page"} 2'
            in exposition
        )
        assert 'repro_alert_fired_total{name="slo:request_latency"} 1' in exposition
        assert "repro_alerts_firing 1" in exposition
        health = probes["health_firing"]
        assert health["status"] == "degraded"
        assert health["alerts"]["firing"] == ["slo:request_latency"]
        state = health["alerts"]["states"]["slo:request_latency"]
        assert state["state"] == "firing"
        assert state["context"]["burn_short"] >= 2.0

    def test_health_recovers_after_resolve(self, scenario):
        _service, _sampler, _hub, _path, probes = scenario
        health = probes["health_after"]
        assert health["status"] == "ok"
        assert health["alerts"]["firing"] == []

    def test_event_log_matches_live_state(self, scenario):
        _service, sampler, hub, events_path, _probes = scenario
        persisted = load_events(events_path)
        assert transitions(persisted, "slo:request_latency") == transitions(
            hub, "slo:request_latency"
        )
        # Budget accounting rode along as slo events.
        slo_events = [e for e in persisted if e["kind"] == "slo"]
        assert any(e["objective"] == "request_latency" for e in slo_events)
        assert max(e["budget_spent"] for e in slo_events) > 0.0
        # Offline parity: the JSONL alone rebuilds the exact series the
        # live sampler recorded.
        rebuilt = timeseries_from_events(persisted)
        assert rebuilt.series("hist.span.request.p99") == sampler.store.series(
            "hist.span.request.p99"
        )

    def test_repro_top_offline_matches(self, scenario, capsys):
        _service, sampler, _hub, events_path, _probes = scenario
        snapshot = top_snapshot(load_events(events_path), window=60.0)
        assert snapshot["samples"] == sampler.ticks
        assert snapshot["alerts"]["firing"] == []  # resolved by the end
        assert snapshot["alerts"]["states"]["slo:request_latency"]["fired"] == 1
        live_p99 = sampler.store.latest("hist.span.request.p99")[1]
        # The snapshot rounds milliseconds for display; match within it.
        assert snapshot["latency_ms"]["p99"] == pytest.approx(
            live_p99 * 1000.0, abs=5e-4
        )
        code = main(
            ["top", "--events", str(events_path), "--once", "--format", "json"]
        )
        assert code == 0
        via_cli = json.loads(capsys.readouterr().out.strip())
        assert via_cli["latency_ms"]["p99"] == snapshot["latency_ms"]["p99"]
        assert via_cli["alerts"] == snapshot["alerts"]


class TestStalledWalFollowerLifecycle:
    def test_watermark_lag_alert_fires_and_resolves(self, fitted, tmp_path):
        dataset, _splits, estimator = fitted
        events_path = tmp_path / "events.jsonl"
        service, sampler, hub = build_rig(
            estimator, events_path, include_ingest=True, resolve=1.5
        )
        ingestor = StreamIngestor(
            StreamingRccStore.from_dataset(dataset), designs=("avl",)
        )
        service.ingest = ingestor
        sampler.add_source("ingest", ingestor.gauges)

        # Stall: the follower learns the WAL end but applies nothing, so
        # lag_events sits above the SLO threshold every tick.
        ingestor.note_wal_end(5)
        for step in range(3):  # ticks at t=200,201,202
            service.handle({"type": "health"})
            sampler.tick(now=200.0 + step)
        assert hub.alerts.firing() == ["slo:watermark_lag"]
        health = service.handle({"type": "health"})["result"]
        assert health["status"] == "degraded"
        assert health["ingest"]["lag_events"] == 5

        # Recovery: the follower catches up (applies the WAL tail), lag
        # drops to zero, and the resolve_after damper holds the alert
        # firing until the clear state has persisted.
        ingestor.apply_events(live_events(dataset, n=5))
        assert ingestor.status()["lag_events"] == 0
        for step in range(13):  # ticks at t=203..215
            service.handle({"type": "health"})
            sampler.tick(now=203.0 + step)
        assert hub.alerts.firing() == []
        assert transitions(hub, "slo:watermark_lag") == [
            ("pending", "inactive"),
            ("firing", "pending"),
            ("resolved", "firing"),
        ]
        # The lag series made it to the store and the event log alike.
        assert sampler.store.latest("ingest.lag_events")[1] == 0.0
        snapshot = top_snapshot(load_events(events_path), window=60.0)
        assert snapshot["ingest"]["lag_events"] == 0.0
        assert snapshot["alerts"]["states"]["slo:watermark_lag"]["fired"] == 1
