"""Differential stress test: pooled serving vs. the sequential service.

Eight submitter threads hammer a :class:`ServicePool` (4 workers) with a
seeded mixed workload — queries, explanations, fleet status, evaluation
metrics and malformed requests.  Every pooled response must be
**byte-identical** to the same request served by a single-threaded
:class:`DomdService` over the same fitted estimator, and the pooled
run's telemetry must account for every request exactly: no dropped and
no duplicated events, one unique trace per request.

Set ``REPRO_TELEMETRY_ARTIFACT=/path/events.jsonl`` to persist the
pooled run's event log (the CI stress step uploads it as an artifact).
"""

from __future__ import annotations

import json
import os
import threading

import numpy as np
import pytest

from repro.core import DomdEstimator, PipelineConfig
from repro.core.server import ServicePool
from repro.core.service import DomdService
from repro.data.dates import day_to_iso
from repro.ml import GbmParams
from repro.runtime import (
    ExecutionContext,
    JsonlEventLog,
    MemoryEventLog,
    TelemetryHub,
    TraceContext,
)

N_SUBMITTERS = 8
N_WORKERS = 4

#: Request types the service dispatches (and therefore traces/counts);
#: ``unknown_type`` rejections return before the trace opens.
KNOWN_TYPES = {"domd_query", "explain", "fleet_status", "metrics", "health"}


def n_dispatched(workload: list[dict]) -> int:
    return sum(1 for request in workload if request["type"] in KNOWN_TYPES)


@pytest.fixture(scope="module")
def fitted(request):
    dataset = request.getfixturevalue("small_dataset")
    splits = request.getfixturevalue("small_splits")
    config = PipelineConfig(
        window_pct=25.0, k=8, fusion="average", gbm=GbmParams(n_estimators=20)
    )
    return DomdEstimator(config).fit(dataset, splits.train_ids)


def build_workload(dataset, splits, n_requests: int = 64) -> list[dict]:
    """A seeded mixed request stream with deterministic responses."""
    rng = np.random.default_rng(2024)
    avail_ids = [int(a) for a in dataset.avails["avail_id"]]
    closed_ids = [int(a) for a in splits.test_ids]
    t_stars = [10.0, 30.0, 55.0, 80.0, 100.0]
    some_day = int(np.min(np.asarray(dataset.avails["act_start"]))) + 40
    requests: list[dict] = []
    for index in range(n_requests):
        kind = index % 8
        if kind in (0, 1, 2):  # the dominant type, as in production
            picked = rng.choice(avail_ids, size=int(rng.integers(1, 4)), replace=False)
            requests.append(
                {
                    "type": "domd_query",
                    "avail_ids": [int(a) for a in picked],
                    "t_star": float(rng.choice(t_stars)),
                }
            )
        elif kind == 3:
            requests.append(
                {
                    "type": "explain",
                    "avail_id": int(rng.choice(avail_ids)),
                    "t_star": float(rng.choice(t_stars)),
                    "top": 3,
                }
            )
        elif kind == 4:
            requests.append(
                {
                    "type": "fleet_status",
                    "date": day_to_iso(some_day + int(rng.integers(0, 60))),
                }
            )
        elif kind == 5:
            requests.append({"type": "metrics", "avail_ids": closed_ids[:8]})
        elif kind == 6:  # deterministic error envelopes count too
            requests.append({"type": "domd_query", "avail_ids": [424242], "t_star": 50.0})
        else:
            requests.append({"type": "nonsense"})
    return requests


@pytest.fixture(scope="module")
def workload(request):
    dataset = request.getfixturevalue("small_dataset")
    splits = request.getfixturevalue("small_splits")
    return build_workload(dataset, splits)


def fresh_context() -> ExecutionContext:
    return ExecutionContext(
        seed=0, telemetry=TelemetryHub(buffer=MemoryEventLog(max_events=500_000))
    )


def canonical_bytes(response: dict) -> bytes:
    """Encode a response with its only nondeterministic field removed.

    ``provenance.trace_id`` is fresh per served request by design; every
    *other* provenance field (content hashes, feature key, planner
    choice) is a deterministic function of the served state and must
    still match byte-for-byte between pooled and sequential serving.
    """
    if isinstance(response.get("provenance"), dict):
        response = dict(response)
        provenance = dict(response["provenance"])
        provenance.pop("trace_id", None)
        response["provenance"] = provenance
    return json.dumps(response, sort_keys=True).encode()


class TestDifferentialStress:
    @pytest.fixture(scope="class")
    def stress_run(self, fitted, workload, tmp_path_factory):
        """One pooled stress run shared by the assertions below."""
        reference_service = DomdService(fitted, context=fresh_context())
        reference = [
            canonical_bytes(reference_service.handle(request)) for request in workload
        ]

        pooled_context = fresh_context()
        artifact = os.environ.get("REPRO_TELEMETRY_ARTIFACT")
        if artifact:
            pooled_context.telemetry.add_sink(
                JsonlEventLog(artifact, max_bytes=200_000_000)
            )
        pooled_service = DomdService(fitted, context=pooled_context)
        pool = ServicePool(pooled_service, workers=N_WORKERS, queue_depth=32)
        responses: list[bytes | None] = [None] * len(workload)
        submit_errors: list[BaseException] = []
        barrier = threading.Barrier(N_SUBMITTERS)

        def submitter(offset: int) -> None:
            barrier.wait()
            try:
                for index in range(offset, len(workload), N_SUBMITTERS):
                    future = pool.submit(workload[index], block=True)
                    responses[index] = canonical_bytes(future.result(timeout=120))
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                submit_errors.append(exc)

        threads = [
            threading.Thread(target=submitter, args=(i,)) for i in range(N_SUBMITTERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        pool.close(drain=True)
        pooled_context.telemetry.close()
        if submit_errors:
            raise submit_errors[0]
        return reference, responses, pooled_context, pool

    def test_every_response_byte_identical_to_sequential(self, stress_run, workload):
        reference, responses, _context, _pool = stress_run
        mismatches = [
            index
            for index, (want, got) in enumerate(zip(reference, responses))
            if want != got
        ]
        assert not mismatches, (
            f"{len(mismatches)} pooled responses differ from sequential serving; "
            f"first: request={workload[mismatches[0]]!r}\n"
            f"  sequential={reference[mismatches[0]]!r}\n"
            f"  pooled    ={responses[mismatches[0]]!r}"
        )

    def test_no_request_dropped(self, stress_run, workload):
        _reference, responses, context, pool = stress_run
        assert all(response is not None for response in responses)
        assert pool.status()["completed"] == len(workload)
        assert pool.status()["rejected"] == 0
        assert context.metrics.counter_value("service.requests") == n_dispatched(
            workload
        )

    def test_telemetry_accounts_for_every_request_exactly(self, stress_run, workload):
        _reference, _responses, context, _pool = stress_run
        events = context.telemetry.events()
        # the ring buffer was sized to retain the full run: nothing dropped
        assert context.telemetry.buffer.total_emitted == len(events)
        traced = n_dispatched(workload)
        opens = [e for e in events if e["kind"] == "trace_open"]
        closes = [e for e in events if e["kind"] == "trace_close"]
        assert len(opens) == traced
        assert len(closes) == traced
        # one unique trace per request: no duplicated ids under concurrency
        open_ids = [e["trace_id"] for e in opens]
        assert len(set(open_ids)) == traced
        assert sorted(open_ids) == sorted(e["trace_id"] for e in closes)
        # spans balance: every opened span closed exactly once
        span_opens = sum(1 for e in events if e["kind"] == "span_open")
        span_closes = sum(1 for e in events if e["kind"] == "span_close")
        assert span_opens == span_closes

    def test_artifact_written_when_requested(self, stress_run):
        artifact = os.environ.get("REPRO_TELEMETRY_ARTIFACT")
        if not artifact:
            pytest.skip("REPRO_TELEMETRY_ARTIFACT not set")
        assert os.path.exists(artifact)
        assert os.path.getsize(artifact) > 0


class TestTraceContextHandoff:
    """Trace context survives the submitter -> worker thread handoff.

    Each submitter opens its *own* explicit trace and hammers the pool;
    every pooled request's ``trace_open`` must carry a
    ``parent_traceparent`` that decodes back to exactly the trace of the
    thread that submitted it — zero cross-request leakage even though
    the hub's trace stacks are thread-local and the request is served on
    a different (worker) thread.
    """

    def test_submitter_parent_propagates_with_zero_leakage(self, fitted, workload):
        context = fresh_context()
        hub = context.telemetry
        service = DomdService(fitted, context=context)
        barrier = threading.Barrier(N_SUBMITTERS)
        lock = threading.Lock()
        submitter_traces: dict[int, str] = {}
        #: request trace id -> the submitter trace that must be its parent
        expected_parent: dict[str, str] = {}
        dispatched_by: dict[str, int] = {}
        errors: list[BaseException] = []

        with ServicePool(service, workers=N_WORKERS, queue_depth=32) as pool:

            def submitter(offset: int) -> None:
                barrier.wait()
                try:
                    with hub.trace("stress.submitter", slot=offset) as own_trace:
                        with lock:
                            submitter_traces[offset] = own_trace
                        dispatched = 0
                        served: list[str] = []
                        for index in range(offset, len(workload), N_SUBMITTERS):
                            request = workload[index]
                            response = pool.submit(request, block=True).result(
                                timeout=120
                            )
                            if request["type"] in KNOWN_TYPES:
                                dispatched += 1
                            provenance = response.get("provenance")
                            if isinstance(provenance, dict):
                                served.append(provenance["trace_id"])
                        with lock:
                            dispatched_by[own_trace] = dispatched
                            for request_trace in served:
                                expected_parent[request_trace] = own_trace
                except BaseException as exc:  # noqa: BLE001 — surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=submitter, args=(i,))
                for i in range(N_SUBMITTERS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        if errors:
            raise errors[0]

        opens = {
            event["trace_id"]: event
            for event in hub.events()
            if event["kind"] == "trace_open" and event.get("name") == "request"
        }
        assert opens, "no pooled request traces recorded"
        assert expected_parent, "no ok envelopes carried a provenance trace id"

        # every ok response maps back to exactly its own submitter
        for request_trace, submitter_trace in expected_parent.items():
            parent = TraceContext.from_traceparent(
                opens[request_trace].get("parent_traceparent")
            )
            assert parent is not None, f"{request_trace} lost its parent context"
            assert parent.trace_id == submitter_trace, (
                f"request {request_trace} parented by {parent.trace_id}, "
                f"expected submitter {submitter_trace}"
            )

        # every dispatched request (ok *and* error envelopes) is parented
        # by some submitter trace, and per-submitter counts line up
        submitter_ids = set(submitter_traces.values())
        counts: dict[str, int] = {}
        for event in opens.values():
            parent = TraceContext.from_traceparent(event.get("parent_traceparent"))
            assert parent is not None
            assert parent.trace_id in submitter_ids
            counts[parent.trace_id] = counts.get(parent.trace_id, 0) + 1
        assert counts == {k: v for k, v in dispatched_by.items() if v}


class TestRepeatedPooledRuns:
    def test_two_pooled_runs_agree_with_each_other(self, fitted, workload):
        """Pool nondeterminism (scheduling) must not leak into responses."""
        outputs: list[list[bytes]] = []
        for _ in range(2):
            service = DomdService(fitted, context=fresh_context())
            with ServicePool(service, workers=N_WORKERS, queue_depth=32) as pool:
                futures = [
                    pool.submit(request, block=True) for request in workload[:24]
                ]
                outputs.append(
                    [canonical_bytes(f.result(timeout=120)) for f in futures]
                )
        assert outputs[0] == outputs[1]
