"""Integration tests: the whole framework wired together."""

import numpy as np
import pytest

from repro.core import (
    DomdEstimator,
    PipelineConfig,
    PipelineOptimizer,
    paper_final_config,
)
from repro.data import (
    deobfuscate_dataset,
    generate_dataset,
    obfuscate_dataset,
    save_dataset,
    load_dataset,
    split_dataset,
    SyntheticNmdConfig,
)
from repro.features import StatusFeatureExtractor
from repro.index import StatusQueryEngine
from repro.ml import GbmParams, mae


FAST = PipelineConfig(window_pct=25.0, k=10, fusion="average", gbm=GbmParams(n_estimators=30))


class TestFullPipeline:
    def test_greedy_optimization_improves_over_default(self, small_dataset, small_splits):
        optimizer = PipelineOptimizer(small_dataset, small_splits, base_config=FAST)
        default_mae = optimizer.evaluate(optimizer.config)["val_mae"]
        optimizer.run(
            stages=("selection", "loss", "fusion"),
            selection_methods=("pearson", "random"),
            k_grid=(5, 10, 20),
        )
        optimized_mae = optimizer.evaluate(optimizer.config)["val_mae"]
        assert optimized_mae <= default_mae * 1.02  # greedy never much worse

    def test_dynamic_features_beat_static_only_late(self, small_dataset, small_splits):
        optimizer = PipelineOptimizer(small_dataset, small_splits, base_config=FAST)
        result = optimizer.evaluate(optimizer.config.evolve(fusion="none"))
        by_t = result["val_mae_by_t"]
        # Later windows see more RCC signal than the t*=0 window.
        assert by_t[-1] < by_t[0]

    def test_estimator_consistent_with_optimizer(self, small_dataset, small_splits):
        optimizer = PipelineOptimizer(small_dataset, small_splits, base_config=FAST)
        test_rows = optimizer.test_evaluation(FAST)["rows"]
        estimator = DomdEstimator(FAST).fit(small_dataset, small_splits.train_ids)
        evaluated = estimator.evaluate(small_splits.test_ids)
        # Same fused predictions measured two ways.
        assert evaluated["t=0"]["mae_100"] == pytest.approx(
            test_rows[0]["mae_100"], rel=1e-9
        )


class TestObfuscatedRetrainWorkflow:
    """The paper's deployment story: design on obfuscated data, retrain on
    raw data inside the enclave, without human intervention."""

    def test_metric_parity(self, small_dataset):
        obfuscated, key = obfuscate_dataset(small_dataset, seed=21)
        splits_raw = split_dataset(small_dataset, seed=5)
        # Obfuscated ids are permuted; map the raw split through the key.
        mapped = np.sort([key.avail_id_map[int(a)] for a in splits_raw.train_ids])
        test_mapped = np.sort([key.avail_id_map[int(a)] for a in splits_raw.test_ids])

        est_raw = DomdEstimator(FAST).fit(small_dataset, splits_raw.train_ids)
        est_obf = DomdEstimator(FAST).fit(obfuscated, mapped)

        raw_metrics = est_raw.evaluate(splits_raw.test_ids)["average"]
        obf_metrics = est_obf.evaluate(test_mapped)["average"]
        # Dates shift and amounts rescale, but the learning problem is
        # isomorphic — metrics should land close (tree models are
        # invariant to monotone feature rescaling up to tie-breaks).
        assert obf_metrics["mae_100"] == pytest.approx(
            raw_metrics["mae_100"], rel=0.25
        )

    def test_roundtrip_restores_everything(self, small_dataset):
        obfuscated, key = obfuscate_dataset(small_dataset, seed=33)
        restored = deobfuscate_dataset(obfuscated, key)
        assert restored.rccs.equals(small_dataset.rccs)


class TestFeatureStatusQueryConsistency:
    def test_extractor_matches_engine_counts(self, small_dataset):
        """The tensor's per-avail counts must equal an independent Status
        Query through the index machinery."""
        tensor = StatusFeatureExtractor(small_dataset).extract()
        rccs = small_dataset.rccs_with_logical_times()
        engine = StatusQueryEngine(
            rccs.select(["rcc_type", "swlin", "t_start", "t_end", "amount", "avail_id"]),
            design="avl",
            extra_group_keys=("avail_id",),
        )
        from repro.index import StatusQuery

        result = engine.execute(StatusQuery(50.0, group_by_type=False, swlin_level=None))
        counts_by_avail = {
            int(row["avail_id"]): row["n_created"] for row in result.to_rows()
        }
        j = tensor.feature_index("ALLALL-CNT_CREATED")
        for i, avail_id in enumerate(tensor.avail_ids):
            expected = counts_by_avail.get(int(avail_id), 0)
            assert tensor.values[i, tensor.t_index(50.0), j] == expected


class TestPersistenceWorkflow:
    def test_save_load_then_fit(self, small_dataset, tmp_path):
        save_dataset(small_dataset, tmp_path / "nmd")
        loaded = load_dataset(tmp_path / "nmd")
        splits = split_dataset(loaded, seed=5)
        estimator = DomdEstimator(FAST).fit(loaded, splits.train_ids)
        out = estimator.evaluate(splits.test_ids)
        assert out["average"]["mae_100"] > 0


class TestScaleStability:
    def test_tiny_dataset_still_works(self):
        dataset = generate_dataset(
            SyntheticNmdConfig(
                n_ships=4,
                n_closed_avails=12,
                n_ongoing_avails=0,
                target_n_rccs=300,
                seed=9,
            )
        )
        splits = split_dataset(dataset, seed=1)
        config = PipelineConfig(window_pct=50.0, k=5, gbm=GbmParams(n_estimators=10))
        estimator = DomdEstimator(config).fit(dataset, splits.train_ids)
        result = estimator.query([int(splits.test_ids[0])], t_star=100.0)[0]
        assert np.isfinite(result.current_estimate)

    def test_predictions_track_delay_magnitude(self, small_dataset, small_splits):
        estimator = DomdEstimator(FAST).fit(small_dataset, small_splits.train_ids)
        delay_by_id = {
            int(a): float(d)
            for a, d in zip(
                small_dataset.avails["avail_id"], small_dataset.avails["delay"]
            )
        }
        ids = [int(a) for a in small_splits.test_ids]
        y = np.array([delay_by_id[a] for a in ids])
        preds = np.array(
            [r.current_estimate for r in estimator.query(ids, t_star=100.0)]
        )
        assert mae(y, preds) < np.abs(y - y.mean()).mean() * 1.1
