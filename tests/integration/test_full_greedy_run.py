"""Full greedy chain (all six stages) on a small dataset."""

import pytest

from repro.core import PipelineConfig, PipelineOptimizer
from repro.core.pipeline import STAGES
from repro.ml import GbmParams


@pytest.fixture(scope="module")
def full_report(request):
    dataset = request.getfixturevalue("small_dataset")
    splits = request.getfixturevalue("small_splits")
    optimizer = PipelineOptimizer(
        dataset,
        splits,
        base_config=PipelineConfig(window_pct=50.0, k=8, gbm=GbmParams(n_estimators=20)),
    )
    report = optimizer.run(
        stages=STAGES,
        selection_methods=("pearson", "random"),
        k_grid=(5, 10),
        trial_counts=(2, 4),
    )
    return optimizer, report


class TestFullRun:
    def test_all_stages_present(self, full_report):
        _, report = full_report
        assert set(report.stages) == set(STAGES)

    def test_config_reflects_every_stage(self, full_report):
        optimizer, report = full_report
        config = report.config
        assert config.selection_method == report.stages["selection"].chosen["selection_method"]
        assert config.model_family == report.stages["model"].chosen["model_family"]
        assert config.architecture == report.stages["architecture"].chosen["architecture"]
        assert config.loss == report.stages["loss"].chosen["loss"]
        assert config.fusion == report.stages["fusion"].chosen["fusion"]
        assert config is optimizer.config

    def test_hpt_adopted_tuned_params_or_skipped(self, full_report):
        _, report = full_report
        chosen = report.stages["hpt"].chosen
        if report.config.model_family == "gbm":
            assert chosen["n_trials"] in (2, 4)
            assert "learning_rate" in chosen["best_params"]
        else:
            assert chosen["skipped"] == "non-GBM family"

    def test_stage_timings_recorded(self, full_report):
        _, report = full_report
        for name, stage in report.stages.items():
            if name == "hpt" and not stage.records:
                continue  # skipped stage
            assert stage.seconds > 0

    def test_summary_serialisable(self, full_report):
        import json

        _, report = full_report
        payload = report.summary()
        json.dumps(payload, default=str)

    def test_final_config_evaluates(self, full_report):
        optimizer, report = full_report
        out = optimizer.test_evaluation(report.config)
        assert out["average"]["mae_100"] > 0

    def test_hpt_stage_skipped_when_linear_wins(self, small_dataset, small_splits):
        """run() must raise clearly if the chain lands on linear and hpt
        is requested — the configuration contract of optimize_trials."""
        optimizer = PipelineOptimizer(
            small_dataset,
            small_splits,
            base_config=PipelineConfig(
                window_pct=50.0, k=5, model_family="linear",
                gbm=GbmParams(n_estimators=10),
            ),
        )
        from repro.errors import ConfigurationError

        optimizer.config = optimizer.config.evolve(model_family="linear")
        with pytest.raises(ConfigurationError):
            optimizer.optimize_trials(trial_counts=(2,))
