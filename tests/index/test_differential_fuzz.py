"""Property-based differential fuzzer over the Status Query backends.

Seeded random RCC event streams — salted with the adversarial shapes
that break interval indexes (zero-duration events, same-day
create/settle clusters, never-settled rows) — are pushed through all
four index designs *and* both sweep execution paths
(incremental :class:`StatStructure` vs. from-scratch), asserting every
pairing produces identical aggregate tables.

On failure the harness does not just throw: it **shrinks** the event
stream with a ddmin-style bisection (drop chunks while the disagreement
survives) and fails with the minimal reproducer printed as a
copy-pasteable literal, so a backend bug arrives pre-reduced.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.index.status_query import StatusQuery, StatusQueryEngine
from repro.table.table import ColumnTable

DESIGNS = ("naive", "avl", "interval", "sorted_array")
REFERENCE = "naive"

#: Finite "never settled" sentinel.  Deliberately *not* ``np.inf``: the
#: interval tree computes bucket centers as ``(min + max) / 2`` and an
#: infinite end would poison them, which is exactly the kind of edge
#: this fuzzer exists to keep honest.
UNSETTLED = 1.0e9

SWEEP = [0.0, 10.0, 25.0, 40.0, 55.0, 70.0, 85.0, 100.0, 120.0]

RCC_TYPES = ("G", "N", "NG")
SWLINS = ("111-11-001", "123-45-002", "222-22-003", "999-90-004")

Event = dict


def random_events(seed: int, n: int = 80) -> list[Event]:
    """A seeded RCC event stream with adversarial timestamp shapes."""
    rng = np.random.default_rng(seed)
    # a small timestamp pool forces exact start/end ties across rows
    tick_pool = np.round(rng.uniform(0.0, 110.0, size=max(4, n // 4)), 1)
    events: list[Event] = []
    for index in range(n):
        shape = rng.integers(0, 10)
        t_start = float(rng.choice(tick_pool))
        if shape <= 1:  # zero-duration: created and settled the same day
            t_end = t_start
        elif shape == 2:  # never settled (ongoing work)
            t_end = UNSETTLED
        elif shape == 3:  # same-day cluster: ties with another row's start
            t_end = float(rng.choice(tick_pool))
            if t_end < t_start:
                t_start, t_end = t_end, t_start
        else:  # ordinary settled row
            t_end = t_start + float(np.round(rng.gamma(2.0, 15.0), 1))
        events.append(
            {
                "rcc_type": str(rng.choice(RCC_TYPES)),
                "swlin": str(rng.choice(SWLINS)),
                "t_start": t_start,
                "t_end": t_end,
                "amount": float(np.round(rng.uniform(10.0, 5000.0), 2)),
            }
        )
    return events


def events_table(events: list[Event]) -> ColumnTable:
    return ColumnTable(
        {
            "rcc_type": [e["rcc_type"] for e in events],
            "swlin": [e["swlin"] for e in events],
            "t_start": np.array([e["t_start"] for e in events], dtype=np.float64),
            "t_end": np.array([e["t_end"] for e in events], dtype=np.float64),
            "amount": np.array([e["amount"] for e in events], dtype=np.float64),
        }
    )


def canonical(table: ColumnTable) -> dict[tuple, dict]:
    """Rows keyed by their group labels (the string-valued columns).

    Keying by labels — not row order, not stringified numbers — pairs
    each group with its counterpart in the other table regardless of
    output ordering or float noise in the aggregates.
    """
    label_names = [
        name for name in table.column_names if table[name].dtype.kind == "O"
    ]
    rows: dict[tuple, dict] = {}
    for row in table.to_rows():
        rows[tuple(row[name] for name in label_names)] = row
    return rows


def tables_agree(a: ColumnTable, b: ColumnTable) -> bool:
    if a.n_rows != b.n_rows or set(a.column_names) != set(b.column_names):
        return False
    rows_a, rows_b = canonical(a), canonical(b)
    if set(rows_a) != set(rows_b):
        return False
    for key, row_a in rows_a.items():
        row_b = rows_b[key]
        for name, value_a in row_a.items():
            value_b = row_b[name]
            if isinstance(value_a, str) or isinstance(value_b, str):
                if value_a != value_b:
                    return False
            elif not np.isclose(
                float(value_a), float(value_b), rtol=1e-9, atol=1e-6
            ):
                return False
    return True


def disagreement(events: list[Event]) -> str | None:
    """None if every backend and execution path agrees, else a label."""
    if not events:
        return None
    table = events_table(events)
    reference_engine = StatusQueryEngine(table, design=REFERENCE)
    reference_sweep = reference_engine.execute_sweep(SWEEP, incremental=False)
    for design in DESIGNS:
        engine = StatusQueryEngine(table, design=design)
        # point queries from scratch at every sweep timestamp
        for t, want in zip(SWEEP, reference_sweep):
            got = engine.execute(StatusQuery(t))
            if not tables_agree(got, want):
                return f"{design}.execute(t={t}) != {REFERENCE} scratch sweep"
        # incremental sweep (fresh engine: StatStructure state is monotone)
        incremental = StatusQueryEngine(table, design=design).execute_sweep(
            SWEEP, incremental=True
        )
        for t, got, want in zip(SWEEP, incremental, reference_sweep):
            if not tables_agree(got, want):
                return f"{design} incremental sweep (t={t}) != {REFERENCE} scratch"
    return None


def shrink(events: list[Event], predicate=None) -> list[Event]:
    """ddmin-style bisection: drop chunks while the failure survives.

    ``predicate`` maps a candidate event list to a truthy failure label
    (or ``None`` when the candidate passes); it defaults to this
    module's :func:`disagreement`, resolved at call time so tests can
    monkeypatch it.  Other suites (the streaming replay differential)
    reuse the shrinker by passing their own predicate.
    """
    if predicate is None:
        def predicate(candidate):
            return disagreement(candidate)
    current = list(events)
    chunk = max(1, len(current) // 2)
    while chunk >= 1:
        index = 0
        reduced = False
        while index < len(current):
            candidate = current[:index] + current[index + chunk :]
            if candidate and predicate(candidate) is not None:
                current = candidate
                reduced = True
            else:
                index += chunk
        if not reduced:
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)
    return current


def assert_agreement(events: list[Event]) -> None:
    label = disagreement(events)
    if label is None:
        return
    minimal = shrink(events)
    reproducer = json.dumps(minimal, indent=2)
    pytest.fail(
        f"backend disagreement: {label}\n"
        f"minimal reproducer ({len(minimal)} of {len(events)} events) — "
        f"feed to events_table():\n{reproducer}"
    )


class TestDifferentialFuzz:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 7, 11, 2024])
    def test_seeded_streams_agree_everywhere(self, seed):
        assert_agreement(random_events(seed))

    def test_pure_zero_duration_stream(self):
        rng = np.random.default_rng(5)
        events = []
        for _ in range(30):
            t = float(np.round(rng.uniform(0, 100), 1))
            events.append(
                {
                    "rcc_type": "G",
                    "swlin": SWLINS[0],
                    "t_start": t,
                    "t_end": t,
                    "amount": 100.0,
                }
            )
        assert_agreement(events)

    def test_pure_unsettled_stream(self):
        events = [
            {
                "rcc_type": "N",
                "swlin": SWLINS[1],
                "t_start": float(t),
                "t_end": UNSETTLED,
                "amount": 50.0,
            }
            for t in range(0, 100, 7)
        ]
        assert_agreement(events)
        # sanity on the semantics: nothing ever settles
        table = events_table(events)
        result = StatusQueryEngine(table, design="avl").execute(StatusQuery(120.0))
        assert int(np.sum(result["n_settled"])) == 0
        assert int(np.sum(result["n_active"])) == len(events)

    def test_single_timestamp_pileup(self):
        """Every event created and settled at one instant."""
        events = [
            {
                "rcc_type": RCC_TYPES[i % 3],
                "swlin": SWLINS[i % 4],
                "t_start": 50.0,
                "t_end": 50.0,
                "amount": float(i + 1),
            }
            for i in range(12)
        ]
        assert_agreement(events)


class TestShrinker:
    def test_shrinker_machinery_minimizes_a_planted_failure(self, monkeypatch):
        """Plant a fake disagreement predicate and check ddmin minimizes."""
        events = random_events(3, n=24)
        poison = events[17]

        def fake_disagreement(candidate):
            return "planted" if poison in candidate else None

        monkeypatch.setattr(
            "tests.index.test_differential_fuzz.disagreement", fake_disagreement
        )
        minimal = shrink(events)
        assert minimal == [poison]

    def test_shrinker_preserves_real_agreement(self):
        """On an agreeing stream, disagreement() is None and nothing fails."""
        assert disagreement(random_events(9, n=20)) is None
