"""Columnar == scalar, byte for byte: the executor differential suite.

The columnar execution core promises *bitwise* float64 parity with the
scalar Algorithm-StatusQ path — not approximate agreement — because both
accumulate in the same order (row order for points, event-time order for
sweeps).  This suite enforces that promise across all four index designs
× point/sweep × incremental streaming replay at every watermark, reusing
the ddmin shrinker from :mod:`tests.index.test_differential_fuzz` so a
parity break arrives as a minimal, copy-pasteable reproducer.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.index.columnar import AGGREGATE_DTYPE, ColumnarSweepState
from repro.index.status_query import (
    AGGREGATE_COLUMNS,
    StatusQuery,
    StatusQueryEngine,
)
from repro.stream import StreamIngestor, StreamingRccStore, dataset_to_events

from tests.index.test_differential_fuzz import (
    DESIGNS,
    SWEEP,
    events_table,
    random_events,
    shrink,
)

POINTS = tuple(SWEEP)


def engines(table, design):
    return (
        StatusQueryEngine(table, design=design, executor="columnar"),
        StatusQueryEngine(table, design=design, executor="scalar"),
    )


def tables_identical(a, b) -> str | None:
    """None when byte-identical; else the first differing column."""
    if a.n_rows != b.n_rows:
        return f"n_rows {a.n_rows} != {b.n_rows}"
    if list(a.column_names) != list(b.column_names):
        return f"columns {a.column_names} != {b.column_names}"
    for name in a.column_names:
        col_a, col_b = a[name], b[name]
        if col_a.dtype.kind == "O":
            if not (col_a == col_b).all():
                return name
        else:
            if col_a.dtype != col_b.dtype:
                return f"{name} dtype {col_a.dtype} != {col_b.dtype}"
            # bitwise: exact equality, no tolerance
            if not np.array_equal(col_a, col_b):
                return name
    return None


def executor_disagreement(events) -> str | None:
    """Label of the first columnar/scalar divergence, or None."""
    if not events:
        return None
    table = events_table(events)
    for design in DESIGNS:
        columnar, scalar = engines(table, design)
        for t in POINTS:
            diff = tables_identical(
                columnar.execute(StatusQuery(t)), scalar.execute(StatusQuery(t))
            )
            if diff is not None:
                return f"{design}.point(t={t}): {diff}"
        col_sweep = columnar.execute_sweep(list(SWEEP))
        sca_sweep = scalar.execute_sweep(list(SWEEP))
        for t, got, want in zip(SWEEP, col_sweep, sca_sweep):
            diff = tables_identical(got, want)
            if diff is not None:
                return f"{design}.sweep(t={t}): {diff}"
    return None


def assert_executors_identical(events) -> None:
    label = executor_disagreement(events)
    if label is None:
        return
    minimal = shrink(events, predicate=executor_disagreement)
    reproducer = json.dumps(minimal, indent=2)
    pytest.fail(
        f"columnar/scalar divergence: {label}\n"
        f"minimal reproducer ({len(minimal)} of {len(events)} events) — "
        f"feed to events_table():\n{reproducer}"
    )


class TestPointAndSweepParity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 7, 11, 2024])
    def test_seeded_streams_byte_identical(self, seed):
        assert_executors_identical(random_events(seed))

    def test_no_grouping_and_every_swlin_level(self):
        table = events_table(random_events(13, n=60))
        for design in DESIGNS:
            columnar, scalar = engines(table, design)
            specs = [StatusQuery(55.0, group_by_type=False, swlin_level=None)]
            specs += [
                StatusQuery(55.0, group_by_type=True, swlin_level=level)
                for level in (1, 2, 3, 4)
            ]
            for spec in specs:
                diff = tables_identical(
                    columnar.execute(spec), scalar.execute(spec)
                )
                assert diff is None, (design, spec, diff)

    def test_sweep_resume_parity(self):
        """Resumed (cached-state) sweeps agree with scalar resumes."""
        table = events_table(random_events(17, n=70))
        for design in DESIGNS:
            columnar, scalar = engines(table, design)
            for window in ([0.0, 30.0], [60.0, 90.0], [90.0, 120.0]):
                for got, want in zip(
                    columnar.execute_sweep(window), scalar.execute_sweep(window)
                ):
                    assert tables_identical(got, want) is None, (design, window)

    def test_scratch_sweep_parity(self):
        table = events_table(random_events(23, n=50))
        for design in DESIGNS:
            columnar, scalar = engines(table, design)
            for got, want in zip(
                columnar.execute_sweep(list(SWEEP), incremental=False),
                scalar.execute_sweep(list(SWEEP), incremental=False),
            ):
                assert tables_identical(got, want) is None, design


class TestAggregateDtypesPinned:
    """Satellite: all ten AGGREGATE_COLUMNS are float64 end-to-end."""

    @pytest.mark.parametrize("executor", ["columnar", "scalar"])
    @pytest.mark.parametrize("mode", ["point", "sweep"])
    def test_all_columns_float64(self, executor, mode):
        table = events_table(random_events(4, n=40))
        engine = StatusQueryEngine(table, design="avl", executor=executor)
        if mode == "point":
            tables = [engine.execute(StatusQuery(50.0))]
        else:
            tables = engine.execute_sweep([0.0, 50.0, 100.0])
        for result in tables:
            for name in AGGREGATE_COLUMNS:
                assert result[name].dtype == AGGREGATE_DTYPE, (name, mode)

    @pytest.mark.parametrize("executor", ["columnar", "scalar"])
    def test_zero_count_division_sentinel(self, executor):
        """Empty settled/created groups average to exactly 0.0, not NaN."""
        events = [
            {
                "rcc_type": "G",
                "swlin": "111-11-001",
                "t_start": 10.0,
                "t_end": 90.0,
                "amount": 100.0,
            },
            {
                "rcc_type": "N",
                "swlin": "222-22-003",
                "t_start": 80.0,
                "t_end": 95.0,
                "amount": 50.0,
            },
        ]
        table = events_table(events)
        engine = StatusQueryEngine(table, design="avl", executor=executor)
        # at t=20: G created+active (settled empty); N not yet created
        result = engine.execute(StatusQuery(20.0))
        for name in ("amt_settled_avg", "dur_settled_avg", "pct_active"):
            column = result[name]
            assert np.isfinite(column).all(), name
        rows = {row["rcc_type"]: row for row in result.to_rows()}
        assert rows["G"]["amt_settled_avg"] == 0.0
        assert rows["G"]["dur_settled_avg"] == 0.0
        assert rows["N"]["pct_active"] == 0.0  # n_created == 0


class TestStreamingReplayParity:
    """Columnar == scalar over live-maintained adapters at every watermark."""

    @pytest.fixture(scope="class")
    def small_dataset(self):
        from repro.data import SyntheticNmdConfig, generate_dataset

        return generate_dataset(
            SyntheticNmdConfig(
                n_ships=2,
                n_closed_avails=5,
                n_ongoing_avails=1,
                target_n_rccs=160,
                seed=11,
            )
        )

    @pytest.mark.parametrize("design", DESIGNS)
    def test_replay_watermarks(self, small_dataset, design):
        dataset = small_dataset
        _, events = dataset_to_events(dataset)
        store = StreamingRccStore(
            ships=dataset.ships,
            avails=dataset.avails,
            seed=dataset.seed,
            scaling_factor=dataset.scaling_factor,
        )
        ingestor = StreamIngestor(store, designs=(design,))
        batch = 40
        for lo in range(0, len(events), batch):
            ingestor.apply_events(events[lo : lo + batch])
            if store.n_rccs == 0:
                continue
            table = store.engine_table()
            adapter = ingestor.adapters[design]
            columnar = StatusQueryEngine(table, index=adapter, executor="columnar")
            scalar = StatusQueryEngine(table, index=adapter, executor="scalar")
            for t in (0.0, 50.0, 100.0):
                diff = tables_identical(
                    columnar.execute(StatusQuery(t)),
                    scalar.execute(StatusQuery(t)),
                )
                assert diff is None, (design, ingestor.watermark, t, diff)
            for got, want in zip(
                columnar.execute_sweep([0.0, 25.0, 50.0, 75.0, 100.0]),
                scalar.execute_sweep([0.0, 25.0, 50.0, 75.0, 100.0]),
            ):
                diff = tables_identical(got, want)
                assert diff is None, (design, ingestor.watermark, diff)


class TestColumnarSweepState:
    def test_chunked_equals_single_batch(self):
        """Chunk boundaries do not change the accumulated values."""
        from repro.index.columnar import ColumnarRccFrame

        table = events_table(random_events(31, n=90))
        frame = ColumnarRccFrame(table)
        coding = frame.group_coding(True, 1)
        whole = ColumnarSweepState(frame, coding)
        matrices, delta = whole.advance_batch(np.asarray(SWEEP))
        chunked = ColumnarSweepState(frame, coding)
        rows = []
        total_delta = 0
        for lo in range(0, len(SWEEP), 2):
            part, d = chunked.advance_batch(np.asarray(SWEEP[lo : lo + 2]))
            total_delta += d
            for row in range(part["created_count"].shape[0]):
                rows.append({k: v[row] for k, v in part.items()})
        assert total_delta == delta
        for index, row in enumerate(rows):
            for key, matrix in matrices.items():
                assert np.array_equal(matrix[index], row[key]), (index, key)

    def test_monotone_enforced(self):
        from repro.errors import ConfigurationError
        from repro.index.columnar import ColumnarRccFrame

        table = events_table(random_events(5, n=30))
        frame = ColumnarRccFrame(table)
        state = ColumnarSweepState(frame, frame.group_coding(True, 1))
        state.advance_batch(np.array([50.0]))
        with pytest.raises(ConfigurationError, match="forward"):
            state.advance_batch(np.array([10.0]))

    def test_delta_counts_every_event_once(self):
        from repro.index.columnar import ColumnarRccFrame

        table = events_table(random_events(6, n=40))
        frame = ColumnarRccFrame(table)
        state = ColumnarSweepState(frame, frame.group_coding(True, 1))
        _, delta = state.advance_batch(np.array([1.0e12]))
        assert delta == 2 * table.n_rows  # every start and end applied
