"""Tests for the SWLIN trie and RCC-type tree."""

import pytest

from repro.errors import ConfigurationError
from repro.index import (
    RCC_TYPES,
    RccTypeTree,
    SwlinTree,
    format_swlin,
    normalize_swlin,
    swlin_prefix,
)

CODES = ["111-11-001", "112-22-002", "433-00-003", "434-11-001", "911-90-001"]


class TestSwlinHelpers:
    def test_normalize(self):
        assert normalize_swlin("434-11-001") == "43411001"

    def test_normalize_spaces(self):
        assert normalize_swlin("434 11 001") == "43411001"

    def test_normalize_rejects_short(self):
        with pytest.raises(ConfigurationError):
            normalize_swlin("123")

    def test_normalize_rejects_letters(self):
        with pytest.raises(ConfigurationError):
            normalize_swlin("4341100A")

    def test_format_roundtrip(self):
        assert format_swlin("43411001") == "434-11-001"
        assert normalize_swlin(format_swlin("43411001")) == "43411001"

    def test_format_rejects_bad_input(self):
        with pytest.raises(ConfigurationError):
            format_swlin("12")

    def test_prefix_levels(self):
        assert swlin_prefix("434-11-001", 1) == "4"
        assert swlin_prefix("434-11-001", 2) == "434"
        assert swlin_prefix("434-11-001", 3) == "43411"
        assert swlin_prefix("434-11-001", 4) == "43411001"

    def test_prefix_invalid_level(self):
        with pytest.raises(ConfigurationError):
            swlin_prefix("434-11-001", 0)
        with pytest.raises(ConfigurationError):
            swlin_prefix("434-11-001", 5)


class TestSwlinTree:
    def test_len(self):
        tree = SwlinTree(CODES)
        assert len(tree) == 5

    def test_level_1_nodes(self):
        tree = SwlinTree(CODES)
        prefixes = tree.prefixes_at_level(1)
        assert prefixes == ["1", "4", "9"]

    def test_level_2_nodes(self):
        tree = SwlinTree(CODES)
        assert tree.prefixes_at_level(2) == ["111", "112", "433", "434", "911"]

    def test_rows_for_prefix_level1(self):
        tree = SwlinTree(CODES)
        assert tree.rows_for_prefix("4") == [2, 3]

    def test_rows_for_prefix_full_code(self):
        tree = SwlinTree(CODES)
        assert tree.rows_for_prefix("43411001") == [3]

    def test_rows_for_missing_prefix(self):
        tree = SwlinTree(CODES)
        assert tree.rows_for_prefix("7") == []

    def test_rows_for_root(self):
        tree = SwlinTree(CODES)
        assert tree.rows_for_prefix("") == [0, 1, 2, 3, 4]

    def test_rows_for_non_boundary_prefix(self):
        tree = SwlinTree(CODES)
        with pytest.raises(ConfigurationError):
            tree.rows_for_prefix("43")

    def test_invalid_level(self):
        tree = SwlinTree(CODES)
        with pytest.raises(ConfigurationError):
            tree.nodes_at_level(9)

    def test_walk_includes_root(self):
        tree = SwlinTree(CODES)
        nodes = dict(tree.walk())
        assert nodes[""] == 5
        assert nodes["4"] == 2


class TestRccTypeTree:
    def test_insert_and_rows(self):
        tree = RccTypeTree(["G", "N", "G", "NG"])
        assert tree.rows_for_type("G") == [0, 2]
        assert tree.rows_for_type("NG") == [3]

    def test_rows_for_all(self):
        tree = RccTypeTree(["G", "N"])
        assert tree.rows_for_type(None) == [0, 1]

    def test_unknown_type_insert(self):
        tree = RccTypeTree()
        with pytest.raises(ConfigurationError):
            tree.insert("X", 0)

    def test_unknown_type_query(self):
        tree = RccTypeTree(["G"])
        with pytest.raises(ConfigurationError):
            tree.rows_for_type("Z")

    def test_types_present(self):
        tree = RccTypeTree(["NG", "NG", "G"])
        assert tree.types_present() == ["G", "NG"]

    def test_canonical_type_order(self):
        assert RCC_TYPES == ("G", "N", "NG")

    def test_len(self):
        assert len(RccTypeTree(["G", "N", "NG"])) == 3
