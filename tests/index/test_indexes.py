"""Tests for the three logical-time index designs (Section 4.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, LengthMismatchError
from repro.index import (
    DualAvlIndex,
    IntervalTreeIndex,
    NaiveJoinIndex,
    SortedArrayIndex,
    index_designs,
)


@pytest.fixture()
def triples(rng):
    n = 300
    starts = rng.uniform(0, 100, n).round(2)
    ends = starts + rng.gamma(2.0, 10.0, n).round(2)
    ids = np.arange(n)
    return starts, ends, ids


ALL_DESIGNS = [NaiveJoinIndex, DualAvlIndex, IntervalTreeIndex, SortedArrayIndex]


@pytest.mark.parametrize("design", ALL_DESIGNS)
class TestEachDesign:
    def test_status_sets_partition(self, design, triples):
        starts, ends, ids = triples
        index = design(starts, ends, ids)
        for t in [0.0, 25.0, 50.0, 75.0, 100.0, 150.0]:
            active = index.active_ids(t)
            settled = index.settled_ids(t)
            created = index.created_ids(t)
            pending = index.pending_ids(t)
            assert np.array_equal(np.union1d(active, settled), created)
            assert len(np.intersect1d(active, settled)) == 0
            assert np.array_equal(np.union1d(created, pending), np.sort(ids))

    def test_matches_brute_force(self, design, triples):
        starts, ends, ids = triples
        index = design(starts, ends, ids)
        for t in [10.0, 42.5, 90.0]:
            assert np.array_equal(
                index.active_ids(t), np.sort(ids[(starts <= t) & (t < ends)])
            )
            assert np.array_equal(index.settled_ids(t), np.sort(ids[ends <= t]))
            assert np.array_equal(index.created_ids(t), np.sort(ids[starts <= t]))

    def test_len(self, design, triples):
        starts, ends, ids = triples
        assert len(design(starts, ends, ids)) == len(ids)

    def test_memory_positive(self, design, triples):
        starts, ends, ids = triples
        assert design(starts, ends, ids).approx_nbytes() > 0

    def test_rejects_misaligned_arrays(self, design):
        with pytest.raises(LengthMismatchError):
            design(np.array([1.0]), np.array([2.0, 3.0]), np.array([0, 1]))

    def test_rejects_inverted_intervals(self, design):
        with pytest.raises(ConfigurationError, match="settles before"):
            design(np.array([5.0]), np.array([1.0]), np.array([0]))

    def test_empty_index(self, design):
        empty = design(np.array([]), np.array([]), np.array([], dtype=np.int64))
        assert len(empty) == 0
        assert len(empty.active_ids(10.0)) == 0


class TestDesignAgreement:
    def test_all_designs_identical(self, triples):
        starts, ends, ids = triples
        indexes = {name: cls(starts, ends, ids) for name, cls in index_designs().items()}
        reference = indexes["naive"]
        for t in np.linspace(0, 160, 9):
            for name, index in indexes.items():
                assert np.array_equal(index.active_ids(t), reference.active_ids(t)), name
                assert np.array_equal(index.settled_ids(t), reference.settled_ids(t)), name

    def test_registry_order_matches_paper(self):
        assert list(index_designs()) == ["naive", "avl", "interval"]


class TestDualAvlMaintenance:
    def test_insert_visible_in_queries(self, triples):
        starts, ends, ids = triples
        index = DualAvlIndex(starts, ends, ids)
        index.insert(5.0, 500.0, 9999)
        assert 9999 in index.active_ids(50.0)
        assert 9999 in index.created_ids(50.0)
        assert 9999 not in index.settled_ids(50.0)

    def test_delete_removes_from_queries(self, triples):
        starts, ends, ids = triples
        index = DualAvlIndex(starts, ends, ids)
        assert index.delete(float(starts[0]), float(ends[0]), int(ids[0]))
        assert ids[0] not in index.created_ids(1000.0)
        assert len(index) == len(ids) - 1

    def test_delete_missing_returns_false(self, triples):
        starts, ends, ids = triples
        index = DualAvlIndex(starts, ends, ids)
        assert not index.delete(0.123456, 999.0, 424242)

    def test_counts_at_matches_set_sizes(self, triples):
        starts, ends, ids = triples
        index = DualAvlIndex(starts, ends, ids)
        for t in [10.0, 60.0, 120.0]:
            created, settled, active = index.counts_at(t)
            assert created == len(index.created_ids(t))
            assert settled == len(index.settled_ids(t))
            assert active == len(index.active_ids(t))


class TestIntervalIndexMaintenance:
    def test_insert(self, triples):
        starts, ends, ids = triples
        index = IntervalTreeIndex(starts, ends, ids)
        index.insert(1.0, 200.0, 7777)
        assert 7777 in index.active_ids(100.0)


class TestSortedArrayMaintenance:
    def test_insert_rebuilds(self, triples):
        starts, ends, ids = triples
        index = SortedArrayIndex(starts, ends, ids)
        index.insert(5.0, 400.0, 8888)
        assert 8888 in index.active_ids(50.0)
        assert len(index) == len(ids) + 1


@st.composite
def random_events(draw):
    n = draw(st.integers(1, 50))
    starts = draw(
        st.lists(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    widths = draw(
        st.lists(
            st.floats(min_value=0, max_value=60, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    return np.array(starts), np.array(starts) + np.array(widths)


class TestPropertyAgreement:
    @given(random_events(), st.floats(min_value=-5, max_value=170, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_designs_agree_on_random_data(self, events, t):
        starts, ends = events
        ids = np.arange(len(starts))
        results = [
            (cls(starts, ends, ids).active_ids(t), cls(starts, ends, ids).settled_ids(t))
            for cls in ALL_DESIGNS
        ]
        for active, settled in results[1:]:
            assert np.array_equal(active, results[0][0])
            assert np.array_equal(settled, results[0][1])


class TestTripleValidation:
    """The end<start validator reports *every* offending row with ids."""

    def test_two_bad_rows_both_reported(self):
        starts = np.array([0.0, 5.0, 2.0, 9.0])
        ends = np.array([1.0, 3.0, 4.0, 6.0])  # rows 1 and 3 are inverted
        ids = np.array([10, 11, 12, 13])
        with pytest.raises(ConfigurationError) as excinfo:
            ALL_DESIGNS[0](starts, ends, ids)
        message = str(excinfo.value)
        assert message.startswith("2 RCC row(s)")
        assert "id 11" in message and "id 13" in message

    def test_overflow_list_is_capped(self):
        n = 30
        starts = np.full(n, 5.0)
        ends = np.zeros(n)
        ids = np.arange(n)
        with pytest.raises(ConfigurationError) as excinfo:
            ALL_DESIGNS[0](starts, ends, ids)
        message = str(excinfo.value)
        assert message.startswith(f"{n} RCC row(s)")
        assert "and 10 more" in message
