"""Metric-name uniformity across the four index backends.

Dashboards and the planner's feedback loop rely on every backend
emitting the *same* metric names modulo the backend label: counter
``status_query.queries.<design>``, spans ``index.build.<design>`` /
``status_query.query.<design>``, and the shared (unlabelled) span and
counter set around them.
"""

import numpy as np
import pytest

from repro.index import StatusQuery, StatusQueryEngine
from repro.runtime import ExecutionContext
from repro.table import ColumnTable


def _rcc_table(n: int = 60) -> ColumnTable:
    rng = np.random.default_rng(11)
    starts = rng.uniform(0, 80, size=n)
    return ColumnTable(
        {
            "rcc_type": rng.choice(["G", "N", "NG"], size=n),
            "swlin": rng.choice(
                ["10000000", "11000000", "20000000", "21000000"], size=n
            ),
            "t_start": starts,
            "t_end": starts + rng.uniform(1, 40, size=n),
            "amount": rng.uniform(10, 500, size=n),
        }
    )


def _strip_design(name: str, design: str) -> str:
    """Replace a trailing ``.<design>`` suffix with ``.<backend>``."""
    suffix = f".{design}"
    if name.endswith(suffix):
        return name[: -len(suffix)] + ".<backend>"
    return name


def _run_workload(design: str) -> ExecutionContext:
    context = ExecutionContext(seed=0)
    engine = StatusQueryEngine(_rcc_table(), design=design, context=context)
    engine.execute(StatusQuery(t_star=50.0))
    engine.execute_sweep([0.0, 25.0, 50.0])
    return context


@pytest.fixture(scope="module")
def contexts_by_design():
    return {
        design: _run_workload(design) for design in StatusQueryEngine.designs()
    }


class TestBackendMetricUniformity:
    def test_four_designs_exist(self):
        assert set(StatusQueryEngine.designs()) == {
            "naive", "avl", "interval", "sorted_array",
        }

    def test_counter_names_identical_modulo_backend(self, contexts_by_design):
        normalized = {
            design: {
                _strip_design(name, design)
                for name in context.metrics.counters
            }
            for design, context in contexts_by_design.items()
        }
        reference = normalized["naive"]
        assert reference  # non-empty
        for design, names in normalized.items():
            assert names == reference, f"{design} diverges from naive"

    def test_span_names_identical_modulo_backend(self, contexts_by_design):
        normalized = {
            design: {
                _strip_design(name, design)
                for name in context.metrics.report().span_names()
            }
            for design, context in contexts_by_design.items()
        }
        reference = normalized["naive"]
        for design, names in normalized.items():
            assert names == reference, f"{design} diverges from naive"

    def test_labelled_query_counter_present(self, contexts_by_design):
        for design, context in contexts_by_design.items():
            counters = context.metrics.counters
            # 1 point query + 3 sweep timestamps
            assert counters[f"status_query.queries.{design}"] == 4

    def test_labelled_query_span_present(self, contexts_by_design):
        for design, context in contexts_by_design.items():
            names = context.metrics.report().span_names()
            assert f"status_query.query.{design}" in names
            assert f"index.build.{design}" in names

    def test_latency_histograms_share_name_scheme(self, contexts_by_design):
        normalized = {
            design: {
                _strip_design(name, design)
                for name in context.telemetry.histograms
            }
            for design, context in contexts_by_design.items()
        }
        reference = normalized["naive"]
        assert "span.status_query.query.<backend>" in reference
        for design, names in normalized.items():
            assert names == reference, f"{design} diverges from naive"

    def test_results_identical_across_backends(self, contexts_by_design):
        # uniform metrics would be meaningless if the answers diverged
        tables = {
            design: StatusQueryEngine(
                _rcc_table(), design=design, context=context
            ).execute(StatusQuery(t_star=50.0))
            for design, context in contexts_by_design.items()
        }
        reference = tables["naive"]
        for design, table in tables.items():
            assert table.n_rows == reference.n_rows
            np.testing.assert_allclose(
                np.asarray(table["n_active"]), np.asarray(reference["n_active"])
            )


class TestOperatorStatSchemaUniformity:
    """Every backend must expose the same per-operator stat schema —
    EXPLAIN's operator rows are backend-agnostic only because
    ``LogicalTimeIndex`` centralises the counting in one wrapper layer."""

    def _index(self, design):
        return StatusQueryEngine(_rcc_table(), design=design).index

    def test_schema_identical_across_backends(self):
        from repro.index.base import OPERATOR_NAMES, OPERATOR_STAT_FIELDS

        for design in StatusQueryEngine.designs():
            index = self._index(design)
            assert set(index.op_stats) == set(OPERATOR_NAMES), design
            for op, stats in index.op_stats.items():
                assert set(stats) == set(OPERATOR_STAT_FIELDS), (design, op)
                assert all(isinstance(v, int) for v in stats.values())

    def test_counts_and_rows_agree_across_backends(self):
        observed = {}
        for design in StatusQueryEngine.designs():
            index = self._index(design)
            for t_star in (25.0, 50.0):
                index.settled_ids(t_star)
                index.created_ids(t_star)
                index.active_ids(t_star)
                index.pending_ids(t_star)
            observed[design] = {
                op: dict(stats) for op, stats in index.op_stats.items()
            }
        reference = observed["naive"]
        assert all(stats["calls"] == 2 for stats in reference.values())
        assert any(stats["rows_out"] > 0 for stats in reference.values())
        for design, stats in observed.items():
            assert stats == reference, f"{design} diverges from naive"

    def test_internal_cross_calls_do_not_double_count(self):
        # avl/sorted_array derive active = created - settled internally;
        # one public active_ids call must count as exactly one active op.
        for design in ("avl", "sorted_array"):
            index = self._index(design)
            index.active_ids(50.0)
            assert index.op_stats["active"]["calls"] == 1, design
            assert index.op_stats["settled"]["calls"] == 0, design
            assert index.op_stats["created"]["calls"] == 0, design

    def test_reset_op_stats_zeroes_everything(self):
        index = self._index("interval")
        index.settled_ids(50.0)
        assert index.op_stats["settled"]["calls"] == 1
        index.reset_op_stats()
        assert all(
            value == 0
            for stats in index.op_stats.values()
            for value in stats.values()
        )
