"""Unit + property tests for the AVL tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexCorruptionError
from repro.index import AvlTree


@pytest.fixture()
def tree():
    t = AvlTree()
    for key, value in [(5.0, "a"), (3.0, "b"), (8.0, "c"), (3.0, "d"), (1.0, "e")]:
        t.insert(key, value)
    return t


class TestBasics:
    def test_len_counts_values(self, tree):
        assert len(tree) == 5

    def test_contains(self, tree):
        assert 3.0 in tree
        assert 4.0 not in tree

    def test_get_duplicates(self, tree):
        assert sorted(tree.get(3.0)) == ["b", "d"]

    def test_get_missing(self, tree):
        assert tree.get(99.0) == []

    def test_min_max(self, tree):
        assert tree.min_key() == 1.0
        assert tree.max_key() == 8.0

    def test_min_max_empty(self):
        t = AvlTree()
        assert t.min_key() is None
        assert t.max_key() is None

    def test_items_in_order(self, tree):
        keys = [k for k, _ in tree.items()]
        assert keys == sorted(keys)

    def test_validate_passes(self, tree):
        tree.validate()


class TestRangeQueries:
    def test_values_leq(self, tree):
        assert sorted(tree.values_leq(3.0)) == ["b", "d", "e"]

    def test_values_leq_all(self, tree):
        assert len(tree.values_leq(100.0)) == 5

    def test_values_leq_none(self, tree):
        assert tree.values_leq(0.5) == []

    def test_values_gt(self, tree):
        assert sorted(tree.values_gt(3.0)) == ["a", "c"]

    def test_values_in(self, tree):
        assert sorted(tree.values_in(1.0, 5.0)) == ["a", "b", "d"]

    def test_values_in_empty_range(self, tree):
        assert tree.values_in(5.0, 5.0) == []

    def test_count_leq(self, tree):
        assert tree.count_leq(3.0) == 3
        assert tree.count_leq(0.0) == 0
        assert tree.count_leq(10.0) == 5


class TestDelete:
    def test_delete_existing(self, tree):
        assert tree.delete(3.0, "b")
        assert sorted(tree.get(3.0)) == ["d"]
        assert len(tree) == 4
        tree.validate()

    def test_delete_last_value_removes_node(self, tree):
        tree.delete(3.0, "b")
        tree.delete(3.0, "d")
        assert 3.0 not in tree
        tree.validate()

    def test_delete_missing_value(self, tree):
        assert not tree.delete(3.0, "zzz")
        assert len(tree) == 5

    def test_delete_missing_key(self, tree):
        assert not tree.delete(42.0, "a")

    def test_delete_root_repeatedly(self):
        t = AvlTree()
        for i in range(20):
            t.insert(float(i), i)
        for i in range(20):
            assert t.delete(float(i), i)
            t.validate()
        assert len(t) == 0


class TestBalance:
    def test_sequential_insert_stays_logarithmic(self):
        t = AvlTree()
        for i in range(1000):
            t.insert(float(i), i)
        assert t.height <= 1.45 * np.log2(1001) + 2
        t.validate()

    def test_reverse_insert_stays_logarithmic(self):
        t = AvlTree()
        for i in reversed(range(1000)):
            t.insert(float(i), i)
        assert t.height <= 1.45 * np.log2(1001) + 2
        t.validate()


class TestProperties:
    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              min_value=-1e6, max_value=1e6), max_size=120))
    @settings(max_examples=60, deadline=None)
    def test_matches_sorted_list_reference(self, values):
        tree = AvlTree()
        for i, v in enumerate(values):
            tree.insert(v, i)
        tree.validate()
        assert len(tree) == len(values)
        if values:
            pivot = values[len(values) // 2]
            expected = sorted(i for i, v in enumerate(values) if v <= pivot)
            assert sorted(tree.values_leq(pivot)) == expected
            assert tree.count_leq(pivot) == len(expected)

    @given(
        st.lists(st.integers(0, 30), min_size=1, max_size=60),
        st.lists(st.integers(0, 59), min_size=1, max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_insert_delete_interleaved(self, values, delete_positions):
        tree = AvlTree()
        alive: list[tuple[float, int]] = []
        for i, v in enumerate(values):
            tree.insert(float(v), i)
            alive.append((float(v), i))
        for pos in delete_positions:
            if not alive:
                break
            key, payload = alive.pop(pos % len(alive))
            assert tree.delete(key, payload)
            tree.validate()
        assert len(tree) == len(alive)
