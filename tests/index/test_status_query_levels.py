"""Status Query grouping at deeper SWLIN levels and stress shapes."""

import numpy as np
import pytest

from repro.index import AvlTree, DualAvlIndex, StatusQuery, StatusQueryEngine
from repro.table import ColumnTable


@pytest.fixture()
def rcc_table(rng):
    n = 300
    starts = rng.uniform(0, 100, n).round(1)
    ends = starts + rng.gamma(2.0, 12.0, n).round(1)
    return ColumnTable(
        {
            "rcc_type": rng.choice(["G", "N", "NG"], n),
            "swlin": [
                f"{d}{m:02d}-{s:02d}-{i:03d}"
                for d, m, s, i in zip(
                    rng.integers(1, 4, n),  # few first digits -> dense level 2
                    rng.integers(0, 5, n),
                    rng.integers(0, 100, n),
                    rng.integers(0, 1000, n),
                )
            ],
            "t_start": starts,
            "t_end": ends,
            "amount": rng.uniform(1e3, 1e5, n).round(2),
        }
    )


class TestDeeperGroupLevels:
    @pytest.mark.parametrize("level", [2, 3, 4])
    def test_counts_partition_at_every_level(self, rcc_table, level):
        engine = StatusQueryEngine(rcc_table, design="avl")
        result = engine.execute(
            StatusQuery(60.0, group_by_type=False, swlin_level=level)
        )
        starts = np.asarray(rcc_table["t_start"])
        assert result["n_created"].sum() == (starts <= 60.0).sum()

    def test_level2_groups_refine_level1(self, rcc_table):
        engine = StatusQueryEngine(rcc_table, design="avl")
        level1 = engine.execute(StatusQuery(50.0, group_by_type=False, swlin_level=1))
        level2 = engine.execute(StatusQuery(50.0, group_by_type=False, swlin_level=2))
        assert level2.n_rows >= level1.n_rows
        # Level-2 counts aggregate to level-1 counts by prefix.
        by_l1: dict[str, int] = {}
        for row in level2.to_rows():
            by_l1[row["swlin_l2"][0]] = by_l1.get(row["swlin_l2"][0], 0) + row["n_created"]
        for row in level1.to_rows():
            assert by_l1.get(row["swlin_l1"], 0) == row["n_created"]

    def test_level4_full_code_groups(self, rcc_table):
        engine = StatusQueryEngine(rcc_table, design="avl")
        result = engine.execute(StatusQuery(100.0, group_by_type=False, swlin_level=4))
        # Full-code groups are (almost) per-RCC.
        assert result.n_rows == len(np.unique([c.replace("-", "") for c in rcc_table["swlin"]]))

    def test_incremental_matches_scratch_at_level2(self, rcc_table):
        engine = StatusQueryEngine(rcc_table, design="avl")
        ts = [0.0, 33.0, 66.0, 100.0]
        inc = engine.execute_sweep(ts, group_by_type=True, swlin_level=2)
        scr = engine.execute_sweep(ts, group_by_type=True, swlin_level=2, incremental=False)
        for a, b in zip(inc, scr):
            np.testing.assert_allclose(
                np.asarray(a["amt_settled_sum"], float),
                np.asarray(b["amt_settled_sum"], float),
            )


class TestDegenerateShapes:
    def test_all_rccs_same_dates(self):
        """Massive key duplication: the AVL folds everything into 2 nodes."""
        n = 500
        table = ColumnTable(
            {
                "rcc_type": np.array(["G"] * n, dtype=object),
                "swlin": np.array(["111-11-001"] * n, dtype=object),
                "t_start": np.full(n, 10.0),
                "t_end": np.full(n, 20.0),
                "amount": np.ones(n),
            }
        )
        engine = StatusQueryEngine(table, design="avl")
        result = engine.execute(StatusQuery(15.0))
        assert result["n_active"].sum() == n
        result = engine.execute(StatusQuery(25.0))
        assert result["n_settled"].sum() == n

    def test_avl_duplicate_key_stress(self):
        tree = AvlTree()
        for i in range(2000):
            tree.insert(5.0, i)
        tree.validate()
        assert tree.height == 1  # one node holds all duplicates
        assert len(tree.values_leq(5.0)) == 2000

    def test_index_with_all_identical_intervals(self):
        n = 400
        index = DualAvlIndex(np.full(n, 1.0), np.full(n, 2.0), np.arange(n))
        assert len(index.active_ids(1.5)) == n
        assert len(index.settled_ids(3.0)) == n

    def test_instantaneous_rccs(self):
        """Same-day create/settle (duration clamps to 1 in the generator,
        but the engine itself must tolerate zero-length intervals)."""
        table = ColumnTable(
            {
                "rcc_type": np.array(["N", "NG"], dtype=object),
                "swlin": np.array(["111-11-001", "211-11-001"], dtype=object),
                "t_start": np.array([10.0, 20.0]),
                "t_end": np.array([10.0, 20.0]),
                "amount": np.array([1.0, 2.0]),
            }
        )
        engine = StatusQueryEngine(table, design="interval")
        result = engine.execute(StatusQuery(15.0))
        assert result["n_settled"].sum() == 1
        assert result["n_active"].sum() == 0
