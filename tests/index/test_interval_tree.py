"""Unit + property tests for the augmented interval tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import IntervalTree


@pytest.fixture()
def tree():
    t = IntervalTree()
    t.insert(0.0, 10.0, "a")
    t.insert(5.0, 20.0, "b")
    t.insert(15.0, 25.0, "c")
    t.insert(2.0, 3.0, "d")
    return t


class TestStab:
    def test_point_inside_multiple(self, tree):
        assert sorted(tree.stab(7.0)) == ["a", "b"]

    def test_half_open_start_inclusive(self, tree):
        assert "c" in tree.stab(15.0)

    def test_half_open_end_exclusive(self, tree):
        assert "a" not in tree.stab(10.0)

    def test_no_hits(self, tree):
        assert tree.stab(100.0) == []

    def test_before_everything(self, tree):
        assert tree.stab(-1.0) == []


class TestOverlapAndThresholds:
    def test_overlap(self, tree):
        assert sorted(tree.overlap(4.0, 16.0)) == ["a", "b", "c"]

    def test_overlap_excludes_touching_end(self, tree):
        # [0,10) does not overlap [10, 12)
        assert "a" not in tree.overlap(10.0, 12.0)

    def test_ended_by(self, tree):
        assert sorted(tree.ended_by(10.0)) == ["a", "d"]

    def test_ended_by_everything(self, tree):
        assert len(tree.ended_by(1000.0)) == 4

    def test_started_by(self, tree):
        assert sorted(tree.started_by(5.0)) == ["a", "b", "d"]

    def test_started_by_is_union_of_stab_and_ended(self, tree):
        for point in [0.0, 2.5, 9.0, 14.0, 22.0, 30.0]:
            expected = set(tree.stab(point)) | set(tree.ended_by(point))
            assert set(tree.started_by(point)) == expected


class TestMutation:
    def test_insert_invalid_interval(self):
        t = IntervalTree()
        with pytest.raises(ValueError):
            t.insert(5.0, 3.0, "x")

    def test_zero_length_interval_never_stabbed(self):
        t = IntervalTree()
        t.insert(5.0, 5.0, "x")
        assert t.stab(5.0) == []
        assert t.ended_by(5.0) == ["x"]

    def test_delete(self, tree):
        assert tree.delete(5.0, 20.0, "b")
        assert "b" not in tree.stab(7.0)
        assert len(tree) == 3
        tree.validate()

    def test_delete_missing(self, tree):
        assert not tree.delete(5.0, 20.0, "nope")
        assert not tree.delete(99.0, 100.0, "b")

    def test_delete_duplicate_keys(self):
        t = IntervalTree()
        t.insert(1.0, 2.0, "p")
        t.insert(1.0, 2.0, "q")
        assert t.delete(1.0, 2.0, "q")
        assert t.stab(1.5) == ["p"]
        t.validate()

    def test_bulk_constructor(self):
        t = IntervalTree([(0.0, 1.0, 1), (2.0, 3.0, 2)])
        assert len(t) == 2

    def test_items_sorted_by_start(self, tree):
        starts = [s for s, _, _ in tree.items()]
        assert starts == sorted(starts)


class TestBalance:
    def test_sequential_inserts_balanced(self):
        t = IntervalTree()
        for i in range(800):
            t.insert(float(i), float(i + 1), i)
        assert t.height <= 1.45 * 10 + 2  # ~log2(800) = 9.6
        t.validate()


intervals = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=100, allow_nan=False),
        st.floats(min_value=0, max_value=50, allow_nan=False),
    ),
    max_size=80,
)


class TestProperties:
    @given(intervals, st.floats(min_value=-10, max_value=160, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_stab_matches_brute_force(self, raw, point):
        tree = IntervalTree()
        spans = []
        for i, (start, width) in enumerate(raw):
            tree.insert(start, start + width, i)
            spans.append((start, start + width, i))
        tree.validate()
        expected = sorted(i for s, e, i in spans if s <= point < e)
        assert sorted(tree.stab(point)) == expected

    @given(intervals, st.floats(min_value=-10, max_value=160, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_threshold_queries_match_brute_force(self, raw, point):
        tree = IntervalTree()
        spans = []
        for i, (start, width) in enumerate(raw):
            tree.insert(start, start + width, i)
            spans.append((start, start + width, i))
        assert sorted(tree.ended_by(point)) == sorted(
            i for s, e, i in spans if e <= point
        )
        assert sorted(tree.started_by(point)) == sorted(
            i for s, e, i in spans if s <= point
        )
