"""All four index backends answer every status set identically.

The registry is the source of truth for what "all backends" means, so a
newly registered design is automatically covered.  Queried timestamps
include the timeline boundaries (0, 100) and timestamps that tie
*exactly* with RCC start/end events, where the strict/non-strict
comparisons of Equations 3-6 are easiest to get wrong.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import DEFAULT_REGISTRY

BACKENDS = DEFAULT_REGISTRY.names()

SETS = ("active_ids", "settled_ids", "created_ids", "pending_ids")


def _triples(seed: int = 11, n: int = 400):
    rng = np.random.default_rng(seed)
    starts = rng.uniform(0, 100, n).round(1)
    ends = starts + rng.gamma(2.0, 12.0, n).round(1)
    ids = rng.permutation(n).astype(np.int64)
    return starts, ends, ids


def _build_all(starts, ends, ids):
    return {
        name: DEFAULT_REGISTRY.create(name, starts, ends, ids) for name in BACKENDS
    }


def _assert_agree(indexes, t):
    reference_name = BACKENDS[0]
    for set_name in SETS:
        reference = getattr(indexes[reference_name], set_name)(t)
        assert reference.dtype == np.int64
        assert np.all(np.diff(reference) > 0)  # sorted, unique
        for name in BACKENDS[1:]:
            result = getattr(indexes[name], set_name)(t)
            assert result.dtype == np.int64, f"{name}.{set_name} dtype"
            assert np.array_equal(result, reference), (
                f"{name}.{set_name}({t}) disagrees with {reference_name}"
            )


class TestBackendAgreement:
    @pytest.fixture(scope="class")
    def indexes(self):
        return _build_all(*_triples())

    @pytest.mark.parametrize("t", [0.0, 100.0, 25.0, 50.0, 99.9, 150.0, 1e9])
    def test_fixed_timestamps(self, indexes, t):
        _assert_agree(indexes, t)

    def test_random_timestamps(self, indexes):
        rng = np.random.default_rng(23)
        for t in rng.uniform(-10, 160, 25):
            _assert_agree(indexes, float(t))

    def test_exact_start_ties(self, indexes):
        starts, _, _ = _triples()
        for t in starts[:20]:
            _assert_agree(indexes, float(t))

    def test_exact_end_ties(self, indexes):
        _, ends, _ = _triples()
        for t in ends[:20]:
            _assert_agree(indexes, float(t))

    def test_before_every_event(self, indexes):
        _assert_agree(indexes, -1.0)


class TestEdgeShapes:
    def test_empty_index(self):
        empty = np.array([], dtype=np.float64)
        indexes = _build_all(empty, empty, np.array([], dtype=np.int64))
        for t in (0.0, 50.0, 100.0):
            _assert_agree(indexes, t)

    def test_single_instant_rcc(self):
        # created and settled at the same instant: never active
        indexes = _build_all(
            np.array([50.0]), np.array([50.0]), np.array([7], dtype=np.int64)
        )
        for t in (0.0, 50.0, 100.0):
            _assert_agree(indexes, t)
        assert len(indexes[BACKENDS[0]].active_ids(50.0)) == 0
        assert np.array_equal(indexes[BACKENDS[0]].settled_ids(50.0), [7])

    def test_duplicate_timestamps(self):
        starts = np.array([10.0, 10.0, 10.0, 20.0])
        ends = np.array([20.0, 20.0, 30.0, 20.0])
        indexes = _build_all(starts, ends, np.arange(4, dtype=np.int64))
        for t in (10.0, 20.0, 30.0):
            _assert_agree(indexes, t)


@settings(max_examples=40, deadline=None)
@given(
    data=st.lists(
        st.tuples(
            st.floats(0, 100, allow_nan=False, width=32),
            st.floats(0, 60, allow_nan=False, width=32),
        ),
        min_size=1,
        max_size=60,
    ),
    t=st.floats(-5, 160, allow_nan=False, width=32),
)
def test_property_agreement(data, t):
    starts = np.array([s for s, _ in data], dtype=np.float64)
    ends = starts + np.array([d for _, d in data], dtype=np.float64)
    ids = np.arange(len(data), dtype=np.int64)
    indexes = _build_all(starts, ends, ids)
    _assert_agree(indexes, float(t))
