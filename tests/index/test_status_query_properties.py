"""Property-based tests: StatStructure vs brute force, engine invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import StatStructure


@st.composite
def event_population(draw):
    n = draw(st.integers(1, 80))
    n_groups = draw(st.integers(1, 6))
    starts = np.array(
        draw(
            st.lists(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
    )
    widths = np.array(
        draw(
            st.lists(
                st.floats(min_value=0, max_value=60, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
    )
    groups = np.array(
        draw(st.lists(st.integers(0, n_groups - 1), min_size=n, max_size=n))
    )
    amounts = np.array(
        draw(
            st.lists(
                st.floats(min_value=0.01, max_value=1e5, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
    )
    return groups, n_groups, starts, starts + widths, amounts


class TestStatStructureProperties:
    @given(event_population(), st.lists(st.floats(0, 200, allow_nan=False), min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force_at_any_times(self, population, times):
        groups, n_groups, starts, ends, amounts = population
        stat = StatStructure(groups, n_groups, starts, ends, amounts)
        for t in sorted(times):
            stat.advance(float(t))
            aggs = stat.aggregates()
            created = starts <= t
            settled = ends <= t
            expected_created = np.bincount(groups[created], minlength=n_groups)
            expected_settled = np.bincount(groups[settled], minlength=n_groups)
            np.testing.assert_array_equal(aggs["n_created"], expected_created)
            np.testing.assert_array_equal(aggs["n_settled"], expected_settled)
            np.testing.assert_allclose(
                aggs["amt_created_sum"],
                np.bincount(groups[created], weights=amounts[created], minlength=n_groups),
                atol=1e-6,
            )

    @given(event_population())
    @settings(max_examples=40, deadline=None)
    def test_one_big_jump_equals_many_small_steps(self, population):
        groups, n_groups, starts, ends, amounts = population
        jumper = StatStructure(groups, n_groups, starts, ends, amounts)
        jumper.advance(150.0)
        stepper = StatStructure(groups, n_groups, starts, ends, amounts)
        for t in np.linspace(0, 150, 31):
            stepper.advance(float(t))
        # amounts reach 1e5, so incremental-vs-jump summation order can
        # differ by ~1e-9 absolute on cancelling aggregates; match the
        # brute-force test's tolerance rather than exact associativity
        for key, value in jumper.aggregates().items():
            np.testing.assert_allclose(value, stepper.aggregates()[key], atol=1e-6)

    @given(event_population())
    @settings(max_examples=40, deadline=None)
    def test_pct_active_bounded(self, population):
        groups, n_groups, starts, ends, amounts = population
        stat = StatStructure(groups, n_groups, starts, ends, amounts)
        for t in np.linspace(0, 180, 10):
            stat.advance(float(t))
            pct = stat.aggregates()["pct_active"]
            assert (pct >= 0).all() and (pct <= 1).all()
