"""Tests for Status Query processing (Algorithm StatusQ + incremental)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SchemaError
from repro.index import StatStructure, StatusQuery, StatusQueryEngine
from repro.table import ColumnTable


@pytest.fixture()
def rcc_table(rng):
    n = 400
    starts = rng.uniform(0, 100, n).round(1)
    ends = starts + rng.gamma(2.0, 12.0, n).round(1)
    return ColumnTable(
        {
            "rcc_type": rng.choice(["G", "N", "NG"], n),
            "swlin": [
                f"{d}{m:02d}-{s:02d}-{i:03d}"
                for d, m, s, i in zip(
                    rng.integers(1, 10, n),
                    rng.integers(0, 100, n),
                    rng.integers(0, 100, n),
                    rng.integers(0, 1000, n),
                )
            ],
            "t_start": starts,
            "t_end": ends,
            "amount": rng.uniform(1e3, 1e5, n).round(2),
        }
    )


class TestStatusQuerySpec:
    def test_valid(self):
        q = StatusQuery(50.0, group_by_type=True, swlin_level=2)
        assert q.t_star == 50.0

    def test_invalid_level(self):
        with pytest.raises(ConfigurationError):
            StatusQuery(50.0, swlin_level=7)

    def test_no_swlin_grouping_allowed(self):
        StatusQuery(10.0, swlin_level=None)


class TestEngineValidation:
    def test_missing_columns(self):
        with pytest.raises(SchemaError, match="missing columns"):
            StatusQueryEngine(ColumnTable({"rcc_type": ["G"]}))

    def test_unknown_design(self, rcc_table):
        with pytest.raises(ConfigurationError, match="unknown index design"):
            StatusQueryEngine(rcc_table, design="btree")

    def test_designs_registry(self):
        assert StatusQueryEngine.designs() == (
            "naive",
            "avl",
            "interval",
            "sorted_array",
        )


class TestExecute:
    def test_group_rows_cover_all_types_and_digits(self, rcc_table):
        engine = StatusQueryEngine(rcc_table, design="avl")
        result = engine.execute(StatusQuery(50.0))
        types = set(result["rcc_type"].tolist())
        assert types <= {"G", "N", "NG"}
        assert result.n_rows <= 27

    def test_counts_sum_to_created_total(self, rcc_table):
        engine = StatusQueryEngine(rcc_table, design="avl")
        result = engine.execute(StatusQuery(60.0))
        starts = np.asarray(rcc_table["t_start"])
        assert result["n_created"].sum() == (starts <= 60.0).sum()

    def test_amounts_match_manual_computation(self, rcc_table):
        engine = StatusQueryEngine(rcc_table, design="avl")
        result = engine.execute(StatusQuery(45.0, group_by_type=True, swlin_level=None))
        starts = np.asarray(rcc_table["t_start"])
        ends = np.asarray(rcc_table["t_end"])
        amounts = np.asarray(rcc_table["amount"])
        types = np.asarray(rcc_table["rcc_type"])
        for row in result.to_rows():
            mask = (types == row["rcc_type"]) & (ends <= 45.0)
            assert row["amt_settled_sum"] == pytest.approx(amounts[mask].sum())
            mask_created = (types == row["rcc_type"]) & (starts <= 45.0)
            assert row["n_created"] == mask_created.sum()

    def test_pct_active_in_unit_range(self, rcc_table):
        engine = StatusQueryEngine(rcc_table, design="interval")
        result = engine.execute(StatusQuery(30.0))
        assert (result["pct_active"] >= 0).all()
        assert (result["pct_active"] <= 1).all()

    def test_all_designs_agree(self, rcc_table):
        results = [
            StatusQueryEngine(rcc_table, design=d).execute(StatusQuery(55.0))
            for d in ("naive", "avl", "interval")
        ]
        for other in results[1:]:
            for column in results[0].column_names:
                a, b = results[0][column], other[column]
                if a.dtype.kind == "O":
                    assert (a == b).all()
                else:
                    np.testing.assert_allclose(a.astype(float), b.astype(float))


class TestSweep:
    def test_incremental_equals_scratch(self, rcc_table):
        engine = StatusQueryEngine(rcc_table, design="avl")
        ts = [0.0, 20.0, 40.0, 60.0, 80.0, 100.0]
        incremental = engine.execute_sweep(ts, incremental=True)
        scratch = engine.execute_sweep(ts, incremental=False)
        for inc, scr in zip(incremental, scratch):
            for column in scr.column_names:
                a = inc[column]
                b = scr[column]
                if a.dtype.kind == "O":
                    assert (a == b).all()
                else:
                    np.testing.assert_allclose(
                        a.astype(float), b.astype(float), atol=1e-9
                    )

    def test_sweep_requires_ascending(self, rcc_table):
        engine = StatusQueryEngine(rcc_table, design="avl")
        with pytest.raises(ConfigurationError, match="ascending"):
            engine.execute_sweep([50.0, 10.0])

    def test_sweep_resumes_from_cache(self, rcc_table):
        engine = StatusQueryEngine(rcc_table, design="avl")
        first = engine.execute_sweep([0.0, 30.0])
        resumed = engine.execute_sweep([60.0, 90.0])  # continues incrementally
        scratch = engine.execute_sweep([60.0, 90.0], incremental=False)
        for a, b in zip(resumed, scratch):
            np.testing.assert_allclose(
                a["n_created"].astype(float), b["n_created"].astype(float)
            )
        assert first[0]["t_star"][0] == 0.0

    def test_empty_sweep(self, rcc_table):
        engine = StatusQueryEngine(rcc_table, design="avl")
        assert engine.execute_sweep([]) == []


class TestStatStructure:
    def make(self, rng, n=100, n_groups=5):
        starts = rng.uniform(0, 100, n)
        ends = starts + rng.uniform(1, 40, n)
        groups = rng.integers(0, n_groups, n)
        amounts = rng.uniform(1, 10, n)
        return StatStructure(groups, n_groups, starts, ends, amounts), starts, ends

    def test_advance_returns_delta_count(self, rng):
        stat, starts, ends = self.make(rng)
        applied = stat.advance(1000.0)
        assert applied == len(starts) * 2  # every start and end event

    def test_monotone_enforced(self, rng):
        stat, *_ = self.make(rng)
        stat.advance(50.0)
        with pytest.raises(ConfigurationError, match="forward"):
            stat.advance(10.0)

    def test_reset_rewinds(self, rng):
        stat, *_ = self.make(rng)
        stat.advance(50.0)
        stat.reset()
        assert stat.created_count.sum() == 0
        stat.advance(10.0)  # works again after reset

    def test_aggregates_keys(self, rng):
        stat, *_ = self.make(rng)
        stat.advance(30.0)
        aggs = stat.aggregates()
        assert set(aggs) >= {"n_created", "n_settled", "n_active", "pct_active"}

    def test_active_never_negative(self, rng):
        stat, *_ = self.make(rng)
        for t in np.linspace(0, 150, 16):
            stat.advance(float(t))
            assert (stat.aggregates()["n_active"] >= 0).all()

    def test_start_sums_accumulate(self, rng):
        stat, starts, ends = self.make(rng)
        stat.advance(60.0)
        assert stat.created_start_sum.sum() == pytest.approx(starts[starts <= 60.0].sum())
        assert stat.settled_start_sum.sum() == pytest.approx(starts[ends <= 60.0].sum())


class TestNaiveBaselineJoinCost:
    def test_naive_engine_with_avails_table(self, rcc_table):
        rccs = rcc_table.with_column(
            "avail_id", np.arange(rcc_table.n_rows) % 3
        )
        avails = ColumnTable({"avail_id": [0, 1, 2], "ship": ["a", "b", "c"]})
        engine = StatusQueryEngine(rccs, design="naive", avails=avails)
        result = engine.execute(StatusQuery(50.0))
        assert result.n_rows > 0
