"""Tests for the DoMD query API (Problem 1)."""

import numpy as np
import pytest

from repro.core import DomdEstimator, PipelineConfig
from repro.errors import ConfigurationError, NotFittedError
from repro.ml import GbmParams


@pytest.fixture(scope="module")
def estimator(request):
    dataset = request.getfixturevalue("small_dataset")
    splits = request.getfixturevalue("small_splits")
    config = PipelineConfig(
        window_pct=25.0,
        k=10,
        loss="pseudo_huber",
        fusion="average",
        gbm=GbmParams(n_estimators=40),
    )
    return DomdEstimator(config).fit(dataset, splits.train_ids)


class TestQuery:
    def test_returns_estimates_up_to_t_star(self, estimator, small_dataset):
        aid = int(small_dataset.avails["avail_id"][0])
        result = estimator.query([aid], t_star=60.0)[0]
        # 25% windows: boundaries 0, 25, 50 are <= 60.
        assert result.window_t_stars.tolist() == [0.0, 25.0, 50.0]
        assert len(result.window_estimates) == 3
        assert len(result.fused_estimates) == 3
        assert result.current_estimate == pytest.approx(result.fused_estimates[-1])

    def test_average_fusion_applied(self, estimator, small_dataset):
        aid = int(small_dataset.avails["avail_id"][0])
        result = estimator.query([aid], t_star=100.0)[0]
        np.testing.assert_allclose(
            result.fused_estimates,
            np.cumsum(result.window_estimates) / np.arange(1, 6),
        )

    def test_query_by_physical_day(self, estimator, small_dataset):
        avail = small_dataset.avail(0)
        mid = avail.act_start + avail.planned_duration // 2
        by_day = estimator.query([0], physical_day=mid)[0]
        assert 40.0 <= by_day.t_star <= 60.0

    def test_query_multiple_avails(self, estimator, small_dataset):
        ids = [int(a) for a in small_dataset.avails["avail_id"][:3]]
        results = estimator.query(ids, t_star=50.0)
        assert [r.avail_id for r in results] == ids

    def test_ongoing_avail_queryable(self, estimator, small_dataset):
        ongoing = small_dataset.avails.filter(
            small_dataset.avails["status"] == "ongoing"
        )
        aid = int(ongoing["avail_id"][0])
        result = estimator.query([aid], t_star=30.0)[0]
        assert np.isfinite(result.current_estimate)

    def test_t_star_beyond_100_clamps(self, estimator):
        result = estimator.query([0], t_star=250.0)[0]
        assert result.window_t_stars[-1] == 100.0

    def test_requires_exactly_one_time(self, estimator):
        with pytest.raises(ConfigurationError):
            estimator.query([0])
        with pytest.raises(ConfigurationError):
            estimator.query([0], t_star=10.0, physical_day=100.0)

    def test_negative_logical_time_rejected(self, estimator, small_dataset):
        avail = small_dataset.avail(0)
        with pytest.raises(ConfigurationError, match="before its actual start"):
            estimator.query([0], physical_day=avail.act_start - 100)

    def test_as_dict(self, estimator):
        result = estimator.query([0], t_star=25.0)[0]
        payload = result.as_dict()
        assert payload["avail_id"] == 0
        assert payload["windows"] == [0.0, 25.0]


class TestExplain:
    def test_top_k_contributions(self, estimator):
        contributions = estimator.explain(0, 50.0, top=5)
        assert len(contributions) == 5
        magnitudes = [abs(c.contribution) for c in contributions]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_names_come_from_design(self, estimator):
        contributions = estimator.explain(0, 50.0, top=3)
        for item in contributions:
            assert isinstance(item.name, str) and item.name

    def test_invalid_top(self, estimator):
        with pytest.raises(ConfigurationError):
            estimator.explain(0, 50.0, top=0)


class TestEvaluateAndFit:
    def test_evaluate_on_test_ids(self, estimator, small_splits):
        out = estimator.evaluate(small_splits.test_ids)
        assert "average" in out
        assert out["average"]["mae_100"] > 0

    def test_evaluate_rejects_ongoing(self, estimator, small_dataset):
        ongoing = small_dataset.avails.filter(
            small_dataset.avails["status"] == "ongoing"
        )
        with pytest.raises(ConfigurationError):
            estimator.evaluate(np.asarray(ongoing["avail_id"]))

    def test_not_fitted(self):
        fresh = DomdEstimator(PipelineConfig())
        with pytest.raises(NotFittedError):
            fresh.query([0], t_star=10.0)

    def test_fit_rejects_ongoing_train_ids(self, small_dataset):
        ongoing_id = int(
            small_dataset.avails.filter(small_dataset.avails["status"] == "ongoing")[
                "avail_id"
            ][0]
        )
        fresh = DomdEstimator(
            PipelineConfig(window_pct=50.0, gbm=GbmParams(n_estimators=5))
        )
        with pytest.raises(ConfigurationError, match="ongoing"):
            fresh.fit(small_dataset, np.array([ongoing_id]))

    def test_default_trains_on_all_closed(self, small_dataset):
        config = PipelineConfig(window_pct=50.0, k=5, gbm=GbmParams(n_estimators=10))
        estimator = DomdEstimator(config).fit(small_dataset)
        result = estimator.query([0], t_star=50.0)
        assert len(result) == 1
