"""Unit tests for the :class:`ServicePool` serving runtime.

Covers the pool contract in isolation: backpressure on a bounded
queue, cooperative deadlines (both expired-in-queue and cancelled
mid-execution), graceful drain and abortive shutdown, per-worker RNG
determinism, saturation in ``health`` and the ``repro_pool_*`` gauges.
The differential stress suite lives in
``tests/integration/test_concurrent_service.py``.
"""

from __future__ import annotations

import time

import pytest

from repro.core import DomdEstimator, PipelineConfig
from repro.core.server import PoolFuture, ServicePool
from repro.core.service import DomdService, error_envelope
from repro.errors import ConfigurationError, DeadlineExceeded
from repro.ml import GbmParams
from repro.runtime import check_deadline, current_rng, worker_rng_streams


@pytest.fixture(scope="module")
def fitted(request):
    dataset = request.getfixturevalue("small_dataset")
    splits = request.getfixturevalue("small_splits")
    config = PipelineConfig(
        window_pct=25.0, k=8, fusion="average", gbm=GbmParams(n_estimators=20)
    )
    return DomdEstimator(config).fit(dataset, splits.train_ids)


@pytest.fixture()
def service(fitted):
    return DomdService(fitted)


class InstrumentedService(DomdService):
    """DomdService plus two synthetic request types for pool tests.

    ``sleep`` holds a worker for ``steps`` x 10 ms with a deadline
    checkpoint between steps; ``draw`` returns one draw from the
    ambient per-worker RNG stream.
    """

    def handle(self, request, parent=None):
        if isinstance(request, dict) and request.get("type") == "sleep":
            try:
                for _ in range(int(request.get("steps", 5))):
                    time.sleep(0.01)
                    check_deadline("sleep.step")
            except DeadlineExceeded as exc:
                return error_envelope("deadline_exceeded", str(exc))
            return {"ok": True, "result": "slept"}
        if isinstance(request, dict) and request.get("type") == "draw":
            rng = current_rng()
            assert rng is not None, "pool must install the ambient worker stream"
            return {"ok": True, "result": float(rng.random())}
        return super().handle(request, parent=parent)


@pytest.fixture()
def slow_service(fitted):
    return InstrumentedService(fitted)


class TestBasicServing:
    def test_pooled_responses_match_request_types(self, service):
        with ServicePool(service, workers=2, queue_depth=8) as pool:
            futures = [
                pool.submit({"type": "domd_query", "avail_ids": [0], "t_star": 60.0}),
                pool.submit({"type": "health"}),
                pool.submit({"type": "unknown"}),
            ]
            responses = [f.result(timeout=30) for f in futures]
        assert responses[0]["ok"]
        assert responses[1]["ok"]
        assert responses[2]["error"]["code"] == "unknown_type"

    def test_pool_registers_and_unregisters_on_service(self, service):
        pool = ServicePool(service, workers=1)
        assert service.pool is pool
        pool.close()
        assert service.pool is None

    @pytest.mark.parametrize(
        "kwargs",
        [{"workers": 0}, {"queue_depth": 0}, {"deadline_ms": 0}, {"deadline_ms": -5}],
    )
    def test_invalid_configuration_rejected(self, service, kwargs):
        with pytest.raises(ConfigurationError):
            ServicePool(service, **kwargs)


class TestBackpressure:
    def test_full_queue_rejects_with_overloaded_envelope(self, slow_service):
        pool = ServicePool(slow_service, workers=1, queue_depth=2)
        try:
            # one request occupies the worker, two fill the queue ...
            held = [
                pool.submit({"type": "sleep", "steps": 30}, block=True)
                for _ in range(3)
            ]
            deadline = time.monotonic() + 5.0
            while not pool.status()["saturated"]:
                assert time.monotonic() < deadline, "queue never saturated"
                time.sleep(0.005)
            # ... so the next non-blocking submit bounces immediately.
            rejected = pool.submit({"type": "health"})
            assert rejected.done()
            response = rejected.result()
            assert not response["ok"]
            assert response["error"]["code"] == "overloaded"
            assert response["error"]["retryable"] is True
            assert pool.status()["rejected"] == 1
            for future in held:
                assert future.result(timeout=30)["ok"]
        finally:
            pool.close()

    def test_saturated_pool_degrades_health(self, slow_service):
        pool = ServicePool(slow_service, workers=1, queue_depth=1)
        try:
            pool.submit({"type": "sleep", "steps": 30})
            deadline = time.monotonic() + 5.0
            while not pool.status()["saturated"]:
                pool.submit({"type": "sleep", "steps": 1})
                assert time.monotonic() < deadline, "queue never saturated"
            health = slow_service.handle({"type": "health"})["result"]
            assert health["status"] == "saturated"
            assert health["pool"]["saturated"] is True
        finally:
            pool.close()

    def test_health_reports_pool_block_when_idle(self, service):
        with ServicePool(service, workers=2, queue_depth=4) as pool:
            response = pool.submit({"type": "health"}).result(timeout=30)
        pool_block = response["result"]["pool"]
        assert pool_block["workers"] == 2
        assert pool_block["queue_capacity"] == 4
        assert pool_block["saturated"] is False
        assert response["result"]["status"] == "ok"


class TestDeadlines:
    def test_request_cancelled_mid_execution_within_budget(self, slow_service):
        with ServicePool(slow_service, workers=1) as pool:
            t0 = time.monotonic()
            future = pool.submit({"type": "sleep", "steps": 500}, deadline_ms=50)
            response = future.result(timeout=30)
            elapsed = time.monotonic() - t0
        assert response["error"]["code"] == "deadline_exceeded"
        assert response["error"]["retryable"] is True
        # 5 s of work cancelled at the ~50 ms deadline plus one 10 ms
        # checkpoint interval (wide margin for slow CI machines).
        assert elapsed < 2.0
        assert pool.status()["deadline_exceeded"] == 1

    def test_expired_while_queued_is_answered_without_executing(self, slow_service):
        pool = ServicePool(slow_service, workers=1, queue_depth=4)
        try:
            blocker = pool.submit({"type": "sleep", "steps": 20})
            doomed = pool.submit(
                {"type": "domd_query", "avail_ids": [0], "t_star": 60.0},
                deadline_ms=1,
            )
            response = doomed.result(timeout=30)
            assert response["error"]["code"] == "deadline_exceeded"
            assert "queued" in response["error"]["message"]
            assert blocker.result(timeout=30)["ok"]
        finally:
            pool.close()

    def test_deadline_clears_between_requests(self, slow_service):
        """A tiny deadline on one request must not poison the next."""
        with ServicePool(slow_service, workers=1) as pool:
            first = pool.submit({"type": "sleep", "steps": 5}, deadline_ms=1)
            second = pool.submit({"type": "sleep", "steps": 1})
            assert first.result(timeout=30)["error"]["code"] == "deadline_exceeded"
            assert second.result(timeout=30)["ok"]

    def test_real_query_deadline_returns_structured_envelope(self, service):
        with ServicePool(service, workers=1, deadline_ms=0.01) as pool:
            response = pool.submit(
                {"type": "domd_query", "avail_ids": list(range(20)), "t_star": 60.0}
            ).result(timeout=30)
        assert not response["ok"]
        assert response["error"]["code"] == "deadline_exceeded"
        assert set(response["error"]) == {"code", "message", "retryable"}


class TestErrorTraceCorrelation:
    def test_rejection_envelope_trace_id_matches_an_error_event(self, fitted):
        from repro.runtime import ExecutionContext

        # fresh context: the module-scoped fixtures share the estimator's
        # hub, whose ambient thread trace would collect other tests' events
        slow_service = InstrumentedService(fitted, context=ExecutionContext(seed=0))
        pool = ServicePool(slow_service, workers=1, queue_depth=2)
        try:
            held = [
                pool.submit({"type": "sleep", "steps": 30}, block=True)
                for _ in range(3)
            ]
            deadline = time.monotonic() + 5.0
            while not pool.status()["saturated"]:
                assert time.monotonic() < deadline, "queue never saturated"
                time.sleep(0.005)
            response = pool.submit({"type": "health"}).result()
            assert response["error"]["code"] == "overloaded"
            trace_id = response["trace_id"]
            matching = [
                e
                for e in slow_service.context.telemetry.events()
                if e["kind"] == "error"
                and e["trace_id"] == trace_id
                and e["code"] == "overloaded"
            ]
            assert len(matching) == 1
            for future in held:
                assert future.result(timeout=30)["ok"]
        finally:
            pool.close()

    def test_queued_expiry_envelope_carries_a_trace_id(self, slow_service):
        pool = ServicePool(slow_service, workers=1, queue_depth=4)
        try:
            blocker = pool.submit({"type": "sleep", "steps": 20})
            doomed = pool.submit(
                {"type": "domd_query", "avail_ids": [0], "t_star": 60.0},
                deadline_ms=1,
            )
            response = doomed.result(timeout=30)
            assert response["error"]["code"] == "deadline_exceeded"
            assert response["trace_id"].startswith("T")
            assert blocker.result(timeout=30)["ok"]
        finally:
            pool.close()

    def test_mid_execution_deadline_envelope_carries_a_trace_id(self, service):
        with ServicePool(service, workers=1, deadline_ms=0.01) as pool:
            response = pool.submit(
                {"type": "domd_query", "avail_ids": list(range(20)), "t_star": 60.0}
            ).result(timeout=30)
        assert response["error"]["code"] == "deadline_exceeded"
        assert response["trace_id"].startswith("T")


class TestShutdown:
    def test_close_drains_queued_work(self, slow_service):
        pool = ServicePool(slow_service, workers=2, queue_depth=16)
        futures = [pool.submit({"type": "sleep", "steps": 1}) for _ in range(8)]
        pool.close(drain=True)
        assert all(f.result(timeout=1)["ok"] for f in futures)
        assert pool.status()["completed"] == 8

    def test_abortive_close_answers_queued_requests(self, slow_service):
        pool = ServicePool(slow_service, workers=1, queue_depth=16)
        blocker = pool.submit({"type": "sleep", "steps": 30})
        deadline = time.monotonic() + 5.0
        while pool.status()["in_flight"] < 1:  # blocker picked up by the worker
            assert time.monotonic() < deadline, "worker never started"
            time.sleep(0.005)
        queued = [pool.submit({"type": "sleep", "steps": 1}) for _ in range(4)]
        pool.close(drain=False)
        assert blocker.result(timeout=30)["ok"]  # in-flight work finishes
        for future in queued:
            response = future.result(timeout=1)
            assert response["error"]["code"] == "overloaded"

    def test_submit_after_close_is_overloaded(self, service):
        pool = ServicePool(service, workers=1)
        pool.close()
        response = pool.submit({"type": "health"}).result(timeout=1)
        assert response["error"]["code"] == "overloaded"
        assert "shut down" in response["error"]["message"]

    def test_close_is_idempotent(self, service):
        pool = ServicePool(service, workers=2)
        pool.close()
        pool.close()


class TestDeterminism:
    def test_single_worker_draws_follow_the_seeded_stream(self, fitted):
        service = InstrumentedService(fitted)
        with ServicePool(service, workers=1, seed=123) as pool:
            draws = [
                pool.submit({"type": "draw"}).result(timeout=30)["result"]
                for _ in range(5)
            ]
        expected = worker_rng_streams(123, 1)[0].random(5)
        assert draws == pytest.approx(list(expected))

    def test_pool_exposes_per_worker_streams(self, service):
        with ServicePool(service, workers=3, seed=7) as pool:
            pool_first = [s.random() for s in pool.rng_streams]
        expected = [s.random() for s in worker_rng_streams(7, 3)]
        assert pool_first == pytest.approx(expected)


class TestGauges:
    def test_status_counts_accepted_and_completed(self, service):
        with ServicePool(service, workers=2, queue_depth=8) as pool:
            futures = [pool.submit({"type": "health"}) for _ in range(5)]
            for future in futures:
                future.result(timeout=30)
            deadline = time.monotonic() + 5.0
            while pool.status()["completed"] < 5:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            status = pool.status()
        assert status["accepted"] == 5
        assert status["completed"] == 5
        assert status["rejected"] == 0
        assert status["in_flight"] == 0

    def test_prometheus_exposition_gains_pool_gauges(self, service):
        with ServicePool(service, workers=2, queue_depth=8) as pool:
            response = pool.submit(
                {"type": "metrics", "format": "prometheus"}
            ).result(timeout=30)
        text = response["result"]["exposition"]
        assert "repro_pool_workers 2" in text
        assert "repro_pool_queue_capacity 8" in text
        assert "repro_pool_rejected 0" in text

    def test_json_snapshot_gains_pool_block(self, service):
        with ServicePool(service, workers=2, queue_depth=8) as pool:
            response = pool.submit({"type": "metrics"}).result(timeout=30)
        assert response["result"]["pool"]["workers"] == 2

    def test_unpooled_expositions_have_no_pool_block(self, service):
        response = service.handle({"type": "metrics"})
        assert "pool" not in response["result"]
        health = service.handle({"type": "health"})
        assert "pool" not in health["result"]


class TestPoolFuture:
    def test_result_timeout(self):
        future = PoolFuture()
        with pytest.raises(TimeoutError):
            future.result(timeout=0.01)

    def test_resolved_future_is_done(self):
        future = PoolFuture.resolved({"ok": True})
        assert future.done()
        assert future.result() == {"ok": True}
