"""Estimator behaviour under the extended fusion methods and odd windows."""

import numpy as np
import pytest

from repro.core import DomdEstimator, PipelineConfig
from repro.ml import GbmParams


def fast_config(**overrides):
    defaults = dict(window_pct=25.0, k=8, gbm=GbmParams(n_estimators=15))
    defaults.update(overrides)
    return PipelineConfig(**defaults)


@pytest.mark.parametrize("fusion", ["median", "ewma"])
def test_extended_fusion_through_estimator(small_dataset, small_splits, fusion):
    estimator = DomdEstimator(fast_config(fusion=fusion)).fit(
        small_dataset, small_splits.train_ids
    )
    result = estimator.query([0], t_star=100.0)[0]
    assert np.isfinite(result.fused_estimates).all()
    # Fused estimates aggregate raw windows: stay within their hull.
    assert result.fused_estimates.min() >= result.window_estimates.min() - 1e-9
    assert result.fused_estimates.max() <= result.window_estimates.max() + 1e-9


def test_non_divisor_window_width(small_dataset, small_splits):
    """x = 30% -> ceil(100/30) = 4 windows plus t*=0 boundary."""
    estimator = DomdEstimator(fast_config(window_pct=30.0)).fit(
        small_dataset, small_splits.train_ids
    )
    assert estimator.timeline.n_models == 5
    result = estimator.query([0], t_star=100.0)[0]
    assert len(result.window_estimates) == 5


def test_query_at_exact_zero(small_dataset, small_splits):
    estimator = DomdEstimator(fast_config()).fit(small_dataset, small_splits.train_ids)
    result = estimator.query([0], t_star=0.0)[0]
    assert len(result.window_estimates) == 1
    assert result.window_t_stars.tolist() == [0.0]
