"""Runtime behaviour of the service layer: timings envelope, batched
fleet_status queries, and structured input validation."""

import json
import math

import numpy as np
import pytest

from repro.core import DomdEstimator, PipelineConfig
from repro.core.service import DomdService
from repro.data.dates import day_to_iso
from repro.ml import GbmParams
from repro.runtime import ExecutionContext


@pytest.fixture(scope="module")
def fitted(request):
    dataset = request.getfixturevalue("small_dataset")
    splits = request.getfixturevalue("small_splits")
    config = PipelineConfig(
        window_pct=25.0, k=8, fusion="average", gbm=GbmParams(n_estimators=20)
    )
    estimator = DomdEstimator(config).fit(dataset, splits.train_ids)
    return estimator


@pytest.fixture()
def service(fitted):
    # shares the estimator's context; per-request counters come from the
    # capture delta, so accumulation across tests is fine
    return DomdService(fitted)


def _busiest_day(dataset) -> int:
    """The act_start date with the most concurrently executing avails."""
    starts = np.asarray(dataset.avails["act_start"], dtype=np.int64)
    planned = np.asarray(dataset.avails["planned_duration"], dtype=np.int64)
    counts = [int(np.sum((d >= starts) & (d <= starts + planned))) for d in starts]
    return int(starts[int(np.argmax(counts))])


class TestTimingsEnvelope:
    def test_timings_absent_by_default(self, service):
        response = service.handle(
            {"type": "domd_query", "avail_ids": [0], "t_star": 60.0}
        )
        assert response["ok"]
        assert "timings" not in response

    def test_timings_envelope_shape(self, service):
        response = service.handle(
            {"type": "domd_query", "avail_ids": [0], "t_star": 60.0, "timings": True}
        )
        assert response["ok"]
        timings = response["timings"]
        json.dumps(timings)  # serialisable
        spans = {s["name"] for s in timings["spans"]}
        assert spans == {"request.domd_query"}
        assert timings["counters"]["estimator.queries"] == 1
        assert timings["counters"]["estimator.queried_avails"] == 1

    def test_timings_are_per_request_deltas(self, service):
        for _ in range(3):
            response = service.handle(
                {"type": "domd_query", "avail_ids": [0], "t_star": 60.0, "timings": True}
            )
        # third response still reports exactly one query, not three
        assert response["timings"]["counters"]["estimator.queries"] == 1
        assert response["timings"]["spans"][0]["count"] == 1

    def test_service_defaults_to_estimator_context(self, fitted):
        service = DomdService(fitted)
        assert service.context is fitted.context

    def test_explicit_context_receives_request_spans(self, fitted):
        context = ExecutionContext()
        service = DomdService(fitted, context=context)
        response = service.handle({"type": "explain", "avail_id": 0, "t_star": 50.0})
        assert response["ok"]
        assert "request.explain" in context.report().span_names()


class TestFleetStatusBatching:
    def test_queries_bounded_by_window_count(self, service, small_dataset):
        day = _busiest_day(small_dataset)
        response = service.handle(
            {"type": "fleet_status", "date": day_to_iso(day), "timings": True}
        )
        assert response["ok"]
        rows = response["result"]
        counters = response["timings"]["counters"]
        n_windows = service._estimator.timeline.n_models
        assert len(rows) > n_windows, "need more executing avails than windows"
        # one estimator query per populated window, NOT one per avail
        assert counters["estimator.queries"] <= n_windows
        assert counters["estimator.queries"] == counters["service.fleet_status.batches"]
        assert counters["estimator.queried_avails"] == len(rows)

    def test_batched_results_match_per_avail_queries(self, service, small_dataset):
        day = int(np.percentile(small_dataset.avails["act_start"], 70))
        response = service.handle({"type": "fleet_status", "date": day_to_iso(day)})
        assert response["ok"]
        avails = small_dataset.avails
        avail_ids = np.asarray(avails["avail_id"])
        for row in response["result"]:
            idx = int(np.flatnonzero(avail_ids == row["avail_id"])[0])
            exact_t = (
                (day - float(avails["act_start"][idx]))
                / float(avails["planned_duration"][idx])
                * 100.0
            )
            single = service._estimator.query([row["avail_id"]], t_star=exact_t)[0]
            assert row["estimated_delay_days"] == pytest.approx(
                single.current_estimate
            )

    def test_output_sorted_by_delay_descending(self, service, small_dataset):
        day = int(np.percentile(small_dataset.avails["act_start"], 70))
        response = service.handle({"type": "fleet_status", "date": day_to_iso(day)})
        delays = [r["estimated_delay_days"] for r in response["result"]]
        assert delays == sorted(delays, reverse=True)


class TestInputValidation:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_t_star_rejected(self, service, bad):
        response = service.handle(
            {"type": "domd_query", "avail_ids": [0], "t_star": bad}
        )
        assert not response["ok"]
        assert response["error"]["code"] == "bad_request"
        assert "finite" in response["error"]["message"]

    @pytest.mark.parametrize("bad", ["60", True, [60.0], {"v": 1}])
    def test_non_numeric_t_star_rejected(self, service, bad):
        response = service.handle(
            {"type": "domd_query", "avail_ids": [0], "t_star": bad}
        )
        assert not response["ok"]
        assert response["error"]["code"] == "bad_request"
        assert "must be a number" in response["error"]["message"]

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), "60", [60.0]])
    def test_explain_t_star_validated_like_query(self, service, bad):
        response = service.handle(
            {"type": "explain", "avail_id": 0, "t_star": bad}
        )
        assert not response["ok"]
        assert response["error"]["code"] == "bad_request"
        assert "'t_star'" in response["error"]["message"]

    @pytest.mark.parametrize(
        "bad_date", ["not-a-date", "2024-13-45", "04/12/2024", "", 20240412]
    )
    def test_malformed_dates_rejected_cleanly(self, service, bad_date):
        for request_type in ("domd_query", "fleet_status"):
            request = {"type": request_type, "avail_ids": [0], "date": bad_date}
            response = service.handle(request)
            assert not response["ok"]
            assert response["error"]["code"] == "bad_request"
            message = response["error"]["message"]
            # structured message, no internals leaking
            assert "numpy" not in message.lower()
            assert "Traceback" not in message

    def test_valid_float_t_star_still_accepted(self, service):
        response = service.handle(
            {"type": "domd_query", "avail_ids": [0], "t_star": 60}
        )
        assert response["ok"]
        assert math.isfinite(response["result"][0]["current"])

    def test_error_responses_skip_timings(self, service):
        response = service.handle(
            {"type": "domd_query", "avail_ids": [0], "t_star": float("nan"), "timings": True}
        )
        assert not response["ok"]
        assert "timings" not in response


class TestExplainPlanEnvelope:
    def test_plan_absent_by_default(self, service):
        response = service.handle(
            {"type": "domd_query", "avail_ids": [0], "t_star": 60.0}
        )
        assert response["ok"]
        assert "plan" not in response

    def test_explain_true_attaches_plan(self, service):
        response = service.handle(
            {"type": "domd_query", "avail_ids": [0], "t_star": 60.0, "explain": True}
        )
        assert response["ok"]
        plan = response["plan"]
        json.dumps(plan)  # serialisable as-is
        ops = {row["op"] for row in plan["operators"]}
        assert "request.domd_query" in ops
        # nested spans flatten to /-joined operator paths
        assert any(op.startswith("request.domd_query/") for op in ops)
        assert plan["counters"]["estimator.queries"] == 1
        assert plan["total_seconds"] > 0

    def test_explain_composes_with_timings(self, service):
        response = service.handle(
            {
                "type": "domd_query",
                "avail_ids": [0],
                "t_star": 60.0,
                "explain": True,
                "timings": True,
            }
        )
        assert response["ok"]
        assert "plan" in response and "timings" in response
        # both envelopes describe the same capture modulo rounding
        span_seconds = sum(s["seconds"] for s in response["timings"]["spans"])
        assert response["plan"]["total_seconds"] == pytest.approx(
            span_seconds, rel=1e-3
        )

    def test_plan_is_per_request_delta(self, service):
        for _ in range(2):
            response = service.handle(
                {"type": "health", "explain": True}
            )
        ops = {row["op"]: row for row in response["plan"]["operators"]}
        assert ops["request.health"]["calls"] == 1
