"""Tests for the SMDII JSON service layer."""

import json

import numpy as np
import pytest

from repro.core import DomdEstimator, PipelineConfig
from repro.core.service import ERROR_CODES, RETRYABLE_CODES, DomdService, error_envelope
from repro.data.dates import day_to_iso
from repro.errors import ReproError
from repro.ml import GbmParams


@pytest.fixture(scope="module")
def service(request):
    dataset = request.getfixturevalue("small_dataset")
    splits = request.getfixturevalue("small_splits")
    config = PipelineConfig(window_pct=25.0, k=8, fusion="average", gbm=GbmParams(n_estimators=20))
    estimator = DomdEstimator(config).fit(dataset, splits.train_ids)
    return DomdService(estimator)


class TestQuery:
    def test_happy_path(self, service):
        response = service.handle(
            {"type": "domd_query", "avail_ids": [0, 1], "t_star": 60.0}
        )
        assert response["ok"]
        assert len(response["result"]) == 2
        assert response["result"][0]["windows"] == [0.0, 25.0, 50.0]
        json.dumps(response)  # fully serialisable

    def test_query_by_date(self, service, small_dataset):
        avail = small_dataset.avail(0)
        mid = avail.act_start + avail.planned_duration // 2
        response = service.handle(
            {"type": "domd_query", "avail_ids": [0], "date": day_to_iso(mid)}
        )
        assert response["ok"]

    def test_both_times_rejected(self, service):
        response = service.handle(
            {"type": "domd_query", "avail_ids": [0], "t_star": 1.0, "date": "2020-01-01"}
        )
        assert not response["ok"]
        assert response["error"]["code"] == "bad_request"

    def test_unknown_avail_is_domain_error(self, service):
        response = service.handle(
            {"type": "domd_query", "avail_ids": [424242], "t_star": 10.0}
        )
        assert not response["ok"]
        assert response["error"]["code"] == "domain_error"


class TestExplain:
    def test_contributions_shape(self, service):
        response = service.handle({"type": "explain", "avail_id": 0, "t_star": 50.0})
        assert response["ok"]
        contributions = response["result"]["contributions"]
        assert len(contributions) == 5
        assert {"feature", "days", "value"} <= set(contributions[0])

    def test_top_parameter(self, service):
        response = service.handle(
            {"type": "explain", "avail_id": 0, "t_star": 50.0, "top": 3}
        )
        assert len(response["result"]["contributions"]) == 3


class TestFleetStatus:
    def test_lists_executing_avails(self, service, small_dataset):
        day = int(np.percentile(small_dataset.avails["act_start"], 70))
        response = service.handle({"type": "fleet_status", "date": day_to_iso(day)})
        assert response["ok"]
        rows = response["result"]
        assert rows, "some avails should be executing"
        delays = [r["estimated_delay_days"] for r in rows]
        assert delays == sorted(delays, reverse=True)

    def test_missing_date(self, service):
        response = service.handle({"type": "fleet_status"})
        assert not response["ok"]


class TestMetricsAndEnvelope:
    def test_metrics(self, service, small_splits):
        response = service.handle(
            {"type": "metrics", "avail_ids": [int(a) for a in small_splits.test_ids]}
        )
        assert response["ok"]
        assert "average" in response["result"]

    def test_unknown_type(self, service):
        response = service.handle({"type": "teleport"})
        assert not response["ok"]
        assert response["error"]["code"] == "unknown_type"

    def test_non_dict_request(self, service):
        response = service.handle("not a dict")
        assert not response["ok"]

    def test_missing_field(self, service):
        response = service.handle({"type": "domd_query", "t_star": 5.0})
        assert not response["ok"]
        assert response["error"]["code"] == "bad_request"

    def test_requires_fitted_estimator(self):
        with pytest.raises(ReproError):
            DomdService(DomdEstimator(PipelineConfig()))


class TestErrorEnvelopeSchema:
    """Pin the structured error envelope: every failure path must produce
    exactly ``{"ok": False, "error": {"code", "message", "retryable"}}``
    with a code from the published enumeration and no raw exception text
    for internal faults."""

    FAILING_REQUESTS = [
        "not a dict",  # bad_request
        {"type": "teleport"},  # unknown_type
        {"type": "domd_query", "t_star": 5.0},  # bad_request (missing field)
        {"type": "domd_query", "avail_ids": [424242], "t_star": 10.0},  # domain_error
        {"type": "domd_query", "avail_ids": [0], "t_star": 1.0, "date": "2020-01-01"},
        {"type": "fleet_status"},  # bad_request (missing date)
        {"type": "fleet_status", "date": "never"},  # unparseable date
        {"type": "explain", "avail_id": 0},  # missing t_star/date
    ]

    def test_published_code_enumeration_is_stable(self):
        assert ERROR_CODES == (
            "bad_request",
            "bad_json",
            "unknown_type",
            "not_found",
            "domain_error",
            "deadline_exceeded",
            "overloaded",
            "internal",
        )
        assert RETRYABLE_CODES == {"overloaded", "deadline_exceeded"}

    @pytest.mark.parametrize("request_body", FAILING_REQUESTS)
    def test_every_failure_path_matches_the_schema(self, service, request_body):
        response = service.handle(request_body)
        assert set(response) == {"ok", "error"}
        assert response["ok"] is False
        error = response["error"]
        assert set(error) == {"code", "message", "retryable"}
        assert error["code"] in ERROR_CODES
        assert isinstance(error["message"], str) and error["message"]
        assert error["retryable"] is (error["code"] in RETRYABLE_CODES)
        json.dumps(response)  # fully serialisable

    def test_error_envelope_helper_rejects_unknown_codes(self):
        with pytest.raises(AssertionError):
            error_envelope("made_up_code", "nope")

    def test_internal_errors_hide_exception_text(self, service, monkeypatch):
        def explode(*_args, **_kwargs):
            raise RuntimeError("secret traceback detail")

        monkeypatch.setattr(service._estimator, "query", explode)
        response = service.handle(
            {"type": "domd_query", "avail_ids": [0], "t_star": 60.0}
        )
        assert response["error"]["code"] == "internal"
        assert "secret traceback detail" not in response["error"]["message"]
        assert "RuntimeError" in response["error"]["message"]
