"""Tests for the SMDII JSON service layer."""

import json

import numpy as np
import pytest

from repro.core import DomdEstimator, PipelineConfig
from repro.core.service import ERROR_CODES, RETRYABLE_CODES, DomdService, error_envelope
from repro.data.dates import day_to_iso
from repro.errors import ReproError
from repro.ml import GbmParams


@pytest.fixture(scope="module")
def service(request):
    dataset = request.getfixturevalue("small_dataset")
    splits = request.getfixturevalue("small_splits")
    config = PipelineConfig(window_pct=25.0, k=8, fusion="average", gbm=GbmParams(n_estimators=20))
    estimator = DomdEstimator(config).fit(dataset, splits.train_ids)
    return DomdService(estimator)


class TestQuery:
    def test_happy_path(self, service):
        response = service.handle(
            {"type": "domd_query", "avail_ids": [0, 1], "t_star": 60.0}
        )
        assert response["ok"]
        assert len(response["result"]) == 2
        assert response["result"][0]["windows"] == [0.0, 25.0, 50.0]
        json.dumps(response)  # fully serialisable

    def test_query_by_date(self, service, small_dataset):
        avail = small_dataset.avail(0)
        mid = avail.act_start + avail.planned_duration // 2
        response = service.handle(
            {"type": "domd_query", "avail_ids": [0], "date": day_to_iso(mid)}
        )
        assert response["ok"]

    def test_both_times_rejected(self, service):
        response = service.handle(
            {"type": "domd_query", "avail_ids": [0], "t_star": 1.0, "date": "2020-01-01"}
        )
        assert not response["ok"]
        assert response["error"]["code"] == "bad_request"

    def test_unknown_avail_is_domain_error(self, service):
        response = service.handle(
            {"type": "domd_query", "avail_ids": [424242], "t_star": 10.0}
        )
        assert not response["ok"]
        assert response["error"]["code"] == "domain_error"


class TestExplain:
    def test_contributions_shape(self, service):
        response = service.handle({"type": "explain", "avail_id": 0, "t_star": 50.0})
        assert response["ok"]
        contributions = response["result"]["contributions"]
        assert len(contributions) == 5
        assert {"feature", "days", "value"} <= set(contributions[0])

    def test_top_parameter(self, service):
        response = service.handle(
            {"type": "explain", "avail_id": 0, "t_star": 50.0, "top": 3}
        )
        assert len(response["result"]["contributions"]) == 3


class TestFleetStatus:
    def test_lists_executing_avails(self, service, small_dataset):
        day = int(np.percentile(small_dataset.avails["act_start"], 70))
        response = service.handle({"type": "fleet_status", "date": day_to_iso(day)})
        assert response["ok"]
        rows = response["result"]
        assert rows, "some avails should be executing"
        delays = [r["estimated_delay_days"] for r in rows]
        assert delays == sorted(delays, reverse=True)

    def test_missing_date(self, service):
        response = service.handle({"type": "fleet_status"})
        assert not response["ok"]


class TestMetricsAndEnvelope:
    def test_metrics(self, service, small_splits):
        response = service.handle(
            {"type": "metrics", "avail_ids": [int(a) for a in small_splits.test_ids]}
        )
        assert response["ok"]
        assert "average" in response["result"]

    def test_unknown_type(self, service):
        response = service.handle({"type": "teleport"})
        assert not response["ok"]
        assert response["error"]["code"] == "unknown_type"

    def test_non_dict_request(self, service):
        response = service.handle("not a dict")
        assert not response["ok"]

    def test_missing_field(self, service):
        response = service.handle({"type": "domd_query", "t_star": 5.0})
        assert not response["ok"]
        assert response["error"]["code"] == "bad_request"

    def test_requires_fitted_estimator(self):
        with pytest.raises(ReproError):
            DomdService(DomdEstimator(PipelineConfig()))


class TestErrorEnvelopeSchema:
    """Pin the structured error envelope: every failure path must produce
    exactly ``{"ok": False, "error": {"code", "message", "retryable"}}``
    with a code from the published enumeration and no raw exception text
    for internal faults."""

    FAILING_REQUESTS = [
        "not a dict",  # bad_request
        {"type": "teleport"},  # unknown_type
        {"type": "domd_query", "t_star": 5.0},  # bad_request (missing field)
        {"type": "domd_query", "avail_ids": [424242], "t_star": 10.0},  # domain_error
        {"type": "domd_query", "avail_ids": [0], "t_star": 1.0, "date": "2020-01-01"},
        {"type": "fleet_status"},  # bad_request (missing date)
        {"type": "fleet_status", "date": "never"},  # unparseable date
        {"type": "explain", "avail_id": 0},  # missing t_star/date
    ]

    def test_published_code_enumeration_is_stable(self):
        assert ERROR_CODES == (
            "bad_request",
            "bad_json",
            "unknown_type",
            "not_found",
            "domain_error",
            "deadline_exceeded",
            "overloaded",
            "internal",
        )
        assert RETRYABLE_CODES == {"overloaded", "deadline_exceeded"}

    @pytest.mark.parametrize("request_body", FAILING_REQUESTS)
    def test_every_failure_path_matches_the_schema(self, service, request_body):
        response = service.handle(request_body)
        assert set(response) == {"ok", "error"}
        assert response["ok"] is False
        error = response["error"]
        assert set(error) == {"code", "message", "retryable"}
        assert error["code"] in ERROR_CODES
        assert isinstance(error["message"], str) and error["message"]
        assert error["retryable"] is (error["code"] in RETRYABLE_CODES)
        json.dumps(response)  # fully serialisable

    def test_error_envelope_helper_rejects_unknown_codes(self):
        with pytest.raises(AssertionError):
            error_envelope("made_up_code", "nope")

    def test_internal_errors_hide_exception_text(self, service, monkeypatch):
        def explode(*_args, **_kwargs):
            raise RuntimeError("secret traceback detail")

        monkeypatch.setattr(service._estimator, "query", explode)
        response = service.handle(
            {"type": "domd_query", "avail_ids": [0], "t_star": 60.0}
        )
        assert response["error"]["code"] == "internal"
        assert "secret traceback detail" not in response["error"]["message"]
        assert "RuntimeError" in response["error"]["message"]


class TestRetryableTraceIds:
    """Only retryable envelopes carry a top-level ``trace_id`` — the
    correlation handle a client quotes when reporting an overloaded or
    deadline-exceeded response.  Deterministic (non-retryable) error
    envelopes stay byte-identical to the pre-tracing schema."""

    def test_retryable_helper_attaches_the_trace_id(self):
        envelope = error_envelope("overloaded", "queue full", trace_id="T0000002a")
        assert envelope["trace_id"] == "T0000002a"
        assert envelope["error"]["retryable"] is True
        envelope = error_envelope("deadline_exceeded", "late", trace_id="T0000002b")
        assert envelope["trace_id"] == "T0000002b"

    def test_non_retryable_never_carries_a_trace_id(self):
        for code in set(ERROR_CODES) - RETRYABLE_CODES:
            envelope = error_envelope(code, "nope", trace_id="T0000002a")
            assert set(envelope) == {"ok", "error"}, code

    def test_trace_id_none_is_omitted(self):
        assert "trace_id" not in error_envelope("overloaded", "queue full")


class TestProvenanceStamp:
    """Every ok envelope is provenance-stamped: what model/config/feature
    state produced this answer, reproducibly — only ``trace_id`` may
    differ between identical requests."""

    REQUIRED = {"model_hash", "config_hash", "feature_key", "trace_id"}
    OPTIONAL = {"watermark", "designs", "planner_design"}

    def test_ok_envelope_key_set_is_pinned(self, service):
        response = service.handle(
            {"type": "domd_query", "avail_ids": [0], "t_star": 60.0}
        )
        assert response["ok"]
        stamp = response["provenance"]
        assert self.REQUIRED <= set(stamp)
        assert set(stamp) <= self.REQUIRED | self.OPTIONAL
        assert all(
            isinstance(stamp[key], str) and stamp[key]
            for key in ("model_hash", "config_hash", "feature_key", "trace_id")
        )
        json.dumps(response)  # fully serialisable

    def test_stamp_is_deterministic_except_trace_id(self, service):
        request = {"type": "domd_query", "avail_ids": [0], "t_star": 60.0}
        first = service.handle(request)["provenance"]
        second = service.handle(request)["provenance"]
        assert first["trace_id"] != second["trace_id"]
        strip = lambda stamp: {  # noqa: E731
            key: value for key, value in stamp.items() if key != "trace_id"
        }
        assert strip(first) == strip(second)

    def test_all_ok_request_types_are_stamped(self, service, small_dataset):
        from repro.data.dates import day_to_iso

        some_day = int(small_dataset.avails["act_start"][0]) + 10
        for request in (
            {"type": "explain", "avail_id": 0, "t_star": 50.0},
            {"type": "fleet_status", "date": day_to_iso(some_day)},
            {"type": "health"},
        ):
            response = service.handle(request)
            assert response["ok"]
            assert self.REQUIRED <= set(response["provenance"]), request

    def test_error_envelopes_are_not_stamped(self, service):
        response = service.handle({"type": "teleport"})
        assert "provenance" not in response

    def test_trace_id_points_into_the_event_log(self, service):
        response = service.handle(
            {"type": "domd_query", "avail_ids": [0], "t_star": 60.0}
        )
        trace_id = response["provenance"]["trace_id"]
        events = service.context.telemetry.events()
        opens = [
            e
            for e in events
            if e["kind"] == "trace_open" and e["trace_id"] == trace_id
        ]
        assert len(opens) == 1 and opens[0]["name"] == "request"
        stamps = [
            e
            for e in events
            if e["kind"] == "provenance" and e["trace_id"] == trace_id
        ]
        assert len(stamps) == 1
        assert stamps[0]["model_hash"] == response["provenance"]["model_hash"]
        assert stamps[0]["config_hash"] == response["provenance"]["config_hash"]
