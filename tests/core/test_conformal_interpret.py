"""Tests for conformal intervals and global interpretability."""

import numpy as np
import pytest

from repro.core import DomdEstimator, PipelineConfig
from repro.core.conformal import ConformalDomdEstimator
from repro.core.interpret import (
    format_sme_report,
    global_feature_report,
    window_importances,
)
from repro.errors import ConfigurationError, NotFittedError
from repro.ml import GbmParams


@pytest.fixture(scope="module")
def fitted(request):
    dataset = request.getfixturevalue("small_dataset")
    splits = request.getfixturevalue("small_splits")
    config = PipelineConfig(
        window_pct=25.0, k=8, fusion="average", gbm=GbmParams(n_estimators=25)
    )
    estimator = DomdEstimator(config).fit(dataset, splits.train_ids)
    return dataset, splits, estimator


class TestConformal:
    def test_requires_fitted(self):
        with pytest.raises(NotFittedError):
            ConformalDomdEstimator(DomdEstimator(PipelineConfig()))

    def test_calibrate_then_interval(self, fitted):
        _, splits, estimator = fitted
        conformal = ConformalDomdEstimator(estimator).calibrate(splits.validation_ids)
        interval = conformal.query_interval(0, t_star=50.0, alpha=0.2)
        assert interval.lower <= interval.estimate <= interval.upper
        assert interval.width > 0

    def test_uncalibrated_rejected(self, fitted):
        _, _, estimator = fitted
        conformal = ConformalDomdEstimator(estimator)
        with pytest.raises(NotFittedError):
            conformal.query_interval(0, t_star=50.0)

    def test_width_shrinks_with_higher_alpha(self, fitted):
        _, splits, estimator = fitted
        conformal = ConformalDomdEstimator(estimator).calibrate(splits.validation_ids)
        wide = conformal.query_interval(0, 50.0, alpha=0.1)
        narrow = conformal.query_interval(0, 50.0, alpha=0.5)
        assert narrow.width <= wide.width

    def test_tiny_alpha_gives_infinite_width(self, fitted):
        _, splits, estimator = fitted
        conformal = ConformalDomdEstimator(estimator).calibrate(splits.validation_ids)
        # With ~8 calibration points, alpha=0.01 needs rank > n.
        interval = conformal.query_interval(0, 50.0, alpha=0.01)
        assert np.isinf(interval.width)

    def test_invalid_alpha(self, fitted):
        _, splits, estimator = fitted
        conformal = ConformalDomdEstimator(estimator).calibrate(splits.validation_ids)
        with pytest.raises(ConfigurationError):
            conformal.query_interval(0, 50.0, alpha=1.5)

    def test_too_few_calibration_points(self, fitted):
        _, splits, estimator = fitted
        with pytest.raises(ConfigurationError):
            ConformalDomdEstimator(estimator).calibrate(splits.validation_ids[:3])

    def test_empirical_coverage_reasonable(self, fitted):
        _, splits, estimator = fitted
        conformal = ConformalDomdEstimator(estimator).calibrate(splits.validation_ids)
        coverage = conformal.empirical_coverage(splits.test_ids, t_star=100.0, alpha=0.2)
        # Marginal validity under exchangeability; chronological drift and
        # tiny n allow slack.
        assert coverage >= 0.5


class TestInterpret:
    def test_window_importances_sum_to_one(self, fitted):
        _, _, estimator = fitted
        importances = window_importances(estimator, 2)
        assert sum(importances.values()) == pytest.approx(1.0)

    def test_global_report_ranked(self, fitted):
        _, _, estimator = fitted
        reports = global_feature_report(estimator, top=10)
        assert len(reports) == 10
        values = [r.mean_importance for r in reports]
        assert values == sorted(values, reverse=True)

    def test_static_features_present_every_window(self, fitted):
        _, _, estimator = fitted
        reports = global_feature_report(estimator, top=200)
        by_name = {r.name: r for r in reports}
        # Flat architecture includes statics in every window design.
        assert by_name["planned_duration"].n_windows_selected == 5

    def test_contributions_nonnegative(self, fitted):
        _, _, estimator = fitted
        for report in global_feature_report(estimator, top=10):
            assert report.mean_abs_contribution >= 0

    def test_population_subset(self, fitted):
        _, splits, estimator = fitted
        reports = global_feature_report(estimator, avail_ids=splits.test_ids, top=5)
        assert len(reports) == 5

    def test_format_report(self, fitted):
        _, _, estimator = fitted
        text = format_sme_report(global_feature_report(estimator, top=5))
        assert "feature" in text
        assert len(text.splitlines()) == 7

    def test_invalid_top(self, fitted):
        _, _, estimator = fitted
        with pytest.raises(ConfigurationError):
            global_feature_report(estimator, top=0)

    def test_unfitted_rejected(self):
        with pytest.raises(NotFittedError):
            global_feature_report(DomdEstimator(PipelineConfig()))
