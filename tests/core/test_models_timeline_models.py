"""Tests for base-model adapters and the timeline model set."""

import numpy as np
import pytest

from repro.core import (
    GbmAdapter,
    LinearAdapter,
    PipelineConfig,
    STATIC_BASE_PRED,
    TimelineModelSet,
    make_model,
)
from repro.errors import ConfigurationError, NotFittedError
from repro.ml import GbmParams


@pytest.fixture()
def problem(rng):
    X = rng.normal(size=(60, 6))
    y = 2 * X[:, 0] - X[:, 1] + rng.normal(0, 0.1, 60)
    return X, y


class TestAdapters:
    @pytest.mark.parametrize("family", ["gbm", "linear"])
    def test_fit_predict(self, problem, family):
        X, y = problem
        model = make_model(family).fit(X, y)
        pred = model.predict(X)
        assert np.abs(pred - y).mean() < np.abs(y - y.mean()).mean()

    @pytest.mark.parametrize("family", ["gbm", "linear"])
    def test_contributions_sum_to_prediction(self, problem, family):
        X, y = problem
        model = make_model(family).fit(X, y)
        contribs = model.contributions(X)
        assert contribs.shape == (60, 7)
        np.testing.assert_allclose(contribs.sum(axis=1), model.predict(X), atol=1e-6)

    @pytest.mark.parametrize("family", ["gbm", "linear"])
    def test_importances_normalised(self, problem, family):
        X, y = problem
        model = make_model(family).fit(X, y)
        importances = model.feature_importances()
        assert importances.sum() == pytest.approx(1.0)

    @pytest.mark.parametrize("family", ["gbm", "linear"])
    def test_clone_unfitted(self, problem, family):
        X, y = problem
        model = make_model(family).fit(X, y)
        with pytest.raises(NotFittedError):
            model.clone().predict(X)

    def test_gbm_loss_override(self):
        adapter = make_model("gbm", loss="pseudo_huber", huber_delta=9.0)
        assert adapter.params.loss == "pseudo_huber"
        assert adapter.params.huber_delta == 9.0

    def test_gbm_with_loss(self):
        adapter = GbmAdapter(GbmParams(n_estimators=10))
        other = adapter.with_loss("l1")
        assert other.params.loss == "l1"
        assert adapter.params.loss == "l2"

    def test_linear_not_fitted(self):
        with pytest.raises(NotFittedError):
            LinearAdapter().predict(np.zeros((1, 1)))
        with pytest.raises(NotFittedError):
            LinearAdapter().feature_importances()

    def test_unknown_family(self):
        with pytest.raises(ConfigurationError):
            make_model("transformer")


@pytest.fixture()
def timeline_data(rng):
    n, n_windows, p_dyn, p_static = 50, 5, 30, 4
    X_static = rng.normal(size=(n, p_static))
    dyn = rng.normal(size=(n, n_windows, p_dyn))
    # Signal grows over the timeline (dyn feature 3 drives the target).
    y = 3 * dyn[:, -1, 3] + X_static[:, 0]
    return X_static, dyn, y


def small_config(**overrides):
    defaults = dict(
        window_pct=25.0,
        k=8,
        gbm=GbmParams(n_estimators=25),
    )
    defaults.update(overrides)
    return PipelineConfig(**defaults)


class TestTimelineModelSet:
    def test_fit_creates_one_model_per_window(self, timeline_data):
        X_static, dyn, y = timeline_data
        model_set = TimelineModelSet(
            config=small_config(),
            dyn_feature_names=[f"d{i}" for i in range(30)],
            static_feature_names=[f"s{i}" for i in range(4)],
        ).fit(X_static, dyn, y)
        assert len(model_set.windows) == 5

    def test_flat_design_includes_statics(self, timeline_data):
        X_static, dyn, y = timeline_data
        model_set = TimelineModelSet(
            config=small_config(architecture="flat"),
            dyn_feature_names=[f"d{i}" for i in range(30)],
            static_feature_names=[f"s{i}" for i in range(4)],
        ).fit(X_static, dyn, y)
        names = model_set.windows[0].design_names
        assert names[:4] == ["s0", "s1", "s2", "s3"]
        assert len(names) == 4 + 8

    def test_stacked_design_has_base_pred(self, timeline_data):
        X_static, dyn, y = timeline_data
        model_set = TimelineModelSet(
            config=small_config(architecture="stacked"),
            dyn_feature_names=[f"d{i}" for i in range(30)],
            static_feature_names=[f"s{i}" for i in range(4)],
        ).fit(X_static, dyn, y)
        names = model_set.windows[0].design_names
        assert names[-1] == STATIC_BASE_PRED
        assert not any(name.startswith("s") for name in names[:-1])

    def test_predict_matrix_shape(self, timeline_data):
        X_static, dyn, y = timeline_data
        model_set = TimelineModelSet(
            config=small_config(),
            dyn_feature_names=[f"d{i}" for i in range(30)],
            static_feature_names=[f"s{i}" for i in range(4)],
        ).fit(X_static, dyn, y)
        matrix = model_set.predict_matrix(X_static, dyn)
        assert matrix.shape == (50, 5)
        assert np.isfinite(matrix).all()

    def test_predict_fused_none_equals_raw(self, timeline_data):
        X_static, dyn, y = timeline_data
        model_set = TimelineModelSet(
            config=small_config(fusion="none"),
            dyn_feature_names=[f"d{i}" for i in range(30)],
            static_feature_names=[f"s{i}" for i in range(4)],
        ).fit(X_static, dyn, y)
        np.testing.assert_array_equal(
            model_set.predict_fused(X_static, dyn),
            model_set.predict_matrix(X_static, dyn),
        )

    def test_selection_rankings_injected(self, timeline_data):
        X_static, dyn, y = timeline_data
        forced = [np.arange(30)[::-1] for _ in range(5)]
        model_set = TimelineModelSet(
            config=small_config(),
            dyn_feature_names=[f"d{i}" for i in range(30)],
            static_feature_names=[f"s{i}" for i in range(4)],
            selection_rankings=forced,
        ).fit(X_static, dyn, y)
        np.testing.assert_array_equal(
            model_set.windows[0].selected, np.arange(30)[::-1][:8]
        )

    def test_wrong_rankings_length_rejected(self, timeline_data):
        X_static, dyn, y = timeline_data
        with pytest.raises(ConfigurationError):
            TimelineModelSet(
                config=small_config(),
                dyn_feature_names=[f"d{i}" for i in range(30)],
                static_feature_names=[f"s{i}" for i in range(4)],
                selection_rankings=[np.arange(30)],
            ).fit(X_static, dyn, y)

    def test_wrong_tensor_shape_rejected(self, timeline_data):
        X_static, dyn, y = timeline_data
        with pytest.raises(ConfigurationError):
            TimelineModelSet(
                config=small_config(),
                dyn_feature_names=[f"d{i}" for i in range(30)],
                static_feature_names=[f"s{i}" for i in range(4)],
            ).fit(X_static, dyn[:, :3, :], y)

    def test_not_fitted(self, timeline_data):
        X_static, dyn, _ = timeline_data
        model_set = TimelineModelSet(
            config=small_config(),
            dyn_feature_names=[f"d{i}" for i in range(30)],
            static_feature_names=[f"s{i}" for i in range(4)],
        )
        with pytest.raises(NotFittedError):
            model_set.predict_matrix(X_static, dyn)

    def test_later_windows_learn_growing_signal(self, timeline_data):
        X_static, dyn, y = timeline_data
        model_set = TimelineModelSet(
            config=small_config(gbm=GbmParams(n_estimators=60)),
            dyn_feature_names=[f"d{i}" for i in range(30)],
            static_feature_names=[f"s{i}" for i in range(4)],
        ).fit(X_static, dyn, y)
        matrix = model_set.predict_matrix(X_static, dyn)
        err_first = np.abs(matrix[:, 0] - y).mean()
        err_last = np.abs(matrix[:, -1] - y).mean()
        assert err_last < err_first

    def test_contributions_at(self, timeline_data):
        X_static, dyn, y = timeline_data
        model_set = TimelineModelSet(
            config=small_config(),
            dyn_feature_names=[f"d{i}" for i in range(30)],
            static_feature_names=[f"s{i}" for i in range(4)],
        ).fit(X_static, dyn, y)
        contribs, names = model_set.contributions_at(X_static, dyn[:, 2, :], 2)
        assert contribs.shape == (50, len(names) + 1)
        pred = model_set.predict_window(X_static, dyn[:, 2, :], 2)
        np.testing.assert_allclose(contribs.sum(axis=1), pred, atol=1e-8)
