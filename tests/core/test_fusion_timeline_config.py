"""Tests for fusion, the logical timeline and pipeline configuration."""

import numpy as np
import pytest

from repro.core import (
    FUSION_METHODS,
    LogicalTimeline,
    PipelineConfig,
    fuse,
    fuse_progressive,
    paper_final_config,
)
from repro.errors import ConfigurationError

P = np.array([[10.0, 20.0, 30.0], [5.0, 1.0, 9.0]])


class TestFuse:
    def test_none_takes_last(self):
        assert fuse(P, "none").tolist() == [30.0, 9.0]

    def test_min(self):
        assert fuse(P, "min").tolist() == [10.0, 1.0]

    def test_average(self):
        assert fuse(P, "average").tolist() == [20.0, 5.0]

    def test_single_column_all_equal(self):
        single = P[:, :1]
        for method in FUSION_METHODS:
            np.testing.assert_array_equal(fuse(single, method), single[:, 0])

    def test_unknown_method(self):
        with pytest.raises(ConfigurationError):
            fuse(P, "mode")

    def test_median(self):
        assert fuse(P, "median").tolist() == [20.0, 5.0]

    def test_ewma_weights_recent_windows_most(self):
        out = fuse(P, "ewma")
        # Row 0 rises over time -> ewma sits between average and last.
        assert fuse(P, "average")[0] < out[0] < P[0, -1]

    def test_bad_shape(self):
        with pytest.raises(ConfigurationError):
            fuse(np.zeros((2, 0)), "min")


class TestFuseProgressive:
    def test_none_is_identity(self):
        np.testing.assert_array_equal(fuse_progressive(P, "none"), P)

    def test_min_is_running_minimum(self):
        out = fuse_progressive(P, "min")
        assert out[1].tolist() == [5.0, 1.0, 1.0]

    def test_average_is_running_mean(self):
        out = fuse_progressive(P, "average")
        assert out[0].tolist() == [10.0, 15.0, 20.0]

    def test_last_column_matches_fuse(self):
        for method in FUSION_METHODS:
            np.testing.assert_allclose(
                fuse_progressive(P, method)[:, -1], fuse(P, method)
            )

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            fuse_progressive(P, "max")


class TestLogicalTimeline:
    def test_n_models_formula(self):
        assert LogicalTimeline(10.0).n_models == 11
        assert LogicalTimeline(25.0).n_models == 5
        assert LogicalTimeline(100.0).n_models == 2
        assert LogicalTimeline(30.0).n_models == 1 + int(np.ceil(100 / 30))

    def test_t_stars_span(self):
        timeline = LogicalTimeline(10.0)
        assert timeline.t_stars[0] == 0.0
        assert timeline.t_stars[-1] == 100.0

    def test_window_index_exact_boundaries(self):
        timeline = LogicalTimeline(10.0)
        assert timeline.window_index(0.0) == 0
        assert timeline.window_index(10.0) == 1
        assert timeline.window_index(100.0) == 10

    def test_window_index_between_boundaries(self):
        timeline = LogicalTimeline(10.0)
        assert timeline.window_index(55.0) == 5

    def test_window_index_clamps_beyond_100(self):
        timeline = LogicalTimeline(10.0)
        assert timeline.window_index(250.0) == 10

    def test_window_index_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            LogicalTimeline(10.0).window_index(-5.0)

    def test_boundaries_upto(self):
        timeline = LogicalTimeline(10.0)
        assert timeline.boundaries_upto(35.0).tolist() == [0.0, 10.0, 20.0, 30.0]

    def test_paper_example_six_estimates(self):
        # "if x = 10% ... 6 different DoMD estimates ... 0% to 50%"
        timeline = LogicalTimeline(10.0)
        assert len(timeline.boundaries_upto(50.0)) == 6

    def test_logical_of(self):
        timeline = LogicalTimeline(10.0)
        assert timeline.logical_of(150.0, 100.0, 100.0) == 50.0
        with pytest.raises(ConfigurationError):
            timeline.logical_of(0.0, 0.0, 0.0)

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            LogicalTimeline(0.0)
        with pytest.raises(ConfigurationError):
            LogicalTimeline(150.0)


class TestPipelineConfig:
    def test_defaults_valid(self):
        config = PipelineConfig()
        assert config.loss == "l2"
        assert config.fusion == "none"

    def test_paper_final_values(self):
        config = paper_final_config()
        assert config.selection_method == "pearson"
        assert config.k == 60
        assert config.model_family == "gbm"
        assert config.architecture == "flat"
        assert config.loss == "pseudo_huber"
        assert config.huber_delta == 18.0
        assert config.n_trials == 30
        assert config.fusion == "average"

    def test_paper_final_overrides(self):
        config = paper_final_config(k=40, fusion="min")
        assert config.k == 40 and config.fusion == "min"

    def test_evolve(self):
        config = PipelineConfig().evolve(loss="l1")
        assert config.loss == "l1"
        assert PipelineConfig().loss == "l2"

    @pytest.mark.parametrize(
        "field,value",
        [
            ("selection_method", "chi2"),
            ("k", 0),
            ("model_family", "dnn"),
            ("architecture", "deep"),
            ("loss", "hinge"),
            ("fusion", "mode"),
            ("window_pct", 0.0),
            ("n_trials", -1),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ConfigurationError):
            PipelineConfig(**{field: value})

    def test_describe_keys(self):
        described = PipelineConfig().describe()
        assert {"selection_method", "k", "loss", "fusion"} <= set(described)
