"""Tests for the counterfactual what-if API."""

import numpy as np
import pytest

from repro.core import DomdEstimator, PipelineConfig
from repro.core.whatif import WhatIfResult, inject_rccs, surge_analysis
from repro.errors import ConfigurationError
from repro.ml import GbmParams


@pytest.fixture(scope="module")
def fitted(request):
    dataset = request.getfixturevalue("small_dataset")
    splits = request.getfixturevalue("small_splits")
    config = PipelineConfig(window_pct=25.0, k=8, gbm=GbmParams(n_estimators=20))
    return dataset, DomdEstimator(config).fit(dataset, splits.train_ids)


class TestInjectRccs:
    def test_adds_rows_on_target_avail(self, fitted):
        dataset, _ = fitted
        surged = inject_rccs(dataset, 0, n_new=7, amount_each=5000.0, at_t_star=40.0)
        assert surged.n_rccs == dataset.n_rccs + 7
        new = surged.rccs.filter(
            surged.rccs["rcc_id"] > int(dataset.rccs["rcc_id"].max())
        )
        assert (new["avail_id"] == 0).all()

    def test_creation_at_requested_logical_time(self, fitted):
        dataset, _ = fitted
        avail = dataset.avail(0)
        surged = inject_rccs(dataset, 0, n_new=1, amount_each=1000.0, at_t_star=50.0)
        new = surged.rccs.row(surged.n_rccs - 1)
        assert avail.logical_time_of(new["create_date"]) == pytest.approx(50.0, abs=1.0)

    def test_type_respected(self, fitted):
        dataset, _ = fitted
        surged = inject_rccs(
            dataset, 0, n_new=3, amount_each=1000.0, at_t_star=10.0, rcc_type="NG"
        )
        new = surged.rccs.filter(
            surged.rccs["rcc_id"] > int(dataset.rccs["rcc_id"].max())
        )
        assert (new["rcc_type"] == "NG").all()

    def test_original_untouched(self, fitted):
        dataset, _ = fitted
        before = dataset.n_rccs
        inject_rccs(dataset, 0, n_new=5, amount_each=1000.0, at_t_star=10.0)
        assert dataset.n_rccs == before

    def test_validation(self, fitted):
        dataset, _ = fitted
        with pytest.raises(ConfigurationError):
            inject_rccs(dataset, 0, n_new=0, amount_each=1.0, at_t_star=10.0)
        with pytest.raises(ConfigurationError):
            inject_rccs(dataset, 0, n_new=1, amount_each=-1.0, at_t_star=10.0)
        with pytest.raises(ConfigurationError):
            inject_rccs(dataset, 0, n_new=1, amount_each=1.0, at_t_star=10.0, rcc_type="X")


class TestSurgeAnalysis:
    def test_scenarios_evaluated(self, fitted):
        _, estimator = fitted
        results = surge_analysis(
            estimator, 0, t_star=75.0, scenarios=[(10, 5_000.0), (200, 50_000.0)]
        )
        assert len(results) == 2
        assert all(isinstance(r, WhatIfResult) for r in results)
        assert results[0].baseline == results[1].baseline

    def test_bigger_surge_bigger_estimate(self, fitted):
        _, estimator = fitted
        small, large = surge_analysis(
            estimator, 0, t_star=75.0, scenarios=[(5, 2_000.0), (400, 80_000.0)]
        )
        assert large.counterfactual >= small.counterfactual

    def test_delta_cost_pricing(self):
        result = WhatIfResult(
            avail_id=0, t_star=50.0, baseline=10.0, counterfactual=14.0,
            n_new=10, amount_each=1000.0, rcc_type="G",
        )
        assert result.delta_days == pytest.approx(4.0)
        assert result.delta_cost == pytest.approx(1_000_000.0)

    def test_requires_fitted(self):
        with pytest.raises(Exception):
            surge_analysis(
                DomdEstimator(PipelineConfig()), 0, 50.0, scenarios=[(1, 1.0)]
            )
