"""Tests for DomdEstimator.serve() — rebinding models to new snapshots."""

import numpy as np
import pytest

from repro.core import DomdEstimator, PipelineConfig
from repro.data import generate_continuation, scale_rccs
from repro.errors import NotFittedError
from repro.ml import GbmParams


@pytest.fixture(scope="module")
def fitted(request):
    dataset = request.getfixturevalue("small_dataset")
    splits = request.getfixturevalue("small_splits")
    config = PipelineConfig(window_pct=25.0, k=8, gbm=GbmParams(n_estimators=15))
    return dataset, splits, DomdEstimator(config).fit(dataset, splits.train_ids)


class TestServe:
    def test_same_snapshot_same_answers(self, fitted):
        dataset, _, estimator = fitted
        served = estimator.serve(dataset)
        a = estimator.query([0], t_star=75.0)[0]
        b = served.query([0], t_star=75.0)[0]
        np.testing.assert_allclose(b.window_estimates, a.window_estimates)

    def test_shares_models_no_refit(self, fitted):
        dataset, _, estimator = fitted
        served = estimator.serve(dataset)
        assert served._model_set is estimator._model_set

    def test_new_avails_become_queryable(self, fitted):
        dataset, _, estimator = fitted
        extended = generate_continuation(dataset, n_new_closed=4, seed=3)
        new_id = int(np.max(extended.avails["avail_id"]))
        with pytest.raises(Exception):
            estimator.query([new_id], t_star=50.0)  # unknown to old snapshot
        served = estimator.serve(extended)
        result = served.query([new_id], t_star=50.0)[0]
        assert np.isfinite(result.current_estimate)

    def test_original_estimator_unchanged(self, fitted):
        dataset, _, estimator = fitted
        before = estimator.query([0], t_star=50.0)[0].current_estimate
        estimator.serve(scale_rccs(dataset, 2))
        after = estimator.query([0], t_star=50.0)[0].current_estimate
        assert before == after
        assert estimator._dataset is dataset

    def test_unfitted_rejected(self):
        with pytest.raises(NotFittedError):
            DomdEstimator(PipelineConfig()).serve(None)
