"""Service-level telemetry: the PR's acceptance criteria.

* A single :class:`DomdService` request yields a reconstructable trace —
  one trace id linking the service span to the estimator, feature
  extraction and Status Query spans in the structured event log.
* Latency histograms (p50/p90/p99) are non-empty for service requests
  and per-backend Status Queries.
* The drift monitor flags an injected residual shift, degrading
  ``health`` and emitting ``drift_alert`` events.
"""

import numpy as np
import pytest

from repro.core import DomdEstimator, DomdService, paper_final_config
from repro.runtime import ExecutionContext, JsonlEventLog, load_events
from repro.runtime.telemetry.drift import DriftThresholds
from repro.runtime.telemetry.exporters import reconstruct_traces


@pytest.fixture(scope="module")
def fitted(request):
    dataset = request.getfixturevalue("small_dataset")
    splits = request.getfixturevalue("small_splits")
    context = ExecutionContext(seed=0)
    estimator = DomdEstimator(
        paper_final_config(window_pct=25), context=context
    ).fit(dataset, splits.train_ids)
    return dataset, splits, estimator


def _span_names(node, names=None):
    names = names if names is not None else set()
    names.add(node["name"])
    for child in node["children"]:
        _span_names(child, names)
    return names


class TestRequestTraceReconstruction:
    def test_one_trace_links_service_to_status_query(self, fitted):
        """Acceptance: service -> estimator -> extraction -> Status Query."""
        dataset, splits, estimator = fitted
        # a freshly served snapshot defers extraction to the first query,
        # so the request's own trace carries the whole chain; a fresh
        # context (empty artifact cache) makes the extraction real work
        context = ExecutionContext(seed=0)
        served = estimator.serve(dataset)
        served.context = context
        before = len(context.telemetry.events())
        service = DomdService(served, context=context)
        avail_id = int(splits.test_ids[0])
        response = service.handle(
            {"type": "domd_query", "avail_ids": [avail_id], "t_star": 50.0}
        )
        assert response["ok"]
        events = context.telemetry.events()[before:]
        traces = [
            t for t in reconstruct_traces(events) if t["name"] == "request"
        ]
        assert len(traces) == 1
        trace = traces[0]
        names = set()
        for root in trace["spans"]:
            _span_names(root, names)
        assert "request.domd_query" in names  # service layer
        assert "query" in names and "predict" in names  # estimator layer
        assert "extract" in names  # feature extraction layer
        assert "status_query.sweep.incremental" in names  # Status Query layer
        # every span in the tree closed under the same trace id
        assert all(
            e["trace_id"] == trace["trace_id"]
            for e in events
            if e["kind"] in ("span_open", "span_close")
            and e.get("span_id", "").startswith("S")
            and e["trace_id"] == trace["trace_id"]
        )

    def test_trace_survives_jsonl_round_trip(self, fitted, tmp_path):
        dataset, splits, estimator = fitted
        served = estimator.serve(dataset)
        context = served.context
        log = context.telemetry.add_sink(JsonlEventLog(tmp_path / "e.jsonl"))
        service = DomdService(served, context=context)
        service.handle(
            {"type": "domd_query", "avail_ids": [int(splits.test_ids[0])],
             "t_star": 40.0}
        )
        log.close()
        context.telemetry._sinks.remove(log)
        events = load_events(tmp_path / "e.jsonl")
        traces = [t for t in reconstruct_traces(events) if t["name"] == "request"]
        assert traces, "request trace must be reconstructable from disk"
        names = set()
        for root in traces[0]["spans"]:
            _span_names(root, names)
        assert "request.domd_query" in names

    def test_each_request_gets_a_fresh_trace_id(self, fitted):
        dataset, splits, estimator = fitted
        service = DomdService(estimator)
        context = estimator.context
        before = len(context.telemetry.events())
        for _ in range(3):
            service.handle(
                {"type": "domd_query", "avail_ids": [int(splits.test_ids[0])],
                 "t_star": 50.0}
            )
        events = context.telemetry.events()[before:]
        opened = [e for e in events if e["kind"] == "trace_open"]
        assert len(opened) == 3
        assert len({e["trace_id"] for e in opened}) == 3

    def test_failed_request_emits_error_event_in_its_trace(self, fitted):
        dataset, splits, estimator = fitted
        service = DomdService(estimator)
        context = estimator.context
        before = len(context.telemetry.events())
        response = service.handle({"type": "domd_query", "avail_ids": [1]})
        assert not response["ok"]
        events = context.telemetry.events()[before:]
        errors = [e for e in events if e["kind"] == "error"]
        opened = [e for e in events if e["kind"] == "trace_open"]
        assert len(errors) == 1 and len(opened) == 1
        assert errors[0]["trace_id"] == opened[0]["trace_id"]
        assert errors[0]["code"] == "bad_request"


class TestLatencyHistograms:
    def test_service_and_backend_histograms_populated(self, fitted):
        """Acceptance: non-empty p50/p90/p99 for requests and queries."""
        dataset, splits, estimator = fitted
        service = DomdService(estimator)
        for _ in range(2):
            service.handle(
                {"type": "domd_query", "avail_ids": [int(splits.test_ids[0])],
                 "t_star": 50.0}
            )
        response = service.handle({"type": "metrics"})
        assert response["ok"]
        histograms = response["result"]["histograms"]
        request_summary = histograms["span.request.domd_query"]
        assert request_summary["count"] >= 2
        assert 0 < request_summary["p50"] <= request_summary["p99"]
        # per-backend Status Query latency, via an explicit engine query
        # against the service's shared context
        from repro.index import StatusQuery, StatusQueryEngine
        from repro.table import ColumnTable

        rng = np.random.default_rng(5)
        starts = rng.uniform(0, 80, size=50)
        table = ColumnTable(
            {
                "rcc_type": rng.choice(["G", "N"], size=50),
                "swlin": rng.choice(["10000000", "20000000"], size=50),
                "t_start": starts,
                "t_end": starts + rng.uniform(1, 30, size=50),
                "amount": rng.uniform(10, 100, size=50),
            }
        )
        engine = StatusQueryEngine(table, design="avl", context=service.context)
        engine.execute(StatusQuery(t_star=50.0))
        response = service.handle({"type": "metrics"})
        backend_summary = response["result"]["histograms"][
            "span.status_query.query.avl"
        ]
        assert backend_summary["count"] >= 1
        assert {"p50", "p90", "p99"} <= backend_summary.keys()

    def test_prometheus_exposition_via_service(self, fitted):
        dataset, splits, estimator = fitted
        service = DomdService(estimator)
        service.handle(
            {"type": "domd_query", "avail_ids": [int(splits.test_ids[0])],
             "t_star": 50.0}
        )
        response = service.handle({"type": "metrics", "format": "prometheus"})
        assert response["ok"]
        text = response["result"]["exposition"]
        assert "repro_service_requests_total" in text
        assert "repro_span_request_domd_query_seconds_bucket" in text

    def test_invalid_format_is_a_bad_request(self, fitted):
        _, _, estimator = fitted
        service = DomdService(estimator)
        response = service.handle({"type": "metrics", "format": "xml"})
        assert not response["ok"]
        assert response["error"]["code"] == "bad_request"

    def test_model_metrics_still_work_with_avail_ids(self, fitted):
        dataset, splits, estimator = fitted
        service = DomdService(estimator)
        response = service.handle(
            {"type": "metrics", "avail_ids": [int(a) for a in splits.test_ids]}
        )
        assert response["ok"]
        assert "average" in response["result"]


class TestDriftHealth:
    def _service_with_tight_drift(self, fitted):
        dataset, splits, estimator = fitted
        context = ExecutionContext(seed=1)
        context.telemetry.drift.thresholds = DriftThresholds(
            min_samples=5, baseline_samples=8, window_size=40
        )
        served = DomdEstimator(estimator.config, context=context)
        served._dataset = dataset
        served._model_set = estimator._model_set
        served._features_pending = True
        return dataset, splits, served, DomdService(served, context=context)

    def test_health_ok_before_any_drift(self, fitted):
        _, _, _, service = self._service_with_tight_drift(fitted)
        response = service.handle({"type": "health"})
        assert response["ok"]
        assert response["result"]["status"] == "ok"
        assert response["result"]["fitted"]
        assert response["result"]["drift"]["flagged"] == []

    def test_injected_residual_shift_degrades_health(self, fitted):
        """Acceptance: the drift monitor flags an injected residual shift."""
        dataset, splits, served, service = self._service_with_tight_drift(fitted)
        context = served.context
        hub = context.telemetry
        # freeze an on-model baseline, then inject a shifted residual
        # regime (systematic +30-day under-estimation)
        rng = np.random.default_rng(0)
        hub.drift_observe_many("residual", 0, rng.normal(0.0, 5.0, size=20))
        before = len(hub.events())
        alerts = hub.drift_observe_many(
            "residual", 0, rng.normal(30.0, 5.0, size=40)
        )
        assert alerts, "the injected shift must raise an alert"
        events = hub.events()[before:]
        assert any(e["kind"] == "drift_alert" for e in events)
        response = service.handle({"type": "health"})
        assert response["result"]["status"] == "degraded"
        flagged = response["result"]["drift"]["flagged"]
        assert {"channel": "residual", "window": 0} in flagged
        status = response["result"]["drift"]["windows"]["residual:0"]
        assert status["flagged"] is True

    def test_evaluate_feeds_residual_channels(self, fitted):
        dataset, splits, estimator = fitted
        estimator.evaluate(splits.test_ids)
        status = estimator.context.telemetry.drift.status()
        residual_keys = [k for k in status if k.startswith("residual:")]
        # one channel per logical window of the 25% timeline (0..100)
        assert len(residual_keys) == len(estimator.timeline.t_stars)

    def test_queries_feed_prediction_channel(self, fitted):
        dataset, splits, estimator = fitted
        service = DomdService(estimator)
        service.handle(
            {"type": "domd_query", "avail_ids": [int(splits.test_ids[0])],
             "t_star": 50.0}
        )
        status = estimator.context.telemetry.drift.status()
        assert any(k.startswith("prediction:") for k in status)
