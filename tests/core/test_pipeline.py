"""Tests for the greedy pipeline optimizer (Problem 2)."""

import numpy as np
import pytest

from repro.core import PipelineConfig, PipelineOptimizer
from repro.errors import ConfigurationError
from repro.ml import GbmParams


@pytest.fixture(scope="module")
def optimizer(request):
    small_dataset = request.getfixturevalue("small_dataset")
    small_splits = request.getfixturevalue("small_splits")
    base = PipelineConfig(window_pct=25.0, k=10, gbm=GbmParams(n_estimators=30))
    return PipelineOptimizer(small_dataset, small_splits, base_config=base)


class TestEvaluate:
    def test_keys_and_shapes(self, optimizer):
        result = optimizer.evaluate(optimizer.config)
        assert result["val_mae"] > 0
        assert len(result["val_mae_by_t"]) == optimizer.timeline.n_models

    def test_selection_rankings_cached(self, optimizer):
        first = optimizer.rankings_for("pearson")
        second = optimizer.rankings_for("pearson")
        assert first is second
        assert len(first) == optimizer.timeline.n_models

    def test_rankings_cover_all_features(self, optimizer):
        rankings = optimizer.rankings_for("pearson")
        n_features = optimizer.dyn_train.shape[2]
        assert sorted(rankings[0].tolist()) == list(range(n_features))


class TestStages:
    def test_selection_stage(self, optimizer):
        result = optimizer.optimize_selection(
            methods=("pearson", "random"), k_grid=(5, 10)
        )
        assert len(result.records) == 4
        assert result.chosen["selection_method"] in ("pearson", "random")
        assert optimizer.config.selection_method == result.chosen["selection_method"]

    def test_model_stage(self, optimizer):
        result = optimizer.optimize_model_family()
        assert {r["family"] for r in result.records} == {"gbm", "linear"}
        assert optimizer.config.model_family == result.chosen["model_family"]

    def test_architecture_stage(self, optimizer):
        result = optimizer.optimize_architecture()
        assert {r["architecture"] for r in result.records} == {"flat", "stacked"}

    def test_loss_stage(self, optimizer):
        result = optimizer.optimize_loss(
            losses=("l2", "pseudo_huber"), huber_deltas=(18.0,)
        )
        assert len(result.records) == 2
        assert optimizer.config.loss == result.chosen["loss"]

    def test_hpt_stage_small(self, optimizer):
        optimizer.config = optimizer.config.evolve(model_family="gbm")
        result = optimizer.optimize_trials(trial_counts=(3, 6))
        assert [r["n_trials"] for r in result.records] == [3, 6]
        assert optimizer.config.n_trials in (3, 6)
        # Tuned hyperparameters adopted into the config.
        assert optimizer.config.gbm.loss == optimizer.config.loss

    def test_hpt_prefers_smallest_within_tolerance(self, optimizer):
        optimizer.config = optimizer.config.evolve(model_family="gbm")
        result = optimizer.optimize_trials(trial_counts=(3, 6), tolerance=100.0)
        assert result.chosen["n_trials"] == 3

    def test_fusion_stage(self, optimizer):
        result = optimizer.optimize_fusion()
        assert {r["fusion"] for r in result.records} == {"none", "min", "average"}
        assert optimizer.config.fusion == result.chosen["fusion"]

    def test_stage_records_have_timeline_breakdown(self, optimizer):
        result = optimizer.optimize_fusion()
        for record in result.records:
            assert len(record["val_mae_by_t"]) == optimizer.timeline.n_models


class TestRun:
    def test_unknown_stage_rejected(self, small_dataset, small_splits):
        optimizer = PipelineOptimizer(
            small_dataset,
            small_splits,
            base_config=PipelineConfig(window_pct=50.0, gbm=GbmParams(n_estimators=10)),
        )
        with pytest.raises(ConfigurationError):
            optimizer.run(stages=("selection", "magic"))

    def test_run_subset_of_stages(self, small_dataset, small_splits):
        optimizer = PipelineOptimizer(
            small_dataset,
            small_splits,
            base_config=PipelineConfig(
                window_pct=50.0, k=5, gbm=GbmParams(n_estimators=15)
            ),
        )
        report = optimizer.run(
            stages=("selection", "fusion"),
            selection_methods=("pearson",),
            k_grid=(5,),
        )
        assert set(report.stages) == {"selection", "fusion"}
        assert report.config.fusion == optimizer.config.fusion
        summary = report.summary()
        assert "final" in summary and "fusion" in summary


class TestTestEvaluation:
    def test_rows_and_average(self, optimizer):
        out = optimizer.test_evaluation()
        assert len(out["rows"]) == optimizer.timeline.n_models
        assert set(out["average"]) == {"mae_80", "mae_90", "mae_100", "mse", "rmse", "r2"}
        for row in out["rows"]:
            assert row["mae_80"] <= row["mae_100"]

    def test_hpt_requires_gbm(self, optimizer):
        optimizer.config = optimizer.config.evolve(model_family="linear")
        try:
            with pytest.raises(ConfigurationError, match="GBM"):
                optimizer.optimize_trials(trial_counts=(2,))
        finally:
            optimizer.config = optimizer.config.evolve(model_family="gbm")
