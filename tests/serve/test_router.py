"""ShardRouter over live in-process shard servers: point routing,
scatter-gather with degraded mode, ingest fan-out, watermark stamping,
and the ``shard:<id>:lagging`` alert condition (Issue 10, satellite 2).
"""

from __future__ import annotations

import pytest

from repro.data import load_dataset
from repro.runtime import ExecutionContext
from repro.serve.client import FrameClient
from repro.serve.partition import ships_of_shard
from repro.serve.ring import ConsistentHashRing
from repro.serve.router import RoutingTable, ShardRouter
from repro.serve.shard import build_shard_runtime


def _owned_avails(dataset, ring, shard_id: int) -> list[int]:
    owned_ships = {int(s) for s in ships_of_shard(dataset, ring, shard_id)}
    return [
        int(a)
        for a, s in zip(dataset.avails["avail_id"], dataset.avails["ship_id"])
        if int(s) in owned_ships
    ]


@pytest.fixture()
def fleet(serve_env, tmp_path):
    """Two WAL-backed shard servers + a router, all in-process.

    Function-scoped: several tests mutate the fleet (stop a shard,
    ingest events), so each test gets a pristine one.
    """
    ring = ConsistentHashRing([0, 1])
    specs = {
        shard_id: {
            "shard_id": shard_id,
            "shard_ids": list(ring.shard_ids),
            "model": serve_env.model_path,
            "data": serve_env.data_dir,
            "wal_path": str(tmp_path / f"shard-{shard_id}.wal"),
            "workers": 1,
            "queue_depth": 8,
        }
        for shard_id in ring.shard_ids
    }
    runtimes = {}
    for shard_id in ring.shard_ids:
        runtime = build_shard_runtime(specs[shard_id])
        runtime.server.start()
        runtimes[shard_id] = runtime
    context = ExecutionContext()
    dataset = load_dataset(serve_env.data_dir)
    router = ShardRouter(
        ring,
        {
            shard_id: FrameClient("127.0.0.1", runtime.server.port, timeout=5.0)
            for shard_id, runtime in runtimes.items()
        },
        RoutingTable(dataset, ring),
        context=context,
        scatter_timeout=5.0,
        lag_alert_events=500,
        ingest_enabled=True,
    )
    from types import SimpleNamespace

    env = SimpleNamespace(
        ring=ring,
        specs=specs,
        runtimes=runtimes,
        router=router,
        context=context,
        dataset=dataset,
        owned={s: _owned_avails(dataset, ring, s) for s in ring.shard_ids},
    )
    yield env
    router.close()
    for runtime in runtimes.values():
        runtime.server.stop(drain=False)
        runtime.pool.close(drain=False)
        if runtime.wal is not None:
            runtime.wal.close()


class TestPointRouting:
    def test_single_shard_query_forwards(self, serve_env, fleet):
        ids = fleet.owned[0][:2]
        response = fleet.router.dispatch(
            {"type": "domd_query", "avail_ids": ids, "t_star": 30.0}
        )
        assert response["ok"], response
        assert response["shard_id"] == 0
        expected = serve_env.estimator.query(ids, t_star=30.0)
        for item, est in zip(response["result"], expected):
            assert item["current"] == est.current_estimate  # bitwise

    def test_cross_shard_query_merges_in_request_order(self, serve_env, fleet):
        # Interleave shard-0 and shard-1 avails deliberately.
        ids = [
            fleet.owned[0][0],
            fleet.owned[1][0],
            fleet.owned[0][1],
            fleet.owned[1][1],
        ]
        response = fleet.router.dispatch(
            {"type": "domd_query", "avail_ids": ids, "t_star": 40.0}
        )
        assert response["ok"], response
        assert [item["avail_id"] for item in response["result"]] == ids
        assert set(response["shards"]) == {"0", "1"}
        expected = serve_env.estimator.query(ids, t_star=40.0)
        for item, est in zip(response["result"], expected):
            assert item["current"] == est.current_estimate

    def test_unknown_avail_is_not_found(self, fleet):
        response = fleet.router.dispatch(
            {"type": "domd_query", "avail_ids": [987_654_321], "t_star": 30.0}
        )
        assert response["error"]["code"] == "not_found"
        assert "987654321" in response["error"]["message"]

    def test_missing_avail_ids_is_bad_request(self, fleet):
        response = fleet.router.dispatch({"type": "domd_query", "t_star": 30.0})
        assert response["error"]["code"] == "bad_request"
        assert "avail_ids" in response["error"]["message"]

    def test_non_object_request_is_bad_request(self, fleet):
        assert fleet.router.dispatch([1, 2])["error"]["code"] == "bad_request"

    def test_unknown_type_forwards_for_canonical_envelope(self, fleet):
        response = fleet.router.dispatch({"type": "teleport"})
        assert response["error"]["code"] == "unknown_type"


class TestFleetStatus:
    def test_full_fleet_merges_sorted(self, serve_env, fleet):
        response = fleet.router.dispatch(
            {"type": "fleet_status", "date": serve_env.fleet_date}
        )
        assert response["ok"], response
        assert "degraded" not in response
        delays = [item["estimated_delay_days"] for item in response["result"]]
        assert delays == sorted(delays, reverse=True)
        assert set(response["shards"]) == {"0", "1"}

    def test_downed_shard_degrades_instead_of_hanging(self, serve_env, fleet):
        fleet.runtimes[1].server.stop(drain=False)
        response = fleet.router.dispatch(
            {"type": "fleet_status", "date": serve_env.fleet_date}
        )
        assert response["ok"], response
        assert response["degraded"]["missing_shards"] == [1]
        assert "1" in response["degraded"]["reasons"]
        # The reachable slice is still served.
        answered = {item["avail_id"] for item in response["result"]}
        assert answered <= set(fleet.owned[0])


class TestHealth:
    def test_healthy_fleet_reports_per_shard_watermarks(self, fleet):
        response = fleet.router.dispatch({"type": "health"})
        assert response["ok"], response
        result = response["result"]
        assert result["status"] == "ok"
        assert set(result["shards"]) == {"0", "1"}
        for entry in result["shards"].values():
            assert entry["watermark"] == 0  # nothing ingested yet
            assert entry["lag_events"] == 0
        assert result["watermark"]["global"] == 0
        assert result["watermark"]["per_shard"] == {"0": 0, "1": 0}
        assert result["frontend"]["alerts"]["firing"] == []

    def test_unreachable_shard_degrades_and_fires_alert(self, fleet):
        fleet.runtimes[1].server.stop(drain=False)
        response = fleet.router.dispatch({"type": "health"})
        result = response["result"]
        assert result["status"] == "degraded"
        assert result["shards"]["1"]["status"] == "unreachable"
        assert result["watermark"]["global"] is None  # partial view
        alerts = fleet.context.telemetry.alerts
        assert "shard:1:lagging" in alerts.firing()
        assert "shard:0:lagging" not in alerts.firing()

    def test_recovered_shard_resolves_alert(self, fleet):
        alerts = fleet.context.telemetry.alerts
        fleet.runtimes[1].server.stop(drain=False)
        fleet.router.dispatch({"type": "health"})
        assert "shard:1:lagging" in alerts.firing()
        # Bring shard 1 back on a fresh port and re-point the router.
        runtime = build_shard_runtime(fleet.specs[1])
        runtime.server.start()
        try:
            fleet.router.reconnect(1, "127.0.0.1", runtime.server.port)
            fleet.router.dispatch({"type": "health"})
            assert "shard:1:lagging" not in alerts.firing()
        finally:
            runtime.server.stop(drain=False)
            runtime.pool.close(drain=False)
            if runtime.wal is not None:
                runtime.wal.close()


class TestIngestRouting:
    def _create(self, avail_id: int, rcc_id: int) -> dict:
        return {
            "kind": "rcc_created",
            "rcc_id": rcc_id,
            "avail_id": avail_id,
            "rcc_type": "G",
            "swlin": "321-54-876",
            "create_date": 900,
            "amount": 25.0,
        }

    def test_cross_shard_batch_acks_everywhere(self, fleet):
        events = [
            self._create(fleet.owned[0][0], 91_000_001),
            self._create(fleet.owned[1][0], 91_000_002),
            # Settle-after-create within the same batch: routable via the
            # batch-local create, not the base table.
            {"kind": "rcc_settled", "rcc_id": 91_000_001, "settle_date": 950},
        ]
        response = fleet.router.dispatch({"type": "ingest", "events": events})
        assert response["ok"], response
        assert response["result"]["acked"] == 3
        assert set(response["result"]["per_shard"]) == {"0", "1"}
        # Both shards fsynced: watermarks advanced.
        assert fleet.runtimes[0].ingestor.watermark == 2
        assert fleet.runtimes[1].ingestor.watermark == 1
        # The grown route is remembered: a later settle routes by rcc id.
        follow = fleet.router.dispatch(
            {
                "type": "ingest",
                "events": [
                    {
                        "kind": "amount_revised",
                        "rcc_id": 91_000_002,
                        "amount": 60.0,
                    }
                ],
            }
        )
        assert follow["ok"], follow

    def test_ok_envelopes_are_stamped_with_fleet_watermark(self, fleet):
        fleet.router.dispatch(
            {
                "type": "ingest",
                "events": [self._create(fleet.owned[0][0], 91_100_001)],
            }
        )
        # Shard 1 hasn't reported yet this session — poll both once.
        fleet.router.sample_gauges()
        response = fleet.router.dispatch(
            {
                "type": "domd_query",
                "avail_ids": [fleet.owned[0][0]],
                "t_star": 30.0,
            }
        )
        assert response["ok"], response
        # Fleet watermark = min(shard0=1, shard1=0); the shard's own
        # value moved aside.
        assert response["watermark"] == 0
        assert response["shard_watermark"] == 1

    def test_unroutable_settle_is_not_found(self, fleet):
        response = fleet.router.dispatch(
            {
                "type": "ingest",
                "events": [
                    {
                        "kind": "rcc_settled",
                        "rcc_id": 92_000_000,
                        "settle_date": 950,
                    }
                ],
            }
        )
        assert response["error"]["code"] == "not_found"
        assert "not routable" in response["error"]["message"]

    def test_partial_failure_is_retryable_and_partially_durable(self, fleet):
        fleet.runtimes[1].server.stop(drain=False)
        events = [
            self._create(fleet.owned[0][0], 93_000_001),
            self._create(fleet.owned[1][0], 93_000_002),
        ]
        response = fleet.router.dispatch({"type": "ingest", "events": events})
        assert not response["ok"]
        assert response["error"]["code"] == "overloaded"
        assert response["error"]["retryable"] is True
        assert "idempotent" in response["error"]["message"]
        # Shard 0's half is durable even though the request degraded.
        assert fleet.runtimes[0].ingestor.watermark == 1
        # The durable create is routable for follow-up events...
        assert fleet.router.routing.shard_of_rcc(93_000_001) == 0
        # ...the failed one is not remembered (retry will re-route it).
        assert fleet.router.routing.shard_of_rcc(93_000_002) is None


class TestGauges:
    def test_sample_gauges_shapes(self, fleet):
        gauges = fleet.router.sample_gauges()
        assert set(gauges) == {"0", "1", "fleet"}
        for shard_id in ("0", "1"):
            flat = gauges[shard_id]
            assert flat["up"] == 1.0
            assert {"workers", "completed", "watermark_seq", "lag_events"} <= set(
                flat
            )
            assert all(isinstance(v, float) for v in flat.values())
        assert gauges["fleet"] == {"watermark": 0.0}

    def test_down_shard_reads_zero_up(self, fleet):
        fleet.runtimes[1].server.stop(drain=False)
        gauges = fleet.router.sample_gauges()
        assert gauges["1"] == {"up": 0.0}
        assert gauges["0"]["up"] == 1.0
        assert "shard:1:lagging" in fleet.context.telemetry.alerts.firing()
