"""FleetFrontend over a stub dispatcher: protocol normalization,
wire deadlines, and the bounded-saturation contract — no shards needed.
"""

from __future__ import annotations

import socket
import struct
import threading
import time

import pytest

from repro.serve.client import FrameClient
from repro.serve.framing import recv_frame, send_frame
from repro.serve.frontend import FleetFrontend


def _echo(request):
    return {"ok": True, "result": request}


@pytest.fixture()
def frontend():
    front = FleetFrontend(_echo, max_inflight=16, max_frame_bytes=32 * 1024)
    front.start()
    yield front
    front.stop(drain=False)


class TestRequestPath:
    def test_roundtrip_and_concurrency(self, frontend):
        def worker(i, out):
            with FrameClient("127.0.0.1", frontend.port) as client:
                out[i] = client.request({"type": "echo", "i": i})

        results: dict[int, dict] = {}
        threads = [
            threading.Thread(target=worker, args=(i, results)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 8
        for i, response in results.items():
            assert response["ok"] and response["result"]["i"] == i

    def test_dispatch_exception_becomes_internal_envelope(self):
        def boom(request):
            raise RuntimeError("kaboom")

        front = FleetFrontend(boom, max_inflight=2)
        front.start()
        try:
            with FrameClient("127.0.0.1", front.port) as client:
                response = client.request({"type": "anything"})
            assert response["error"]["code"] == "internal"
            assert "kaboom" in response["error"]["message"]
        finally:
            front.stop(drain=False)


class TestWireDeadlines:
    def test_deadline_exceeded_is_retryable(self):
        def slow(request):
            time.sleep(1.5)
            return {"ok": True, "result": None}

        front = FleetFrontend(slow, max_inflight=2)
        front.start()
        try:
            with FrameClient("127.0.0.1", front.port) as client:
                started = time.monotonic()
                response = client.request(
                    {"type": "anything", "deadline_ms": 100}
                )
                elapsed = time.monotonic() - started
            assert response["error"]["code"] == "deadline_exceeded"
            assert response["error"]["retryable"] is True
            assert "100ms" in response["error"]["message"]
            assert elapsed < 1.0  # answered at the deadline, not the work
            assert front.status()["deadline_exceeded"] == 1
        finally:
            front.stop(drain=False)

    def test_invalid_deadline_is_bad_request(self, frontend):
        with FrameClient("127.0.0.1", frontend.port) as client:
            for bad in (-1, 0, "soon", True):
                response = client.request(
                    {"type": "anything", "deadline_ms": bad}
                )
                assert response["error"]["code"] == "bad_request"
                assert "'deadline_ms' must be a positive number" in (
                    response["error"]["message"]
                )


class TestSaturation:
    def test_overload_answers_immediately_and_retryably(self):
        release = threading.Event()

        def gated(request):
            release.wait(10.0)
            return {"ok": True, "result": None}

        front = FleetFrontend(gated, max_inflight=2)
        front.start()
        clients, threads = [], []
        try:
            # Fill both slots with parked requests.
            def park():
                client = FrameClient("127.0.0.1", front.port, timeout=30.0)
                clients.append(client)
                client.request({"type": "park"})

            for _ in range(2):
                thread = threading.Thread(target=park)
                thread.start()
                threads.append(thread)
            deadline = time.monotonic() + 5.0
            while front.status()["active_requests"] < 2:
                assert time.monotonic() < deadline, "slots never filled"
                time.sleep(0.01)
            # The saturated front-end answers instantly, not after queueing.
            with FrameClient("127.0.0.1", front.port) as client:
                started = time.monotonic()
                response = client.request({"type": "one_too_many"})
                elapsed = time.monotonic() - started
            assert response["error"]["code"] == "overloaded"
            assert response["error"]["retryable"] is True
            assert "retry with backoff" in response["error"]["message"]
            assert elapsed < 1.0
            assert front.status()["overloaded"] == 1
        finally:
            release.set()
            for thread in threads:
                thread.join(timeout=10.0)
            for client in clients:
                client.close()
            front.stop(drain=False)


class TestConnectionFailureNormalization:
    """Satellite 6 again, at the async transport: same enumeration."""

    def test_oversize_frame_drained_answered_and_survives(self, frontend):
        with socket.create_connection(
            ("127.0.0.1", frontend.port), timeout=10.0
        ) as conn:
            big = b"y" * (frontend.max_frame_bytes + 50)
            conn.sendall(struct.pack(">I", len(big)) + big)
            response = recv_frame(conn)
            assert response["error"]["code"] == "bad_request"
            assert "frame limit" in response["error"]["message"]
            send_frame(conn, {"type": "still_alive"})
            assert recv_frame(conn)["ok"]
        assert frontend.status()["oversize_frames"] == 1

    def test_zero_length_frame_is_bad_json_then_close(self, frontend):
        with socket.create_connection(
            ("127.0.0.1", frontend.port), timeout=10.0
        ) as conn:
            conn.sendall(struct.pack(">I", 0))
            response = recv_frame(conn)
            assert response["error"]["code"] == "bad_json"
            assert "zero-length frame" in response["error"]["message"]
            assert recv_frame(conn) is None
        assert frontend.status()["protocol_errors"] == 1

    def test_malformed_json_survives(self, frontend):
        with socket.create_connection(
            ("127.0.0.1", frontend.port), timeout=10.0
        ) as conn:
            payload = b"[not json"
            conn.sendall(struct.pack(">I", len(payload)) + payload)
            response = recv_frame(conn)
            assert response["error"]["code"] == "bad_json"
            assert response["error"]["message"].startswith("malformed JSON: ")
            send_frame(conn, {"type": "still_alive"})
            assert recv_frame(conn)["ok"]

    def test_mid_request_disconnect_is_counted(self, frontend):
        conn = socket.create_connection(("127.0.0.1", frontend.port), timeout=10.0)
        conn.sendall(struct.pack(">I", 64) + b"partial")
        conn.close()
        deadline = time.monotonic() + 5.0
        while frontend.status()["disconnects_mid_request"] == 0:
            assert time.monotonic() < deadline, "disconnect never counted"
            time.sleep(0.01)
        assert frontend.status()["disconnects_mid_request"] == 1
