"""Shared serving fixtures: one fitted model + saved artefacts on disk.

Session-scoped because fitting dominates: every test in this package
shares the same small dataset, estimator, and saved ``data``/``model``
artefacts (shard processes load them from disk by path).
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.core import DomdEstimator, PipelineConfig
from repro.data import save_dataset, split_dataset
from repro.data.dates import day_to_iso
from repro.ml import GbmParams
from repro.persistence import save_estimator


@pytest.fixture(scope="session")
def serve_env(request, tmp_path_factory):
    dataset = request.getfixturevalue("small_dataset")
    splits = split_dataset(dataset, seed=5)
    config = PipelineConfig(
        window_pct=25.0, k=8, fusion="average", gbm=GbmParams(n_estimators=15)
    )
    estimator = DomdEstimator(config).fit(dataset, splits.train_ids)
    root = tmp_path_factory.mktemp("serve")
    data_dir = root / "data"
    save_dataset(dataset, data_dir)
    model_path = root / "model.json"
    save_estimator(estimator, model_path)
    avail_ids = [int(a) for a in dataset.avails["avail_id"]]
    starts = np.asarray(dataset.avails["act_start"])
    return SimpleNamespace(
        dataset=dataset,
        estimator=estimator,
        data_dir=str(data_dir),
        model_path=str(model_path),
        avail_ids=avail_ids,
        # A date most avails straddle — fleet_status returns real rows.
        fleet_date=day_to_iso(int(np.median(starts)) + 40),
    )
