"""Shard-dataset partitioning: coverage, disjointness, and the
shard/monolith differential (a shard's estimate must be bitwise
identical to the monolith's — features are strictly per-avail)."""

import numpy as np
import pytest

from repro.persistence import load_estimator
from repro.serve.partition import fleet_assignment, shard_dataset, ships_of_shard
from repro.serve.ring import ConsistentHashRing


@pytest.fixture(scope="module")
def ring():
    return ConsistentHashRing([0, 1, 2])


class TestPartition:
    def test_ships_partition_disjoint_and_complete(self, serve_env, ring):
        all_ships = {int(s) for s in serve_env.dataset.ships["ship_id"]}
        seen: set[int] = set()
        for shard_id in ring.shard_ids:
            owned = {int(s) for s in ships_of_shard(serve_env.dataset, ring, shard_id)}
            assert owned.isdisjoint(seen)
            seen |= owned
        assert seen == all_ships

    def test_slice_keeps_only_owned_rows(self, serve_env, ring):
        for shard_id in ring.shard_ids:
            slice_ = shard_dataset(serve_env.dataset, ring, shard_id)
            owned = set(
                int(s) for s in ships_of_shard(serve_env.dataset, ring, shard_id)
            )
            assert {int(s) for s in slice_.ships["ship_id"]} == owned
            assert {int(s) for s in slice_.avails["ship_id"]} <= owned
            owned_avails = {int(a) for a in slice_.avails["avail_id"]}
            assert {int(a) for a in slice_.rccs["avail_id"]} <= owned_avails

    def test_slices_cover_every_avail_and_rcc(self, serve_env, ring):
        total_avails = 0
        total_rccs = 0
        for shard_id in ring.shard_ids:
            slice_ = shard_dataset(serve_env.dataset, ring, shard_id)
            total_avails += len(slice_.avails)
            total_rccs += len(slice_.rccs)
        assert total_avails == len(serve_env.dataset.avails)
        assert total_rccs == len(serve_env.dataset.rccs)

    def test_shard_notes_record_topology(self, serve_env, ring):
        slice_ = shard_dataset(serve_env.dataset, ring, 1)
        note = slice_.notes["shard"]
        assert note["shard_id"] == 1
        assert note["shard_ids"] == [0, 1, 2]
        assert note["vnodes"] == ring.vnodes

    def test_fleet_assignment_matches_ring(self, serve_env, ring):
        assignment = fleet_assignment(serve_env.dataset, ring)
        for shard_id, ships in assignment.items():
            for ship_id in ships:
                assert ring.owner_of_ship(ship_id) == shard_id


class TestShardMonolithDifferential:
    def test_shard_estimates_bitwise_match_monolith(self, serve_env, ring):
        """The property that makes ship partitioning sound at all."""
        monolith = serve_env.estimator
        t_stars = [10.0, 30.0, 55.0, 80.0]
        checked = 0
        for shard_id in ring.shard_ids:
            slice_ = shard_dataset(serve_env.dataset, ring, shard_id)
            if len(slice_.avails) == 0:
                continue
            shard_est = load_estimator(serve_env.model_path, slice_)
            avail_ids = [int(a) for a in slice_.avails["avail_id"]][:6]
            for t_star in t_stars:
                ours = shard_est.query(avail_ids, t_star=t_star)
                theirs = monolith.query(avail_ids, t_star=t_star)
                for a, b in zip(ours, theirs):
                    assert a.avail_id == b.avail_id
                    assert a.current_estimate == b.current_estimate, (
                        f"shard {shard_id} avail {a.avail_id} t*={t_star}: "
                        f"{a.current_estimate} != {b.current_estimate}"
                    )
                    np.testing.assert_array_equal(
                        a.window_estimates, b.window_estimates
                    )
                    np.testing.assert_array_equal(
                        a.fused_estimates, b.fused_estimates
                    )
                    checked += 1
        assert checked > 20  # non-vacuous across shards and timestamps
