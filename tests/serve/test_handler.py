"""RequestHandler extraction tests (Issue 10, satellite 1).

The stdin loop of ``repro serve`` used to inline its dispatch body;
:class:`RequestHandler`/:func:`serve_stdin` extracted it.  The contract
is **byte identity**: the extracted loop must produce exactly the bytes
the historical inline loop produced, for the same request stream.
"""

import io
import json

from repro.core.server import ServicePool
from repro.core.service import DomdService, error_envelope
from repro.serve.handler import RequestHandler, serve_stdin


def _historical_inline_loop(service, stdin, out):
    """The pre-extraction ``repro serve`` stdin body, verbatim."""
    import contextlib

    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            print(
                json.dumps(error_envelope("bad_json", f"malformed JSON: {exc}")),
                file=out,
                flush=True,
            )
            continue
        with contextlib.nullcontext():
            response = service.handle(request)
        print(json.dumps(response), file=out, flush=True)
    return 0


def _request_stream(env):
    lines = [
        json.dumps(
            {"type": "domd_query", "avail_ids": env.avail_ids[:2], "t_star": 30.0}
        ),
        "",
        "   ",
        "{broken json",
        json.dumps({"type": "teleport"}),
        json.dumps({"type": "health"}),
        json.dumps({"type": "fleet_status", "date": env.fleet_date}),
        json.dumps({"type": "domd_query", "avail_ids": [999_999], "t_star": 5.0}),
        json.dumps(["not", "an", "object"]),
    ]
    return "\n".join(lines) + "\n"


def _fresh_service(env):
    """A service over its own context — counters, drift windows and
    trace ids all start from zero, so two runs are comparable byte for
    byte."""
    from repro.data import load_dataset
    from repro.persistence import load_estimator
    from repro.runtime import ExecutionContext

    dataset = load_dataset(env.data_dir)
    estimator = load_estimator(
        env.model_path, dataset, context=ExecutionContext()
    )
    return DomdService(estimator)


class TestStdinByteIdentity:
    def test_extracted_loop_matches_historical_bytes(self, serve_env):
        stream = _request_stream(serve_env)

        expected = io.StringIO()
        _historical_inline_loop(
            _fresh_service(serve_env), io.StringIO(stream), expected
        )

        actual = io.StringIO()
        code = serve_stdin(
            RequestHandler(_fresh_service(serve_env)),
            io.StringIO(stream),
            actual,
        )
        assert code == 0
        assert actual.getvalue() == expected.getvalue()
        # Non-vacuous: ok responses AND error envelopes were produced.
        produced = [json.loads(line) for line in actual.getvalue().splitlines()]
        assert any(r.get("ok") for r in produced)
        assert any(not r.get("ok") for r in produced)

    def test_bad_json_message_is_pinned(self, serve_env):
        # The exact message format clients may have learned to parse.
        handler = RequestHandler(DomdService(serve_env.estimator))
        envelope = handler.handle_line("{nope").result()
        assert envelope["error"]["code"] == "bad_json"
        assert envelope["error"]["message"].startswith("malformed JSON: ")

    def test_blank_lines_are_skipped(self, serve_env):
        handler = RequestHandler(DomdService(serve_env.estimator))
        assert handler.handle_line("") is None
        assert handler.handle_line("   \n") is None


class TestPooledDispatch:
    def test_pooled_serve_stdin_keeps_order(self, serve_env):
        service = DomdService(serve_env.estimator)
        pool = ServicePool(service, workers=2, queue_depth=8)
        try:
            stream = "\n".join(
                json.dumps(
                    {"type": "domd_query", "avail_ids": [a], "t_star": 40.0}
                )
                for a in serve_env.avail_ids[:4]
            )
            out = io.StringIO()
            code = serve_stdin(
                RequestHandler(service, pool=pool), io.StringIO(stream), out
            )
            assert code == 0
            responses = [json.loads(line) for line in out.getvalue().splitlines()]
            assert len(responses) == 4
            # Submission order is preserved by the ordered flush.
            assert [
                r["result"][0]["avail_id"] for r in responses
            ] == serve_env.avail_ids[:4]
        finally:
            pool.close(drain=True)

    def test_nonblocking_dispatch_bounces_when_full(self, serve_env):
        service = DomdService(serve_env.estimator)
        pool = ServicePool(service, workers=1, queue_depth=1)
        try:
            handler = RequestHandler(service, pool=pool)
            futures = [
                handler.dispatch(
                    {
                        "type": "domd_query",
                        "avail_ids": serve_env.avail_ids[:3],
                        "t_star": 50.0,
                    },
                    block=False,
                )
                for _ in range(12)
            ]
            envelopes = [f.result() for f in futures]
            rejected = [
                e
                for e in envelopes
                if not e.get("ok") and e["error"]["code"] == "overloaded"
            ]
            assert all(
                e.get("ok") or e["error"]["code"] == "overloaded"
                for e in envelopes
            )
            # With a queue of one, most of the burst must bounce — and
            # every rejection is marked retryable.
            assert rejected and all(e["error"]["retryable"] for e in rejected)
        finally:
            pool.close(drain=True)


class TestFramedPayloads:
    def test_handle_payload_bad_json_matches_stdin_envelope(self, serve_env):
        handler = RequestHandler(DomdService(serve_env.estimator))
        envelope = handler.handle_payload(b"\xff\xfe not json").result()
        assert envelope["error"]["code"] == "bad_json"
        assert envelope["error"]["message"].startswith("malformed JSON: ")

    def test_handle_payload_dispatches(self, serve_env):
        handler = RequestHandler(DomdService(serve_env.estimator))
        envelope = handler.handle_payload(
            json.dumps({"type": "health"}).encode()
        ).result()
        assert envelope["ok"]
