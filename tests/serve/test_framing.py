"""Wire-protocol tests: framing, resynchronisation, failure taxonomy."""

import socket
import threading

import pytest

from repro.serve.framing import (
    HEADER_BYTES,
    FrameDecoder,
    FrameProtocolError,
    FrameTooLarge,
    FrameTruncated,
    decode_payload,
    encode_frame,
    recv_frame,
    send_frame,
)


class TestEncodeDecode:
    def test_roundtrip(self):
        frame = encode_frame({"a": [1, 2, {"b": None}]})
        assert frame[:HEADER_BYTES] == (len(frame) - HEADER_BYTES).to_bytes(4, "big")
        assert decode_payload(frame[HEADER_BYTES:]) == {"a": [1, 2, {"b": None}]}

    def test_compact_separators(self):
        assert encode_frame({"a": 1, "b": 2})[HEADER_BYTES:] == b'{"a":1,"b":2}'

    def test_encode_rejects_oversize(self):
        with pytest.raises(FrameTooLarge):
            encode_frame("x" * 100, max_bytes=50)

    def test_malformed_payload_raises_valueerror(self):
        with pytest.raises(ValueError):
            decode_payload(b"not json")


class TestFrameDecoder:
    def test_single_byte_feeds(self):
        frame = encode_frame({"k": "v"}) + encode_frame([1, 2])
        decoder = FrameDecoder()
        seen = []
        for i in range(len(frame)):
            decoder.feed(frame[i : i + 1])
            seen.extend(decoder.frames())
        assert [decode_payload(p) for p in seen] == [{"k": "v"}, [1, 2]]
        assert decoder.buffered == 0

    def test_many_frames_one_feed(self):
        decoder = FrameDecoder()
        decoder.feed(b"".join(encode_frame(i) for i in range(50)))
        assert [decode_payload(p) for p in decoder.frames()] == list(range(50))

    def test_zero_length_frame(self):
        decoder = FrameDecoder()
        decoder.feed((0).to_bytes(4, "big"))
        with pytest.raises(FrameProtocolError):
            decoder.frames()

    def test_oversize_skipped_then_raised_then_resync(self):
        decoder = FrameDecoder(max_bytes=10)
        big = (100).to_bytes(4, "big") + b"x" * 100
        decoder.feed(encode_frame("ok1", max_bytes=10) + big + encode_frame("ok2", max_bytes=10))
        # Good frames before the fault deliver first ...
        first = decoder.frames()
        assert [decode_payload(p) for p in first] == ["ok1"]
        # ... the oversize raises on the next call, after being skipped ...
        with pytest.raises(FrameTooLarge) as excinfo:
            decoder.frames()
        assert excinfo.value.declared == 100
        # ... and the stream is resynchronised past it.
        assert [decode_payload(p) for p in decoder.frames()] == ["ok2"]

    def test_oversize_spanning_feeds(self):
        decoder = FrameDecoder(max_bytes=10)
        decoder.feed((1000).to_bytes(4, "big"))
        for _ in range(10):
            assert decoder.frames() == []
            decoder.feed(b"y" * 100)
        with pytest.raises(FrameTooLarge):
            decoder.frames()
        decoder.feed(encode_frame(7, max_bytes=10))
        assert [decode_payload(p) for p in decoder.frames()] == [7]


class TestBlockingHelpers:
    def _pair(self):
        server, client = socket.socketpair()
        server.settimeout(5.0)
        client.settimeout(5.0)
        return server, client

    def test_send_recv(self):
        server, client = self._pair()
        try:
            send_frame(client, {"type": "ping"})
            assert recv_frame(server) == {"type": "ping"}
        finally:
            server.close()
            client.close()

    def test_clean_eof_returns_none(self):
        server, client = self._pair()
        client.close()
        try:
            assert recv_frame(server) is None
        finally:
            server.close()

    def test_mid_frame_eof_raises_truncated(self):
        server, client = self._pair()
        client.sendall(encode_frame({"k": 1})[:-2])
        client.close()
        try:
            with pytest.raises(FrameTruncated):
                recv_frame(server)
        finally:
            server.close()

    def test_oversize_drained_stream_stays_framed(self):
        server, client = self._pair()
        payload = b"z" * 200

        def _send():
            client.sendall(len(payload).to_bytes(4, "big") + payload)
            send_frame(client, "after", max_bytes=50)

        sender = threading.Thread(target=_send)
        sender.start()
        try:
            with pytest.raises(FrameTooLarge):
                recv_frame(server, max_bytes=50)
            # The oversize payload was drained: the next frame parses.
            assert recv_frame(server, max_bytes=50) == "after"
        finally:
            sender.join()
            server.close()
            client.close()

    def test_zero_length_frame(self):
        server, client = self._pair()
        client.sendall((0).to_bytes(4, "big"))
        try:
            with pytest.raises(FrameProtocolError):
                recv_frame(server)
        finally:
            server.close()
            client.close()
