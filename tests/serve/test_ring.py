"""Property tests for the consistent-hash ring (Issue 10, satellite 3).

The two load-bearing properties:

* **balance** — at fleet scale the keyspace splits within ±20% of fair
  share;
* **minimal movement** — adding/removing one shard moves at most ~K/N
  of K keys (a modulo partition would move nearly all of them).
"""

import os
import subprocess
import sys

import pytest

from repro.errors import ConfigurationError
from repro.serve.ring import (
    DEFAULT_VNODES,
    ConsistentHashRing,
    ship_key,
    stable_hash,
)


def _owners(ring, keys):
    return {key: ring.owner(key) for key in keys}


class TestStableHash:
    def test_process_independent(self):
        # The whole point: builtin hash() is salted per process, the
        # ring hash must not be.  Recompute in a fresh interpreter.
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.serve.ring import stable_hash;"
                "print(stable_hash('ship:42'))",
            ],
            capture_output=True,
            text=True,
            check=True,
            env={**os.environ, "PYTHONHASHSEED": "99"},
        )
        assert int(out.stdout.strip()) == stable_hash("ship:42")

    def test_distinct_keys_distinct_hashes(self):
        hashes = {stable_hash(ship_key(i)) for i in range(10_000)}
        assert len(hashes) == 10_000


class TestBalance:
    @pytest.mark.parametrize("n_shards", [2, 4, 8])
    def test_within_20pct_of_fair_share(self, n_shards):
        ring = ConsistentHashRing(range(n_shards), vnodes=DEFAULT_VNODES)
        keys = [ship_key(i) for i in range(20_000)]
        assignment = ring.assignment(keys)
        fair = len(keys) / n_shards
        for shard_id, owned in assignment.items():
            assert len(owned) == pytest.approx(fair, rel=0.20), (
                f"shard {shard_id} owns {len(owned)} of {len(keys)} keys "
                f"(fair share {fair:.0f})"
            )

    def test_every_shard_owns_something_at_fleet_scale(self):
        # 73 ships over 4 shards: the paper-scale fleet must not leave
        # a shard empty (an empty shard would still serve, but balance
        # at this scale is what the partitioning is for).
        ring = ConsistentHashRing(range(4))
        assignment = ring.assignment([ship_key(i) for i in range(73)])
        assert all(len(owned) > 0 for owned in assignment.values())


class TestMinimalMovement:
    K = 20_000

    def test_add_moves_at_most_k_over_n(self):
        keys = [ship_key(i) for i in range(self.K)]
        ring = ConsistentHashRing(range(4))
        before = _owners(ring, keys)
        ring.add(4)
        after = _owners(ring, keys)
        moved = [k for k in keys if before[k] != after[k]]
        # The new shard claims ~1/5 of the keyspace; 1.5x slack covers
        # vnode variance.  A modulo partition would move ~80%.
        assert len(moved) <= 1.5 * self.K / 5
        # Everything that moved, moved *to* the new shard.
        assert all(after[k] == 4 for k in moved)

    def test_remove_moves_only_the_removed_shards_keys(self):
        keys = [ship_key(i) for i in range(self.K)]
        ring = ConsistentHashRing(range(5))
        before = _owners(ring, keys)
        ring.remove(2)
        after = _owners(ring, keys)
        moved = [k for k in keys if before[k] != after[k]]
        assert len(moved) <= 1.5 * self.K / 5
        # Only keys the departed shard owned were reassigned.
        assert all(before[k] == 2 for k in moved)
        assert all(owner != 2 for owner in after.values())

    def test_add_then_remove_is_identity(self):
        keys = [ship_key(i) for i in range(2_000)]
        ring = ConsistentHashRing(range(3))
        before = _owners(ring, keys)
        ring.add(7)
        ring.remove(7)
        assert _owners(ring, keys) == before


class TestRingSemantics:
    def test_pure_function_of_membership(self):
        a = ConsistentHashRing([0, 1, 2])
        b = ConsistentHashRing([2, 0, 1])  # order must not matter
        keys = [ship_key(i) for i in range(500)]
        assert _owners(a, keys) == _owners(b, keys)

    def test_idempotent_add(self):
        ring = ConsistentHashRing([0, 1])
        points_before = len(ring._points)
        ring.add(1)
        assert len(ring._points) == points_before

    def test_cannot_remove_last_shard(self):
        ring = ConsistentHashRing([0])
        with pytest.raises(ConfigurationError):
            ring.remove(0)

    def test_needs_at_least_one_shard(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRing([])

    def test_vnodes_validated(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRing([0], vnodes=0)
