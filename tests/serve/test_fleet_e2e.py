"""End-to-end fleet service: real spawned shard processes, real TCP.

The acceptance drill of Issue 10: a 2-shard fleet serves a mixed
workload over the socket front-end; one shard is SIGKILLed mid-run;
the fleet degrades (never hangs), the shard restarts, replays its WAL,
and **zero acknowledged writes are lost** — pinned by watermark
continuity and bitwise estimate parity across the kill.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.serve.client import FrameClient
from repro.serve.fleet import FleetService
from repro.serve.partition import ships_of_shard


def _owned_avails(dataset, ring, shard_id: int) -> list[int]:
    owned_ships = {int(s) for s in ships_of_shard(dataset, ring, shard_id)}
    return [
        int(a)
        for a, s in zip(dataset.avails["avail_id"], dataset.avails["ship_id"])
        if int(s) in owned_ships
    ]


def _create(avail_id: int, rcc_id: int) -> dict:
    return {
        "kind": "rcc_created",
        "rcc_id": rcc_id,
        "avail_id": avail_id,
        "rcc_type": "NG",
        "swlin": "654-32-109",
        "create_date": 800,
        "amount": 35.0,
    }


@pytest.fixture(scope="module")
def live_fleet(serve_env, tmp_path_factory):
    """A started 2-shard fleet (spawned worker processes) + one client."""
    wal_dir = tmp_path_factory.mktemp("fleet-wal")
    fleet = FleetService(
        serve_env.model_path,
        serve_env.data_dir,
        shards=2,
        wal_dir=str(wal_dir),
        workers_per_shard=1,
        queue_depth=8,
        start_timeout=300.0,
    )
    port = fleet.start()
    client = FrameClient("127.0.0.1", port, timeout=30.0)
    env = SimpleNamespace(
        fleet=fleet,
        port=port,
        client=client,
        owned={
            shard_id: _owned_avails(serve_env.dataset, fleet.ring, shard_id)
            for shard_id in fleet.ring.shard_ids
        },
    )
    yield env
    client.close()
    fleet.stop(drain=False)


class TestServingOverTcp:
    def test_point_query_bitwise_matches_monolith(self, serve_env, live_fleet):
        ids = live_fleet.owned[0][:2] + live_fleet.owned[1][:2]
        response = live_fleet.client.request(
            {"type": "domd_query", "avail_ids": ids, "t_star": 30.0}
        )
        assert response["ok"], response
        assert [item["avail_id"] for item in response["result"]] == ids
        expected = serve_env.estimator.query(ids, t_star=30.0)
        for item, est in zip(response["result"], expected):
            assert item["current"] == est.current_estimate

    def test_fleet_status_covers_both_shards(self, serve_env, live_fleet):
        response = live_fleet.client.request(
            {"type": "fleet_status", "date": serve_env.fleet_date}
        )
        assert response["ok"], response
        assert "degraded" not in response
        delays = [item["estimated_delay_days"] for item in response["result"]]
        assert delays == sorted(delays, reverse=True)

    def test_health_reports_both_shards(self, live_fleet):
        response = live_fleet.client.request({"type": "health"})
        assert response["ok"], response
        result = response["result"]
        assert result["status"] == "ok"
        assert set(result["shards"]) == {"0", "1"}
        assert result["watermark"]["global"] == 0

    def test_deadline_and_traceparent_ride_the_wire(self, live_fleet):
        response = live_fleet.client.request(
            {
                "type": "domd_query",
                "avail_ids": [live_fleet.owned[0][0]],
                "t_star": 30.0,
                "deadline_ms": 20_000,
                "traceparent": "00-aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa-bbbbbbbbbbbbbbbb-01",
            }
        )
        assert response["ok"], response


class TestKillRestartDurability:
    def test_kill_restart_loses_zero_acknowledged_writes(
        self, serve_env, live_fleet
    ):
        client = live_fleet.client
        victim = 1
        victim_avail = live_fleet.owned[victim][0]
        survivor_avail = live_fleet.owned[0][0]

        # Acknowledge writes on both shards (each ack = WAL fsync).
        acked_last_seq = {}
        for i in range(3):
            events = [
                _create(live_fleet.owned[0][i], 96_000_000 + 2 * i),
                _create(live_fleet.owned[victim][i], 96_000_001 + 2 * i),
            ]
            response = client.request({"type": "ingest", "events": events})
            assert response["ok"], response
            for shard_key, result in response["result"]["per_shard"].items():
                acked_last_seq[shard_key] = result["last_seq"]
        assert acked_last_seq == {"0": 3, "1": 3}

        # Snapshot the victim-shard estimate the acked writes produced.
        before = client.request(
            {"type": "domd_query", "avail_ids": [victim_avail], "t_star": 30.0}
        )
        assert before["ok"], before

        # SIGKILL mid-run.
        live_fleet.fleet.kill_shard(victim)

        # The fleet degrades; it does not hang and does not lie.
        status = client.request(
            {"type": "fleet_status", "date": serve_env.fleet_date}
        )
        assert status["ok"], status
        assert status["degraded"]["missing_shards"] == [victim]

        point = client.request(
            {"type": "domd_query", "avail_ids": [victim_avail], "t_star": 30.0}
        )
        assert point["error"]["code"] == "overloaded"
        assert point["error"]["retryable"] is True

        # A cross-shard ingest degrades but the survivor's half is durable.
        partial = client.request(
            {
                "type": "ingest",
                "events": [
                    _create(survivor_avail, 97_000_000),
                    _create(victim_avail, 97_000_001),
                ],
            }
        )
        assert partial["error"]["code"] == "overloaded"
        assert "idempotent" in partial["error"]["message"]

        # Restart: WAL replay must restore every acknowledged write.
        live_fleet.fleet.restart_shard(victim, graceful=False)

        statuses = client.request({"type": "shard_status"})
        assert statuses["ok"], statuses
        restarted = statuses["result"][str(victim)]
        assert restarted["up"] is True
        assert restarted["watermark"] == acked_last_seq[str(victim)]
        # The survivor also kept its extra durable event from the
        # degraded batch.
        assert statuses["result"]["0"]["watermark"] == 4

        after = client.request(
            {"type": "domd_query", "avail_ids": [victim_avail], "t_star": 30.0}
        )
        assert after["ok"], after
        assert (
            after["result"][0]["current"] == before["result"][0]["current"]
        ), "acked write lost across kill -9: estimates diverged"

        # And the fleet is whole again.
        health = client.request({"type": "health"})
        assert health["result"]["status"] == "ok"
        assert health["result"]["shards"][str(victim)]["watermark"] == (
            acked_last_seq[str(victim)]
        )

    def test_restart_counter_recorded(self, live_fleet):
        assert live_fleet.fleet.supervisor.restarts_of(1) == 1
        assert live_fleet.fleet.supervisor.restarts_of(0) == 0
