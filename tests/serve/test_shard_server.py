"""ShardServer over real sockets: dispatch, ingest durability hooks,
and the connection-failure normalization (Issue 10, satellite 6).

Every connection-level failure mode lands in the pinned error-envelope
enumeration — oversize payload, malformed frame, malformed JSON,
mid-request disconnect — and the connection survives exactly when the
stream is still framed.
"""

from __future__ import annotations

import socket
import struct

import pytest

from repro.core.server import ServicePool
from repro.core.service import DomdService
from repro.data import load_dataset
from repro.persistence import load_estimator
from repro.runtime import ExecutionContext
from repro.runtime.concurrency import ReadWriteGate
from repro.serve.client import FrameClient
from repro.serve.framing import encode_frame, recv_frame, send_frame
from repro.serve.handler import RequestHandler
from repro.serve.partition import shard_dataset, ships_of_shard
from repro.serve.ring import ConsistentHashRing
from repro.serve.shard import ShardServer, build_shard_runtime


RING = ConsistentHashRing([0, 1])


def _owned_avails(dataset, shard_id: int) -> list[int]:
    owned_ships = {int(s) for s in ships_of_shard(dataset, RING, shard_id)}
    return [
        int(a)
        for a, s in zip(dataset.avails["avail_id"], dataset.avails["ship_id"])
        if int(s) in owned_ships
    ]


@pytest.fixture(scope="module")
def static_shard(serve_env):
    """Shard 0 of a 2-shard ring, static snapshot (no WAL), started."""
    context = ExecutionContext()
    slice_ = shard_dataset(load_dataset(serve_env.data_dir), RING, 0)
    service = DomdService(load_estimator(serve_env.model_path, slice_, context=context))
    pool = ServicePool(service, workers=1, queue_depth=8, gate=ReadWriteGate())
    server = ShardServer(
        shard_id=0,
        handler=RequestHandler(service, pool=pool),
        gate=pool.gate,
        max_frame_bytes=64 * 1024,
    )
    server.start()
    yield server
    server.stop(drain=False)
    pool.close(drain=False)


@pytest.fixture(scope="module")
def wal_shard(serve_env, tmp_path_factory):
    """Shard 0 with live ingestion (WAL-backed), via the spec assembly."""
    wal_dir = tmp_path_factory.mktemp("shard-wal")
    runtime = build_shard_runtime(
        {
            "shard_id": 0,
            "shard_ids": [0, 1],
            "model": serve_env.model_path,
            "data": serve_env.data_dir,
            "wal_path": str(wal_dir / "shard-0.wal"),
            "workers": 1,
            "queue_depth": 8,
        }
    )
    runtime.server.start()
    yield runtime
    runtime.server.stop(drain=False)
    runtime.pool.close(drain=False)
    if runtime.wal is not None:
        runtime.wal.close()


def _client(server) -> FrameClient:
    return FrameClient("127.0.0.1", server.port, timeout=10.0)


class TestDispatch:
    def test_query_owned_avail_matches_monolith(self, serve_env, static_shard):
        owned = _owned_avails(serve_env.dataset, 0)[:3]
        with _client(static_shard) as client:
            response = client.request(
                {"type": "domd_query", "avail_ids": owned, "t_star": 30.0}
            )
        assert response["ok"]
        assert response["shard_id"] == 0
        expected = serve_env.estimator.query(owned, t_star=30.0)
        for item, est in zip(response["result"], expected):
            assert item["avail_id"] == est.avail_id
            assert item["current"] == est.current_estimate  # bitwise

    def test_unowned_avail_errors_on_this_shard(self, serve_env, static_shard):
        foreign = _owned_avails(serve_env.dataset, 1)[0]
        with _client(static_shard) as client:
            response = client.request(
                {"type": "domd_query", "avail_ids": [foreign], "t_star": 30.0}
            )
        assert not response["ok"]
        assert response["error"]["code"] == "domain_error"
        assert "not in tensor" in response["error"]["message"]

    def test_invalid_deadline_is_bad_request(self, static_shard):
        with _client(static_shard) as client:
            response = client.request(
                {"type": "health", "deadline_ms": -5}
            )
        assert response["error"]["code"] == "bad_request"
        assert "'deadline_ms' must be a positive number" in (
            response["error"]["message"]
        )

    def test_shard_status_shape(self, static_shard):
        with _client(static_shard) as client:
            response = client.request({"type": "shard_status"})
        assert response["ok"]
        result = response["result"]
        assert result["shard_id"] == 0 and result["up"] is True
        assert result["watermark"] is None  # static snapshot
        assert {"connections", "requests"} <= set(result["server"])
        assert {"queue_depth", "workers", "completed"} <= set(result["pool"])

    def test_ingest_without_wal_is_bad_request(self, static_shard):
        with _client(static_shard) as client:
            response = client.request({"type": "ingest", "events": []})
        assert response["error"]["code"] == "bad_request"
        assert "static snapshot" in response["error"]["message"]


class TestConnectionFailureNormalization:
    """Satellite 6: the wire-failure taxonomy, at the server."""

    def test_oversize_frame_answers_and_survives(self, static_shard):
        with socket.create_connection(
            ("127.0.0.1", static_shard.port), timeout=10.0
        ) as conn:
            big = b"x" * (static_shard.max_frame_bytes + 100)
            conn.sendall(struct.pack(">I", len(big)) + big)
            response = recv_frame(conn)
            assert response["error"]["code"] == "bad_request"
            assert "frame limit" in response["error"]["message"]
            # Stream stayed framed: the same connection still serves.
            send_frame(conn, {"type": "health"})
            assert recv_frame(conn)["ok"]

    def test_zero_length_frame_is_bad_json_then_close(self, static_shard):
        with socket.create_connection(
            ("127.0.0.1", static_shard.port), timeout=10.0
        ) as conn:
            conn.sendall(struct.pack(">I", 0))
            response = recv_frame(conn)
            assert response["error"]["code"] == "bad_json"
            assert response["error"]["message"].startswith("malformed frame: ")
            assert recv_frame(conn) is None  # server closed the stream

    def test_malformed_json_payload_survives(self, static_shard):
        with socket.create_connection(
            ("127.0.0.1", static_shard.port), timeout=10.0
        ) as conn:
            payload = b"{definitely not json"
            conn.sendall(struct.pack(">I", len(payload)) + payload)
            response = recv_frame(conn)
            assert response["error"]["code"] == "bad_json"
            assert response["error"]["message"].startswith("malformed JSON: ")
            send_frame(conn, {"type": "health"})
            assert recv_frame(conn)["ok"]

    def test_mid_request_disconnect_is_counted(self, static_shard):
        before = static_shard._counters["disconnects_mid_request"]
        conn = socket.create_connection(
            ("127.0.0.1", static_shard.port), timeout=10.0
        )
        # Declare 100 bytes, deliver 10, vanish.
        conn.sendall(struct.pack(">I", 100) + b"0123456789")
        conn.close()
        with _client(static_shard) as client:
            for _ in range(100):
                status = client.request({"type": "shard_status"})
                counted = status["result"]["server"]["disconnects_mid_request"]
                if counted > before:
                    break
                import time

                time.sleep(0.02)
        assert counted > before

    def test_non_object_frame_gets_envelope(self, static_shard):
        with _client(static_shard) as client:
            response = client.request(["a", "list"])
        assert not response["ok"]
        assert response["error"]["code"] == "bad_request"


class TestIngestDurability:
    def test_ack_advances_watermark_and_applies(self, serve_env, wal_shard):
        owned = _owned_avails(serve_env.dataset, 0)
        avail_id = owned[0]
        before = wal_shard.ingestor.watermark
        with _client(wal_shard.server) as client:
            response = client.request(
                {
                    "type": "ingest",
                    "events": [
                        {
                            "kind": "rcc_created",
                            "rcc_id": 90_000_001,
                            "avail_id": avail_id,
                            "rcc_type": "G",
                            "swlin": "123-45-678",
                            "create_date": 1000,
                            "amount": 40.0,
                        }
                    ],
                }
            )
        assert response["ok"], response
        assert response["result"]["applied"] == 1
        assert response["result"]["synced"] is True
        assert response["watermark"] == before + 1
        assert wal_shard.wal.last_seq == wal_shard.ingestor.watermark

    def test_misrouted_event_rejected_before_wal(self, serve_env, wal_shard):
        foreign = _owned_avails(serve_env.dataset, 1)[0]
        seq_before = wal_shard.wal.last_seq
        with _client(wal_shard.server) as client:
            response = client.request(
                {
                    "type": "ingest",
                    "events": [
                        {
                            "kind": "rcc_created",
                            "rcc_id": 90_000_002,
                            "avail_id": foreign,
                            "rcc_type": "N",
                            "swlin": "123-45-678",
                            "create_date": 1000,
                        }
                    ],
                }
            )
        assert response["error"]["code"] == "bad_request"
        assert f"not owned by shard 0" in response["error"]["message"]
        # The WAL never saw the misrouted event — nothing to poison replay.
        assert wal_shard.wal.last_seq == seq_before

    def test_empty_batch_acks_without_wal_traffic(self, wal_shard):
        seq_before = wal_shard.wal.last_seq
        with _client(wal_shard.server) as client:
            response = client.request({"type": "ingest", "events": []})
        assert response["ok"]
        assert response["result"] == {"applied": 0, "synced": False}
        assert wal_shard.wal.last_seq == seq_before


class TestShutdown:
    def test_shutdown_request_stops_server(self, serve_env):
        context = ExecutionContext()
        slice_ = shard_dataset(load_dataset(serve_env.data_dir), RING, 1)
        service = DomdService(
            load_estimator(serve_env.model_path, slice_, context=context)
        )
        pool = ServicePool(service, workers=1, queue_depth=4, gate=ReadWriteGate())
        server = ShardServer(
            shard_id=1, handler=RequestHandler(service, pool=pool), gate=pool.gate
        )
        server.start()
        try:
            with FrameClient("127.0.0.1", server.port) as client:
                response = client.request({"type": "shutdown"})
            assert response["ok"] and response["result"]["stopping"]
            assert server.wait_stopped(timeout=5.0)
        finally:
            server.stop(drain=False)
            pool.close(drain=False)
